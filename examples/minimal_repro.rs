//! Tooling showcase: find a safety violation exhaustively, shrink it to a
//! minimal schedule, and render the trace.
//!
//! Run with: `cargo run --release --example minimal_repro`
//!
//! The subject is the *naive* 3-process extension of TAS consensus (§3.5
//! background): the loser reads the next process's register — correct for
//! two processes, wrong for three. The workflow is the one a protocol
//! engineer would use with this library:
//!
//! 1. the explorer searches **every** schedule and finds an agreement
//!    violation, returning the schedule prefix that reaches it;
//! 2. delta-debugging shrinks the prefix to a 1-minimal repro;
//! 3. the trace renderer prints the interleaving, event by event.

use asymmetric_progress::common2::two_consensus::naive_three_process_system;
use asymmetric_progress::model::explore::{Agreement, ExploreConfig, Explorer};
use asymmetric_progress::model::shrink::{render_run, schedule_violates, shrink_schedule};
use asymmetric_progress::model::Schedule;

fn main() {
    println!("subject: naive 3-process TAS consensus (loser reads the next register)\n");

    // 1. Exhaustive search.
    let sys = naive_three_process_system();
    let explorer = Explorer::new(ExploreConfig::default());
    let result = explorer.explore(&sys, &[&Agreement]);
    assert!(!result.ok(), "the naive protocol must be wrong somewhere");
    let violation = &result.violations[0];
    println!(
        "explorer: {} states searched, agreement violated — \"{}\"",
        result.states, violation.message
    );
    let found: Schedule = violation.path.iter().copied().collect();
    println!("          reproducing schedule has {} events", found.len());

    // 2. Shrink.
    let minimal = shrink_schedule(&sys, &found, &Agreement);
    assert!(schedule_violates(&sys, minimal.events(), &Agreement));
    println!("shrinker: minimal repro has {} events (1-minimal)\n", minimal.len());

    // 3. Render.
    println!("minimal interleaving:");
    print!("{}", render_run(&sys, &minimal));

    println!("\nmoral (§3.5): Test&Set tops out at consensus number 2 — for two");
    println!("processes the same protocol verifies exhaustively (see the tests).");
}
