//! Stress driver for the `apc-store` service layer.
//!
//! Run with: `cargo run --release --example store_bench`
//!
//! Sweeps every named workload [`Scenario`] (uniform, hot-key skew,
//! vip-heavy, guest-contention) at two shard counts, driving the store from
//! real client threads in both progress classes, and reports per-scenario
//! throughput plus the per-class mean latency — the service-level face of
//! the paper's asymmetric progress conditions: the VIP numbers stay flat
//! while the guest tier absorbs the contention.
//!
//! Every cell of the sweep also audits the store afterwards: the wait-free
//! stats snapshot must agree with a full scan about how many keys survived.
//!
//! After the sweep, the **hot-key-split scenario** melts one shard (every
//! client hammering its own hot key, all routed to the same shard), splits
//! it live mid-run, and asserts the ops/s recover above the pre-split
//! plateau; then the **compaction/recovery scenario** runs: the store is
//! checkpointed and flushed to disk, crashed, and recovered; the driver
//! reports the seal+fsync and recover timings, audits the recovered state
//! against the pre-crash scan, and quantifies the replay-cost win (a fresh
//! replica's replay steps with vs without a checkpoint).
//!
//! Last, the **durability scenario** attaches the op-granular WAL: VIP
//! commits opt into fsync-acknowledged `Sync` durability, guest commits
//! ride the coalesced group flusher (and are *denied* `Sync` — the typed
//! asymmetry), the process "crashes" with frames still buffered, and
//! snapshot + WAL replay recovers every acknowledged commit — audited,
//! with the `store_wal_*` series printed from the persister's scrape.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use asymmetric_progress::store::workload::{keys_on_shard, preloaded_shard_log, Scenario};
use asymmetric_progress::store::{
    Batch, ElasticityPolicy, ProgressClass, ShardCmd, Store, StoreBuilder, StoreOp,
};

const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 300;
const KEY_SPACE: usize = 128;
const VIP_CAPACITY: usize = 2;
const SHARD_COUNTS: [usize; 2] = [1, 4];

struct Cell {
    scenario: Scenario,
    shards: usize,
    ops_per_sec: f64,
    vip_ns: Option<u64>,
    guest_ns: Option<u64>,
}

fn run_cell(scenario: Scenario, shards: usize) -> Cell {
    let store: Store = StoreBuilder::new()
        .shards(shards)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .build()
        .expect("sweep sizing is valid");

    let (vips, guests) = scenario.client_mix(CLIENTS, VIP_CAPACITY);
    let tickets: Vec<_> = (0..vips)
        .map(|_| store.admit_vip().expect("mix respects capacity"))
        .chain((0..guests).map(|_| store.admit_guest()))
        .collect();

    let vip_nanos = AtomicU64::new(0);
    let guest_nanos = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (i, ticket) in tickets.iter().enumerate() {
            let store = &store;
            let vip_nanos = &vip_nanos;
            let guest_nanos = &guest_nanos;
            s.spawn(move || {
                let mut client = store.client(*ticket);
                let start = Instant::now();
                for step in 0..OPS_PER_CLIENT {
                    let _ = client.execute(vec![scenario.op(i, step, KEY_SPACE)]);
                }
                let ns = start.elapsed().as_nanos() as u64;
                match ticket.class() {
                    ProgressClass::Vip => vip_nanos.fetch_add(ns, Ordering::Relaxed),
                    ProgressClass::Guest => guest_nanos.fetch_add(ns, Ordering::Relaxed),
                };
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let total_ops = (CLIENTS * OPS_PER_CLIENT) as f64;

    // Audit: the wait-free dashboard and a consensus-log scan must agree on
    // the surviving key count.
    let digests = store.snapshot_stats();
    let snapshot_entries: u64 = digests.iter().map(|d| d.entries).sum();
    let mut auditor = store.client(store.admit_guest());
    let scanned = auditor.scan("", "\u{10ffff}").len() as u64;
    assert_eq!(
        snapshot_entries, scanned,
        "{scenario}/{shards}: stats snapshot ({snapshot_entries}) disagrees with scan ({scanned})"
    );

    let mean = |nanos: &AtomicU64, n: usize| {
        (n > 0).then(|| nanos.load(Ordering::Relaxed) / (n * OPS_PER_CLIENT) as u64)
    };
    Cell {
        scenario,
        shards,
        ops_per_sec: total_ops / wall,
        vip_ns: mean(&vip_nanos, vips),
        guest_ns: mean(&guest_nanos, guests),
    }
}

fn main() {
    println!(
        "store stress sweep: {CLIENTS} clients × {OPS_PER_CLIENT} ops, \
         key space {KEY_SPACE}, VIP capacity {VIP_CAPACITY}\n"
    );
    println!(
        "{:<18} {:>7} {:>12} {:>14} {:>14}",
        "scenario", "shards", "ops/s", "vip ns/op", "guest ns/op"
    );
    let mut cells = Vec::new();
    for scenario in Scenario::ALL {
        for shards in SHARD_COUNTS {
            let cell = run_cell(scenario, shards);
            let fmt_ns = |ns: Option<u64>| ns.map_or("-".to_string(), |v| v.to_string());
            println!(
                "{:<18} {:>7} {:>12.0} {:>14} {:>14}",
                cell.scenario.name(),
                cell.shards,
                cell.ops_per_sec,
                fmt_ns(cell.vip_ns),
                fmt_ns(cell.guest_ns),
            );
            cells.push(cell);
        }
    }

    println!("\nall {} sweep cells audited (snapshot == scan)", cells.len());
    // The headline asymmetry: in the mixed scenarios, report how the VIP
    // tier fared against the guest tier.
    for cell in &cells {
        if let (Some(v), Some(g)) = (cell.vip_ns, cell.guest_ns) {
            println!(
                "  {}/{} shards: vip/guest latency ratio {:.2}",
                cell.scenario.name(),
                cell.shards,
                v as f64 / g as f64
            );
        }
    }

    hot_shard_split_scenario();
    elastic_scenario();
    observability_scenario();
    recovery_scenario();
    durability_scenario();
}

/// The **observability scenario**: a dashboard poller scrapes the store the
/// whole time the load runs — legal precisely because [`Store::scrape`] is
/// on the lint-verified wait-free path (atomics only, no lock, no consensus
/// log) — then the final scrape is audited against ground truth: the tier
/// counters must account for every issued commit, the latency histograms
/// must have observed exactly the commits they label, and a live split must
/// show up in the reconfig event series. The persister's own scrape is
/// exercised under flush-request pile-up (coalescing), and a trimmed
/// Prometheus exposition is printed — what `GET /metrics` would serve.
///
/// [`Store::scrape`]: asymmetric_progress::store::Store::scrape
fn observability_scenario() {
    use asymmetric_progress::store::encode_prometheus;
    use asymmetric_progress::store::persist::Persister;
    use std::sync::atomic::AtomicBool;

    println!("\nobservability scenario: wait-free scrape under load");
    let store: Store = StoreBuilder::new()
        .shards(4)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .build()
        .expect("sizing is valid");
    let vips = VIP_CAPACITY;
    let guests = CLIENTS - VIP_CAPACITY;
    let tickets: Vec<_> = (0..vips)
        .map(|_| store.admit_vip().expect("capacity fits"))
        .chain((0..guests).map(|_| store.admit_guest()))
        .collect();

    let stop = AtomicBool::new(false);
    let scrapes = AtomicU64::new(0);
    std::thread::scope(|s| {
        let store = &store;
        let stop = &stop;
        let scrapes = &scrapes;
        s.spawn(move || {
            // The poller: a full registry read + text encoding per loop.
            while !stop.load(Ordering::Acquire) {
                let text = encode_prometheus(&store.scrape());
                assert!(!text.is_empty());
                scrapes.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        });
        let clients: Vec<_> = tickets
            .iter()
            .enumerate()
            .map(|(i, ticket)| {
                s.spawn(move || {
                    let mut client = store.client(*ticket);
                    for step in 0..OPS_PER_CLIENT {
                        let _ = client.execute(vec![Scenario::Uniform.op(i, step, KEY_SPACE)]);
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
        // Only now may the poller wind down — it scraped through the
        // whole storm.
        stop.store(true, Ordering::Release);
    });
    println!("  {} scrapes served concurrently with the load", scrapes.load(Ordering::Relaxed));

    // Audit the final scrape against ground truth.
    let snap = store.scrape();
    let vip = snap.value("store_commits_total", &[("tier", "vip")]).expect("vip series");
    let guest = snap.value("store_commits_total", &[("tier", "guest")]).expect("guest series");
    assert_eq!(vip, (vips * OPS_PER_CLIENT) as u64, "every VIP commit accounted for");
    assert_eq!(guest, (guests * OPS_PER_CLIENT) as u64, "every guest commit accounted for");
    for (tier, commits) in [("vip", vip), ("guest", guest)] {
        let h = snap
            .histogram("store_commit_latency_ns", &[("tier", tier)])
            .expect("latency histogram");
        assert_eq!(h.count, commits, "{tier} latency histogram observed every commit");
    }
    println!("  tier counters: vip {vip} + guest {guest} commits, histograms agree");

    let child = store.split_shard(store.hottest_shard()).expect("hot shard exists");
    let snap = store.scrape();
    assert_eq!(snap.value("store_reconfigs_total", &[("kind", "split")]), Some(1));
    assert_eq!(snap.value("store_topology_version", &[]), Some(1));
    println!("  live split -> child {child} visible in the event series (topology v1)");

    // The persister's scrape under flush-request pile-up: concurrent
    // requests coalesce onto one leader's fsync, and the counters must
    // account for every request as either a flush or a coalesced ride.
    const REQUESTS: usize = 6;
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/tmp-example");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let persister = Persister::new(dir.join("obs.snapshot"));
    std::thread::scope(|s| {
        for _ in 0..REQUESTS {
            s.spawn(|| persister.persist(&store).expect("flush"));
        }
    });
    let psnap = persister.scrape();
    let flushes = psnap.value("store_persist_flushes_total", &[]).expect("flush series");
    let coalesced = psnap.value("store_persist_coalesced_total", &[]).expect("coalesce series");
    assert_eq!(flushes + coalesced, REQUESTS as u64, "every request flushed or coalesced");
    assert_eq!(psnap.value("store_persist_flush_failures_total", &[]), Some(0));
    println!("  persister: {flushes} fsync(s) served {REQUESTS} requests ({coalesced} coalesced)");

    // The exposition a `GET /metrics` handler would serve, trimmed.
    let text = encode_prometheus(&store.scrape());
    let shown: Vec<&str> = text
        .lines()
        .filter(|l| {
            l.starts_with("store_commits_total")
                || l.starts_with("store_reconfigs_total")
                || l.starts_with("store_topology_version")
                || l.starts_with("store_shards_live")
        })
        .collect();
    println!("  exposition excerpt ({} lines total):", text.lines().count());
    for line in shown {
        println!("    {line}");
    }
}

/// The hot-key-split scenario: every client hammers its own hot key, all of
/// which the initial topology routes to **one shard** — the melt the paper's
/// machinery cannot prevent with a static router. After the plateau forms,
/// the shard is split live mid-run; ops/s must recover above the plateau.
///
/// Two real mechanisms drive the recovery: the split bump doubles as a
/// checkpoint anchor (the melted log is compacted at the bump), and clients
/// whose keys moved stop replaying the parent shard's commits (the
/// universal construction replays every commit through every *active* port
/// handle of its shard, so fewer clients per shard means less replay work
/// per commit — a win even on one core, and a parallelism win on many).
fn hot_shard_split_scenario() {
    const ROUNDS: usize = 3;
    println!("\nhot-key-split scenario: {CLIENTS} clients, one hot key each, one shard");

    let store: Store = StoreBuilder::new()
        .shards(4)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .checkpoint_every(64)
        .build()
        .expect("sizing is valid");
    // One hot key per client, all on shard 0 under the initial topology.
    let keys = keys_on_shard(&store.topology(), 0, CLIENTS);
    let mut loader = store.client(store.admit_guest());
    for key in &keys {
        loader.put(key, 0);
    }
    let tickets: Vec<_> = (0..VIP_CAPACITY)
        .map(|_| store.admit_vip().expect("capacity fits"))
        .chain((0..CLIENTS - VIP_CAPACITY).map(|_| store.admit_guest()))
        .collect();

    let phase = |label: &str| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for (i, ticket) in tickets.iter().enumerate() {
                let store = &store;
                let key = &keys[i];
                s.spawn(move || {
                    let mut client = store.client(*ticket);
                    for step in 0..OPS_PER_CLIENT {
                        if step % 3 == 0 {
                            let _ = client.get(key);
                        } else {
                            let _ = client.put(key, step as u64);
                        }
                    }
                });
            }
        });
        let ops_per_sec = (CLIENTS * OPS_PER_CLIENT) as f64 / t0.elapsed().as_secs_f64();
        println!("  {label:<26} {ops_per_sec:>12.0} ops/s");
        ops_per_sec
    };

    let mut plateau = f64::MAX;
    for round in 0..ROUNDS {
        // The plateau is the melted steady state: the slowest warm round.
        plateau = plateau.min(phase(&format!("pre-split round {round}")));
    }
    let hot = store.hottest_shard();
    assert_eq!(hot, 0, "the aimed-at shard must be the hottest");
    let t0 = Instant::now();
    let child = store.split_shard(hot).expect("hot shard exists");
    println!(
        "  split shard {hot} -> child {child} in {:?} (topology v{})",
        t0.elapsed(),
        store.topology().version()
    );
    let recovery =
        (0..ROUNDS).map(|round| phase(&format!("post-split round {round}"))).sum::<f64>()
            / ROUNDS as f64;

    // Audit: the split lost nothing, and routing agrees with the data.
    let mut auditor = store.client(store.admit_guest());
    assert_eq!(auditor.scan("", "\u{10ffff}").len(), keys.len(), "every hot key survives");
    let entries: u64 = store.snapshot_stats().iter().map(|d| d.entries).sum();
    assert_eq!(entries, keys.len() as u64, "stats snapshots agree with the scan");
    assert!(
        recovery > plateau,
        "post-split ops/s ({recovery:.0}) must recover above the plateau ({plateau:.0})"
    );
    println!("  recovery vs plateau: {:.2}x", recovery / plateau);
}

/// The **elastic scenario**: the same melt as the hot-key-split scenario,
/// but **nobody ever calls `split_shard` or `merge_shard`** — the policy
/// driver configured by `StoreBuilder::elastic` does both. The driver must
/// auto-split under the melt (ops/s recovering above the melted plateau),
/// then auto-merge the children back once the load moves away, converging
/// to the original live shard count — with at most one reconfiguration per
/// cool-down window along the way.
fn elastic_scenario() {
    const ROUNDS: usize = 3;
    let policy = ElasticityPolicy {
        evaluate_every: 128,
        // Two jobs for the window floor. (1) Burst resistance: on a single
        // core, client streams run as consecutive bursts — up to 3
        // same-shard clients × OPS_PER_CLIENT (300) = 900 back-to-back
        // commits on one shard — and the window must dwarf that run length
        // or a scheduler slice impersonates key-space skew. (2) Let the
        // melted plateau actually form (≈3 rounds of 2400 commits) before
        // the driver intervenes, so the pre-split ops/s floor below is a
        // real plateau, mirroring the manual hot-key-split scenario.
        min_window: 3 * (CLIENTS * OPS_PER_CLIENT) as u64,
        cooldown: 2048,
        ..ElasticityPolicy::default()
    };
    println!(
        "\nelastic scenario: {CLIENTS} clients, one hot key each, zero manual reconfig calls \
         (evaluate every {} commits, cool down {})",
        policy.evaluate_every, policy.cooldown
    );

    let run_phase = |store: &Store,
                     tickets: &[asymmetric_progress::store::ClientTicket],
                     label: &str,
                     keys: &[String]|
     -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for (i, ticket) in tickets.iter().enumerate() {
                let key = &keys[i % keys.len()];
                s.spawn(move || {
                    let mut client = store.client(*ticket);
                    for step in 0..OPS_PER_CLIENT {
                        if step % 3 == 0 {
                            let _ = client.get(key);
                        } else {
                            let _ = client.put(key, step as u64);
                        }
                    }
                });
            }
        });
        let ops_per_sec = (CLIENTS * OPS_PER_CLIENT) as f64 / t0.elapsed().as_secs_f64();
        println!("  {label:<26} {ops_per_sec:>12.0} ops/s  (live shards: {})", store.live_shards());
        ops_per_sec
    };
    let admit = |store: &Store| -> Vec<asymmetric_progress::store::ClientTicket> {
        (0..VIP_CAPACITY)
            .map(|_| store.admit_vip().expect("capacity fits"))
            .chain((0..CLIENTS - VIP_CAPACITY).map(|_| store.admit_guest()))
            .collect()
    };

    // Melt the elastic store: the policy's window floor keeps the driver
    // observing for ≈3 rounds, so the melted plateau (the min over the
    // pre-split rounds, exactly like the manual hot-key-split scenario)
    // forms before the first auto-split lands.
    let store: Store = StoreBuilder::new()
        .shards(4)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .elastic(policy)
        .build()
        .expect("sizing is valid");
    let hot_keys = keys_on_shard(&store.topology(), 0, CLIENTS);
    let mut loader = store.client(store.admit_guest());
    for key in &hot_keys {
        loader.put(key, 0);
    }
    let tickets = admit(&store);
    let mut issued = hot_keys.len() as u64;
    let mut plateau = f64::MAX;
    let mut melt_rounds = 0usize;
    while store.elastic_report().expect("driver configured").splits == 0 {
        plateau = plateau.min(run_phase(
            &store,
            &tickets,
            &format!("melt round {melt_rounds}"),
            &hot_keys,
        ));
        issued += (CLIENTS * OPS_PER_CLIENT) as u64;
        melt_rounds += 1;
        assert!(melt_rounds < 64, "the melt must trigger an auto-split");
    }
    let after_split = store.elastic_report().unwrap();
    println!(
        "  auto-split happened: {} split(s) after {melt_rounds} melt round(s), live shards now {}",
        after_split.splits,
        store.live_shards()
    );
    assert!(store.live_shards() > 4, "the driver grew the topology on its own");
    let recovery = (0..ROUNDS)
        .map(|round| {
            let r = run_phase(&store, &tickets, &format!("post-auto-split {round}"), &hot_keys);
            issued += (CLIENTS * OPS_PER_CLIENT) as u64;
            r
        })
        .sum::<f64>()
        / ROUNDS as f64;
    assert!(
        recovery > plateau,
        "post-auto-split ops/s ({recovery:.0}) must recover above the melted plateau ({plateau:.0})"
    );
    println!("  auto-split recovery vs melted plateau: {:.2}x", recovery / plateau);

    // Cool: move every bit of traffic to the other root shards; the
    // children of shard 0 fade and the driver must retire them.
    let cool_keys: Vec<String> =
        (1..4).flat_map(|s| keys_on_shard(&store.topology(), s, CLIENTS.div_ceil(3))).collect();
    let mut cool_rounds = 0usize;
    while store.live_shards() > 4 {
        let _ = run_phase(&store, &tickets, &format!("cool round {cool_rounds}"), &cool_keys);
        issued += (CLIENTS * OPS_PER_CLIENT) as u64;
        cool_rounds += 1;
        assert!(cool_rounds < 64, "fading load must trigger the auto-merges");
    }
    let report = store.elastic_report().unwrap();
    println!(
        "  auto-merge happened: {} merge(s) after {cool_rounds} cool round(s); \
         live shards back to {}",
        report.merges,
        store.live_shards()
    );
    assert!(report.merges >= 1, "the cool phase must shrink the topology");
    assert_eq!(store.live_shards(), 4, "the topology converged back to its original live set");
    // Thrash bound: at most one reconfiguration per cool-down window over
    // the whole episode (plus the one that can land at the very start).
    let reconfigs = report.splits + report.merges;
    assert!(
        reconfigs <= issued / policy.cooldown + 1,
        "{reconfigs} reconfigs over {issued} commits violates the cool-down discipline"
    );
    // Audit: the data survived the whole elastic episode. (Only the keys
    // some client actually used count: client i drives keys[i % len].)
    let touched: std::collections::BTreeSet<&String> = hot_keys
        .iter()
        .enumerate()
        .chain(cool_keys.iter().enumerate())
        .filter(|&(i, _)| i < CLIENTS)
        .map(|(_, k)| k)
        .collect();
    let mut auditor = store.client(store.admit_guest());
    let survived = auditor.scan("", "\u{10ffff}").len();
    assert_eq!(survived, touched.len(), "every touched key survives the episode");
    let entries: u64 = store.snapshot_stats().iter().map(|d| d.entries).sum();
    assert_eq!(entries, survived as u64, "stats snapshots agree with the scan");
    println!("  audit: {survived} keys, {reconfigs} reconfigs, zero manual calls");
}

/// The compaction/recovery scenario: checkpoint, flush, crash, recover,
/// audit — and the replay-cost win a checkpoint buys a fresh replica.
fn recovery_scenario() {
    const KEYS: u64 = 4096;
    const SHARDS: usize = 4;
    println!("\ncompaction/recovery scenario: {KEYS} keys, {SHARDS} shards");

    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/tmp-example");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("store_bench.snapshot");

    let pre_crash_scan;
    {
        let store: Store = StoreBuilder::new()
            .shards(SHARDS)
            .vip_capacity(VIP_CAPACITY)
            .guest_ports(6)
            .guest_group_width(2)
            .build()
            .expect("sizing is valid");
        let mut loader = store.client(store.admit_guest());
        for i in 0..KEYS {
            loader.put(&format!("key/{i:05}"), i);
        }
        pre_crash_scan = store.client(store.admit_guest()).scan("", "\u{10ffff}");

        let t0 = Instant::now();
        store.checkpoint().write_to(&path).expect("flush");
        let save = t0.elapsed();
        let bytes = std::fs::metadata(&path).expect("snapshot metadata").len();
        println!("  persist (seal every shard + fsync): {save:>10.2?} ({bytes} bytes)");
    } // crash: the in-memory store is gone

    let t0 = Instant::now();
    let recovered = StoreBuilder::new()
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .recover(&path)
        .expect("recover");
    let boot = t0.elapsed();
    println!(
        "  recover (decode + boot at checkpoint): {boot:>7.2?}, boot replay steps = {}",
        recovered.replay_steps()
    );
    let recovered_scan = recovered.client(recovered.admit_guest()).scan("", "\u{10ffff}");
    assert_eq!(recovered_scan, pre_crash_scan, "recovered store must equal the flushed state");
    println!("  audit: recovered scan == pre-crash scan ({} keys)", recovered_scan.len());

    // The replay-cost win, isolated on one shard log: a fresh replica's
    // replay work with vs without a checkpoint (the same harness the
    // `store/recovery` bench series records into BENCH_store.json).
    let fresh_steps = |checkpointed: bool| {
        let log = preloaded_shard_log(KEYS as usize, checkpointed);
        let mut fresh = log.owned_handle(1).expect("port 1 free");
        fresh.apply(ShardCmd::Batch(Batch::new(0, vec![StoreOp::Get("key/0000".into())])));
        fresh.replay_steps()
    };
    let without = fresh_steps(false);
    let with = fresh_steps(true);
    assert!(with < without / 100, "the checkpoint must collapse replay cost");
    println!(
        "  replay-cost win: fresh replica replays {with} cells post-checkpoint \
         vs {without} without (O(delta) vs O(history))"
    );
}

/// The **durability scenario**: the op-granular WAL closes the crash
/// window the checkpoint layer leaves open, asymmetrically — VIP commits
/// opt into fsync-acknowledged durability (`Client::execute_durable`),
/// guest commits ride the coalesced group flusher and are *denied* the
/// sync path with a typed error. The process then "crashes" with group
/// frames still buffered; snapshot + WAL replay must recover every
/// acknowledged commit exactly.
///
/// [`Client::execute_durable`]: asymmetric_progress::store::store::Client::execute_durable
fn durability_scenario() {
    use asymmetric_progress::store::persist::Persister;
    use asymmetric_progress::store::wal::{DurabilityError, Wal, WalConfig};

    const VIP_COMMITS: u64 = 64;
    const GUEST_COMMITS: u64 = 256;
    println!(
        "\ndurability scenario: {VIP_COMMITS} sync (VIP) + {GUEST_COMMITS} group (guest) commits"
    );

    let dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/tmp-example/durability");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let snapshot = dir.join("store.snapshot");
    let wal_dir = dir.join("wal");

    let synced_scan;
    {
        let wal = Wal::open(&wal_dir, WalConfig::default()).expect("fresh wal");
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(VIP_CAPACITY)
            .guest_ports(6)
            .guest_group_width(2)
            .build_with_wal(std::sync::Arc::clone(&wal))
            .expect("sizing is valid");
        let persister = Persister::new(&snapshot).with_wal(std::sync::Arc::clone(&wal));

        // The asymmetry, surfaced as a typed error: a guest may not buy
        // synchronous durability.
        let mut guest = store.client(store.admit_guest());
        assert_eq!(
            guest.execute_durable(vec![StoreOp::Put("guest/denied".into(), 0)]),
            Err(DurabilityError::GuestTier),
            "sync durability is a VIP privilege"
        );

        // Guests ride the group flusher…
        for i in 0..GUEST_COMMITS {
            guest.put(&format!("guest/{i:04}"), i);
        }
        // …VIPs pay the fsync and get the acknowledgement.
        let mut vip = store.client(store.admit_vip().expect("vip port"));
        let t0 = Instant::now();
        for i in 0..VIP_COMMITS {
            vip.execute_durable(vec![StoreOp::Put(format!("vip/{i:04}"), i)])
                .expect("sync acknowledged");
        }
        let sync_wall = t0.elapsed();
        println!(
            "  {} sync commits acknowledged in {:?} ({:.0?}/commit, fsync-bound by design)",
            VIP_COMMITS,
            sync_wall,
            sync_wall / VIP_COMMITS as u32
        );

        // A mid-run checkpoint rotates + truncates the log…
        persister.persist(&store).expect("checkpoint");
        // …and the tail after it keeps logging.
        for i in 0..GUEST_COMMITS {
            guest.put(&format!("guest-late/{i:04}"), i);
        }
        vip.execute_durable(vec![StoreOp::Put("vip/final".into(), 7)]).expect("sync acknowledged");
        // Everything up to the last fsync is durable; the sync above
        // flushed every buffered group frame with it.
        synced_scan = store.client(store.admit_guest()).scan("", "\u{10ffff}");

        let snap = persister.scrape();
        let flushes = snap.value("store_wal_flushes_total", &[]).unwrap_or(0);
        let group = snap.value("store_wal_appends_total", &[("class", "group")]).unwrap_or(0);
        let sync = snap.value("store_wal_appends_total", &[("class", "sync")]).unwrap_or(0);
        println!(
            "  wal scrape: {group} group + {sync} sync frames over {flushes} flush cycles \
             (coalescing {:.1} frames/cycle), {} denied sync attempt(s)",
            (group + sync) as f64 / flushes.max(1) as f64,
            snap.value("store_wal_sync_denied_total", &[]).unwrap_or(0),
        );
        wal.simulate_crash(); // frames buffered since the last fsync die here
    }

    let t0 = Instant::now();
    let wal = Wal::open(&wal_dir, WalConfig::default()).expect("reopen after crash");
    let recovered = StoreBuilder::new()
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .recover_with_wal(&snapshot, wal)
        .expect("snapshot + wal replay");
    let boot = t0.elapsed();
    let recovered_scan = recovered.client(recovered.admit_guest()).scan("", "\u{10ffff}");
    assert_eq!(
        recovered_scan, synced_scan,
        "snapshot + wal replay must recover exactly the fsync'd state"
    );
    println!(
        "  crash + recover (snapshot + wal replay): {boot:?}, {} keys back — every \
         sync-acknowledged commit survived",
        recovered_scan.len()
    );
}
