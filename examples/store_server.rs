//! `store_server`: the wire front-end under a 10k-connection load.
//!
//! Run with: `cargo run --release --example store_server`
//!
//! One reactor thread serves a [`StoreServer`] over simulated connections
//! while loadgen threads drive **10,000 concurrent guest connections**
//! plus a handful of VIP connections through the binary wire protocol.
//! Every request is the unified `Request` envelope; every connection
//! speaks the length-prefixed codec of `docs/WIRE.md`.
//!
//! What the run demonstrates, with numbers:
//!
//! * per-tier round-trip latency (p50 / p99 / p999) — VIP latency stays
//!   bounded while guests flood, because each reactor turn serves every
//!   VIP request through the lint-verified bounded wait-free dispatch
//!   path before touching the guest queue;
//! * typed backpressure — guest overload beyond the per-turn dispatch cap
//!   is answered with `RetryBudgetExhausted` (the wire's 429) and the
//!   loadgen retries; nothing ever blocks;
//! * the listener doubles as an observability endpoint: the run ends by
//!   fetching `GET /metrics` over a fresh connection and printing the
//!   `store_net_*` series.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use asymmetric_progress::net::{NetClient, ServerConfig, StoreServer};
use asymmetric_progress::store::{Request, StoreBuilder, StoreError, StoreOp, TierCredential};

const GUEST_CONNS: usize = 10_000;
const VIP_CONNS: usize = 4;
const REQUESTS_PER_CONN: usize = 3;
const LOADGEN_THREADS: usize = 8;
const VIP_TOKEN_BASE: u64 = 0xfeed_0000;

fn main() {
    let store =
        StoreBuilder::new().shards(8).vip_capacity(VIP_CONNS).build().expect("valid sizing");
    let cfg = ServerConfig {
        vip_tokens: (0..VIP_CONNS as u64).map(|i| VIP_TOKEN_BASE + i).collect(),
        guest_dispatch_per_poll: 2_048,
        ..ServerConfig::default()
    };
    let mut server = StoreServer::new(&store, cfg);

    // Open every connection up front on the reactor thread; the endpoints
    // are handed to loadgen threads (a real deployment would accept TCP
    // sockets here instead).
    let guest_ends: Vec<_> = (0..GUEST_CONNS).map(|_| server.connect()).collect();
    let vip_ends: Vec<_> = (0..VIP_CONNS).map(|_| server.connect()).collect();
    println!("opened {} simulated connections", server.conn_count());

    let done = AtomicBool::new(false);
    let shed_retries = AtomicU64::new(0);
    let guest_lat = Mutex::new(Vec::<u64>::new());
    let vip_lat = Mutex::new(Vec::<u64>::new());

    let wall = Instant::now();
    std::thread::scope(|s| {
        // Loadgen: each thread owns a slice of guest connections and all
        // threads share the retry/latency accumulators.
        let mut slices: Vec<Vec<_>> = (0..LOADGEN_THREADS).map(|_| Vec::new()).collect();
        for (i, end) in guest_ends.into_iter().enumerate() {
            slices[i % LOADGEN_THREADS].push(end);
        }
        for ends in slices {
            let shed_retries = &shed_retries;
            let guest_lat = &guest_lat;
            s.spawn(move || {
                let mut clients: Vec<NetClient> = ends
                    .into_iter()
                    .map(|e| NetClient::from_end(e, TierCredential::Guest))
                    .collect();
                let lat = drive(&mut clients, TierCredential::Guest, shed_retries);
                guest_lat.lock().unwrap().extend(lat);
            });
        }
        // VIP loadgen: one thread for the whole VIP set.
        {
            let shed_retries = &shed_retries;
            let vip_lat = &vip_lat;
            s.spawn(move || {
                let mut clients: Vec<NetClient> = vip_ends
                    .into_iter()
                    .enumerate()
                    .map(|(i, e)| {
                        NetClient::from_end(
                            e,
                            TierCredential::Vip { token: VIP_TOKEN_BASE + i as u64 },
                        )
                    })
                    .collect();
                // The credential sent per request must match the tier; use
                // token 0's shape for all (the reactor keys on the conn).
                let lat = drive(
                    &mut clients,
                    TierCredential::Vip { token: VIP_TOKEN_BASE },
                    shed_retries,
                );
                vip_lat.lock().unwrap().extend(lat);
            });
        }

        // The reactor: poll until every loadgen thread is done.
        let done = &done;
        let server = &mut server;
        let handle = s.spawn(move || {
            let mut turns = 0u64;
            let mut served = 0usize;
            let mut shed = 0usize;
            while !done.load(Ordering::Acquire) {
                let stats = server.poll();
                turns += 1;
                served += stats.served;
                shed += stats.shed;
                if stats.frames == 0 {
                    std::thread::yield_now();
                }
            }
            (turns, served, shed)
        });

        // Wait for loadgen (all spawned before the reactor handle), then
        // stop the reactor. Scope join order: we can't join selectively
        // here, so signal completion via the expected response count.
        let expected = (GUEST_CONNS + VIP_CONNS) * REQUESTS_PER_CONN;
        loop {
            let got = guest_lat.lock().unwrap().len() + vip_lat.lock().unwrap().len();
            if got >= expected {
                break;
            }
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
        let (turns, served, shed) = handle.join().expect("reactor thread");
        let secs = wall.elapsed().as_secs_f64();
        println!(
            "reactor: {turns} turns, {served} served, {shed} shed (typed 429s) in {secs:.2}s \
             ({:.0} req/s)",
            served as f64 / secs
        );
    });

    let mut guest = guest_lat.into_inner().unwrap();
    let mut vip = vip_lat.into_inner().unwrap();
    println!("guest retries after shed: {}", shed_retries.load(Ordering::Relaxed));
    report("guest", &mut guest);
    report("vip  ", &mut vip);

    // The same listener answers plain HTTP: fetch the merged scrape.
    let probe = server.connect();
    probe.send(b"GET /metrics HTTP/1.1\r\nHost: sim\r\n\r\n");
    server.poll();
    let mut body = Vec::new();
    probe.drain_into(&mut body);
    let text = String::from_utf8_lossy(&body);
    println!("\nGET /metrics (store_net_* series):");
    for line in text.lines().filter(|l| l.starts_with("store_net_") && !l.contains("_bucket")) {
        println!("  {line}");
    }
}

/// Drives every client through `REQUESTS_PER_CONN` request/response
/// round-trips, retrying typed backpressure sheds; returns the observed
/// round-trip latencies in nanoseconds.
fn drive(
    clients: &mut [NetClient],
    credential: TierCredential,
    shed_retries: &AtomicU64,
) -> Vec<u64> {
    struct Pending {
        sent_at: Instant,
        round: usize,
    }
    let mut latencies = Vec::with_capacity(clients.len() * REQUESTS_PER_CONN);
    let mut pending: Vec<Option<Pending>> = Vec::new();
    let mut rounds: Vec<usize> = vec![0; clients.len()];
    pending.resize_with(clients.len(), || None);
    let mut done = 0usize;
    while done < clients.len() {
        let mut progressed = false;
        for (c, client) in clients.iter_mut().enumerate() {
            if rounds[c] >= REQUESTS_PER_CONN {
                continue;
            }
            match &pending[c] {
                None => {
                    let key = format!(
                        "load/{credential_tag}/{c}/{r}",
                        credential_tag = match credential {
                            TierCredential::Vip { .. } => "vip",
                            TierCredential::Guest => "guest",
                        },
                        r = rounds[c]
                    );
                    let req = Request::new(vec![
                        StoreOp::Put(key.clone(), rounds[c] as u64),
                        StoreOp::Get(key),
                    ])
                    .credential(credential)
                    .retry_budget(8);
                    client.send(&req);
                    pending[c] = Some(Pending { sent_at: Instant::now(), round: rounds[c] });
                    progressed = true;
                }
                Some(p) => {
                    let responses = client.drain().expect("clean wire");
                    if responses.is_empty() {
                        continue;
                    }
                    progressed = true;
                    let (_, results) = &responses[0];
                    let was_shed = results
                        .iter()
                        .any(|r| matches!(r, Err(StoreError::RetryBudgetExhausted { .. })));
                    if was_shed {
                        // Typed backpressure: resend the whole round.
                        shed_retries.fetch_add(1, Ordering::Relaxed);
                        pending[c] = None;
                    } else {
                        assert!(results.iter().all(|r| r.is_ok()), "request failed: {results:?}");
                        let rtt = u64::try_from(p.sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        latencies.push(rtt);
                        rounds[c] = p.round + 1;
                        pending[c] = None;
                        if rounds[c] >= REQUESTS_PER_CONN {
                            done += 1;
                        }
                    }
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    latencies
}

fn report(tier: &str, lat: &mut [u64]) {
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx.min(lat.len() - 1)]
    };
    println!(
        "{tier} rtt over {:>6} requests: p50 {:>9} ns   p99 {:>9} ns   p999 {:>9} ns",
        lat.len(),
        pct(0.50),
        pct(0.99),
        pct(0.999)
    );
}
