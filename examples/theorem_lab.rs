//! The theorem lab: reproduce the paper's results on your laptop.
//!
//! Run with: `cargo run --release --example theorem_lab`
//!
//! Prints, for each headline result of the paper, what the executable
//! machinery found:
//!
//! * **Corollary 1 / Theorem 3** — the hierarchy table (exhaustive
//!   constructive verification + starvation certificates);
//! * **Theorem 2** — the crash-and-lockstep adversary's non-termination
//!   certificates;
//! * **Lemma 3 / Theorem 1** — bivalent empty runs and the
//!   bivalence-preserving adversary starving a register-based consensus;
//! * **Theorem 4 / Lemma 7** — the fault-free starvation schedule;
//! * **Theorem 5/6 (Figures 4 and 5)** — exhaustive model-checking summary
//!   for the arbiter and the group algorithm.

use asymmetric_progress::core::arbiter::model::arbiter_system;
use asymmetric_progress::core::group::model::group_system;
use asymmetric_progress::core::group::GroupLayout;
use asymmetric_progress::hierarchy::{corollary1, theorem1, theorem2, theorem4};
use asymmetric_progress::model::explore::{Agreement, ExploreConfig, Explorer, NoFaults};
use asymmetric_progress::model::fairness::{fair_termination, StateGraph};
use asymmetric_progress::model::ProcessSet;

fn main() {
    banner("Corollary 1 — the (n,x)-liveness hierarchy");
    let rows = corollary1::hierarchy_table(2, 1);
    print!("{}", corollary1::render_table(&rows));

    banner("Theorem 2 — crash the wait-free set, lockstep the guests");
    for (n, x) in [(3, 1), (4, 2), (5, 3)] {
        let report = theorem2::theorem2_scenario(n, x, 1);
        println!("  {report}");
    }
    println!(
        "  complement: with the wait-free set alive, (4,2) terminates: {}",
        theorem2::theorem2_complement(4, 2, 1)
    );
    println!(
        "  boundary:   a lone guest (n−x = 1) is in isolation and decides: {}",
        theorem2::lone_guest_decides(3, 1)
    );

    banner("Lemma 3 — bivalent empty runs of register-based consensus");
    println!("  mixed inputs (n=2):    {:?}", theorem1::lemma3_bivalent_empty_run(2, 2));

    banner("Theorem 1 — the bivalence-preserving adversary");
    let report = theorem1::theorem1_starvation(30);
    println!("  {report}");
    println!("  ⇒ registers alone cannot grant wait-freedom to any process");

    banner("Theorem 4 / Lemma 7 — fault-free starvation");
    let ff = theorem4::fault_freedom_adversary(2, 10, 20);
    println!("  {ff}");
    println!(
        "  complement: plain round-robin (no adversary) decides: {}",
        theorem4::fault_free_round_robin_decides(2, 8, 2000)
    );

    banner("Theorem 5 — the arbiter (Figure 4), exhaustively model-checked");
    let (sys, _) =
        arbiter_system(3, ProcessSet::from_indices([0]), ProcessSet::from_indices([1, 2]));
    let explorer = Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(3)));
    let result = explorer.explore(&sys, &[&Agreement, &NoFaults]);
    println!(
        "  1 owner vs 2 guests, crash budget 1: {} states, agreement {}",
        result.states,
        if result.ok() { "verified" } else { "VIOLATED" }
    );
    let graph = StateGraph::build(&sys, 1_000_000);
    println!(
        "  fair termination with a correct owner: {}",
        if fair_termination(&graph, |_| true).holds() { "verified" } else { "VIOLATED" }
    );

    banner("Theorem 6 — group consensus (Figure 5), exhaustively model-checked");
    let layout = GroupLayout::new(3, 1).unwrap();
    let (sys, _) = group_system(layout, ProcessSet::first_n(3));
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(3_000_000));
    let result = explorer.explore(&sys, &[&Agreement, &NoFaults]);
    println!(
        "  3 singleton groups, all participate: {} states, agreement {}",
        result.states,
        if result.ok() { "verified" } else { "VIOLATED" }
    );
    let graph = StateGraph::build(&sys, 3_000_000);
    println!(
        "  asymmetric termination (Lemma 10): {}",
        if fair_termination(&graph, |_| true).holds() { "verified" } else { "VIOLATED" }
    );
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}
