//! A tiered configuration store: the paper's motivation made concrete.
//!
//! Run with: `cargo run --example tiered_config_store`
//!
//! §1.2: "in some applications, some processes are more important than
//! others from the object liveness point of view". Here, a small replicated
//! configuration store is shared by two *control-plane* threads (which must
//! never be blocked — they hold leases, answer health checks) and several
//! *worker* threads (which may retry under contention).
//!
//! The store is the universal construction over a key→value map, driven by
//! `(n,2)`-live consensus cells: control-plane operations are wait-free,
//! worker operations obstruction-free. One object, two service classes —
//! an asymmetric progress condition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::universal::seq::{KvOp, KvStore};
use asymmetric_progress::universal::{AsymmetricFactory, Universal};

const CONTROL_THREADS: usize = 2;
const WORKER_THREADS: usize = 6;
const CONTROL_OPS: usize = 200;
const WORKER_OPS: usize = 100;

fn main() {
    // One extra port reserved for the post-hoc auditor.
    let n = CONTROL_THREADS + WORKER_THREADS + 1;
    let spec = Liveness::new_first_n(n, CONTROL_THREADS);
    println!("tiered config store: {spec}");
    let store = Universal::new(KvStore, AsymmetricFactory::new(spec), n);

    let control_nanos = AtomicU64::new(0);
    let worker_nanos = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Control plane: wait-free puts of lease/epoch keys.
        for pid in 0..CONTROL_THREADS {
            let store = &store;
            let control_nanos = &control_nanos;
            s.spawn(move || {
                let mut h = store.handle(pid).expect("one handle per pid");
                let t0 = Instant::now();
                for i in 0..CONTROL_OPS {
                    h.apply(KvOp::Put(format!("lease/{pid}"), i as u64));
                    if i % 10 == 0 {
                        h.apply(KvOp::Get("epoch".into()));
                    }
                }
                control_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
        // Workers: obstruction-free progress reports.
        for w in 0..WORKER_THREADS {
            let pid = CONTROL_THREADS + w;
            let store = &store;
            let worker_nanos = &worker_nanos;
            s.spawn(move || {
                let mut h = store.handle(pid).expect("one handle per pid");
                let t0 = Instant::now();
                for i in 0..WORKER_OPS {
                    h.apply(KvOp::Put(format!("progress/{w}"), i as u64));
                }
                worker_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });

    let control_per_op =
        control_nanos.load(Ordering::Relaxed) / (CONTROL_THREADS * CONTROL_OPS) as u64;
    let worker_per_op = worker_nanos.load(Ordering::Relaxed) / (WORKER_THREADS * WORKER_OPS) as u64;
    println!("control-plane (wait-free) mean latency:   {control_per_op:>8} ns/op");
    println!("workers      (obstr.-free) mean latency:  {worker_per_op:>8} ns/op");
    println!(
        "asymmetry visible: control plane {} workers",
        if control_per_op <= worker_per_op { "≤" } else { "> (unusual; OS noise)" }
    );

    // Audit the final state through the reserved reader port: every key
    // must hold its last written value.
    println!("\nfinal state (audited through the reserved port):");
    let mut auditor = store.handle(n - 1).expect("reserved port");
    for pid in 0..CONTROL_THREADS {
        let v = auditor.apply(KvOp::Get(format!("lease/{pid}")));
        assert_eq!(v, Some(CONTROL_OPS as u64 - 1), "lease/{pid} audit");
        println!("  lease/{pid}    = {v:?}");
    }
    for w in 0..WORKER_THREADS {
        let v = auditor.apply(KvOp::Get(format!("progress/{w}")));
        assert_eq!(v, Some(WORKER_OPS as u64 - 1), "progress/{w} audit");
        println!("  progress/{w} = {v:?}");
    }
    println!(
        "\naudit passed: {} control ops and {} worker ops linearized",
        CONTROL_THREADS * CONTROL_OPS,
        WORKER_THREADS * WORKER_OPS
    );
}
