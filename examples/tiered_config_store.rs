//! A tiered configuration store: the paper's motivation made concrete.
//!
//! Run with: `cargo run --example tiered_config_store`
//!
//! §1.2: "in some applications, some processes are more important than
//! others from the object liveness point of view". Here, a small sharded
//! configuration store is shared by two *control-plane* threads (which must
//! never be blocked — they hold leases, answer health checks) and several
//! *worker* threads (which may retry under contention).
//!
//! This version drives the service layer through its **unified request
//! envelope**: every operation — control-plane lease writes, worker
//! progress reports, the final audit scan — is one
//! [`Request`](asymmetric_progress::store::Request) with an explicit tier
//! credential and a *finite* retry budget, answered by a
//! [`Response`](asymmetric_progress::store::Response) whose failures are
//! typed values, not blocked threads. Control-plane requests ride the
//! bounded wait-free VIP arm; workers ride the obstruction-free guest arm.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use asymmetric_progress::store::{Request, StoreBuilder, StoreOp, StoreResp, TierCredential};

const CONTROL_THREADS: usize = 2;
const WORKER_THREADS: usize = 6;
const CONTROL_OPS: usize = 200;
const WORKER_OPS: usize = 100;

fn main() {
    let store =
        StoreBuilder::new().shards(4).vip_capacity(CONTROL_THREADS).build().expect("valid sizing");
    println!(
        "tiered config store: {} shards, VIP capacity {CONTROL_THREADS}, guests unbounded",
        store.snapshot_stats().len()
    );

    // Admission up front: the VIP tier is bounded (hard guarantees are,
    // per Theorem 3), so control-plane tickets are claimed before spawn.
    let control_tickets: Vec<_> =
        (0..CONTROL_THREADS).map(|_| store.admit_vip().expect("within VIP capacity")).collect();
    assert!(store.admit_vip().is_err(), "the VIP tier is full — by design");

    let control_nanos = AtomicU64::new(0);
    let worker_nanos = AtomicU64::new(0);
    let typed_rejections = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Control plane: wait-free lease/epoch writes through the envelope.
        for (pid, ticket) in control_tickets.into_iter().enumerate() {
            let store = &store;
            let control_nanos = &control_nanos;
            s.spawn(move || {
                let mut client = store.client(ticket);
                let credential = client.credential();
                let t0 = Instant::now();
                for i in 0..CONTROL_OPS {
                    let mut ops = vec![StoreOp::Put(format!("lease/{pid}"), i as u64)];
                    if i % 10 == 0 {
                        ops.push(StoreOp::Get("epoch".into()));
                    }
                    // A finite budget keeps this off the blocking arm: a
                    // topology race would surface as a typed error after
                    // at most 8 re-plans, never as an unbounded wait.
                    let resp =
                        client.request(Request::new(ops).credential(credential).retry_budget(8));
                    assert!(resp.is_ok(), "control-plane request failed: {:?}", resp.results);
                }
                control_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
        // Workers: obstruction-free progress reports, same envelope.
        for w in 0..WORKER_THREADS {
            let store = &store;
            let worker_nanos = &worker_nanos;
            let typed_rejections = &typed_rejections;
            s.spawn(move || {
                let mut client = store.client(store.admit_guest());
                let credential = client.credential();
                let t0 = Instant::now();
                for i in 0..WORKER_OPS {
                    let req = Request::new(vec![StoreOp::Put(format!("progress/{w}"), i as u64)])
                        .credential(credential)
                        .retry_budget(4);
                    let resp = client.request(req);
                    assert!(resp.is_ok(), "worker request failed: {:?}", resp.results);
                }
                // A guest claiming the VIP tier gets a typed refusal — the
                // envelope cannot escalate what admission granted.
                let sneak = client.request(
                    Request::new(vec![StoreOp::Get("epoch".into())])
                        .credential(TierCredential::Vip { token: 0 }),
                );
                assert!(!sneak.is_ok(), "tier escalation must be refused");
                typed_rejections.fetch_add(1, Ordering::Relaxed);
                worker_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });

    let control_per_op =
        control_nanos.load(Ordering::Relaxed) / (CONTROL_THREADS * CONTROL_OPS) as u64;
    let worker_per_op = worker_nanos.load(Ordering::Relaxed) / (WORKER_THREADS * WORKER_OPS) as u64;
    println!("control-plane (VIP, bounded wait-free) mean latency: {control_per_op:>8} ns/op");
    println!("workers      (guest, obstruction-free) mean latency: {worker_per_op:>8} ns/op");
    println!(
        "typed tier refusals (no thread ever blocked): {}",
        typed_rejections.load(Ordering::Relaxed)
    );

    // Audit the final state through one more guest session: every key must
    // hold its last written value. One envelope, one scan.
    let mut auditor = store.client(store.admit_guest());
    let resp = auditor.request(
        Request::new(vec![StoreOp::Scan { from: String::new(), to: "z".into() }])
            .credential(auditor.credential())
            .retry_budget(4),
    );
    let Ok(StoreResp::Entries(entries)) = &resp.results[0] else {
        panic!("audit scan failed: {:?}", resp.results)
    };
    println!("\nfinal state (audited through a guest envelope):");
    for pid in 0..CONTROL_THREADS {
        let key = format!("lease/{pid}");
        let v = entries.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        assert_eq!(v, Some(CONTROL_OPS as u64 - 1), "{key} audit");
        println!("  {key}    = {v:?}");
    }
    for w in 0..WORKER_THREADS {
        let key = format!("progress/{w}");
        let v = entries.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        assert_eq!(v, Some(WORKER_OPS as u64 - 1), "{key} audit");
        println!("  {key} = {v:?}");
    }
    println!(
        "\naudit passed: {} control ops and {} worker ops linearized",
        CONTROL_THREADS * CONTROL_OPS,
        WORKER_THREADS * WORKER_OPS
    );
}
