//! A work queue with a VIP consumer: asymmetric service tiers in action.
//!
//! Run with: `cargo run --example ticket_queue`
//!
//! A FIFO ticket queue is built *on the store*: producers claim globally
//! ordered slots with a CAS on a sequence key and publish their items under
//! zero-padded slot keys; one *dispatcher* drains the slot range with
//! scan+remove batches. The dispatcher drives downstream machinery and must
//! never be blocked by producer contention, so it holds the store's VIP
//! ticket and every one of its requests rides the bounded wait-free arm;
//! producers are obstruction-free guests (they retry CAS losses, which the
//! scheduler resolves quickly in practice).
//!
//! Everything speaks the **unified request envelope** — claims, publishes,
//! drains — with finite retry budgets throughout: contention and topology
//! races surface as typed response values, never as blocked threads.
//!
//! The run demonstrates both halves of the contract:
//! * every produced item is dispatched exactly once, in claim order
//!   (linearizability of the per-shard consensus logs);
//! * the dispatcher's requests complete in a bounded number of its own
//!   steps even while producers hammer the sequence key (wait-freedom).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use asymmetric_progress::store::{Request, StoreBuilder, StoreOp, StoreResp};

const PRODUCERS: usize = 5;
const ITEMS_PER_PRODUCER: u64 = 40;
const SEQ_KEY: &str = "queue/seq";

fn main() {
    let store = StoreBuilder::new().shards(2).vip_capacity(1).build().expect("valid sizing");
    let total = PRODUCERS as u64 * ITEMS_PER_PRODUCER;
    println!("ticket queue over the store: dispatcher = VIP, {PRODUCERS} guest producers");

    let cas_retries = AtomicU64::new(0);
    let mut dispatched: Vec<(u64, u64)> = Vec::new(); // (slot, item)

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let store = &store;
            let cas_retries = &cas_retries;
            s.spawn(move || {
                let mut client = store.client(store.admit_guest());
                let credential = client.credential();
                for i in 0..ITEMS_PER_PRODUCER {
                    // Claim the next slot: CAS the sequence key upward
                    // until we win one. Losses are typed Cas{ok:false}
                    // responses carrying the fresh value — no re-read.
                    let mut expect = None;
                    let slot = loop {
                        let claim = Request::new(vec![StoreOp::Cas {
                            key: SEQ_KEY.into(),
                            expect,
                            new: expect.map_or(1, |v| v + 1),
                        }])
                        .credential(credential)
                        .retry_budget(4);
                        match &store_resp(client.request(claim))[0] {
                            StoreResp::Cas { ok: true, actual } => {
                                break actual.unwrap_or(0);
                            }
                            StoreResp::Cas { ok: false, actual } => {
                                cas_retries.fetch_add(1, Ordering::Relaxed);
                                expect = *actual;
                            }
                            other => panic!("unexpected claim response: {other:?}"),
                        }
                    };
                    // Publish the item under its slot key.
                    let item = (p + 1) as u64 * 1_000 + i;
                    let publish =
                        Request::new(vec![StoreOp::Put(format!("queue/slot/{slot:06}"), item)])
                            .credential(credential)
                            .retry_budget(4);
                    let resp = client.request(publish);
                    assert!(resp.is_ok(), "publish failed: {:?}", resp.results);
                }
            });
        }

        // Dispatcher: drain concurrently with production, VIP tier.
        let store = &store;
        let dispatched = &mut dispatched;
        s.spawn(move || {
            let mut client = store.client(store.admit_vip().expect("the VIP slot"));
            let credential = client.credential();
            while (dispatched.len() as u64) < total {
                // One bounded envelope scans the published slot range…
                let scan = Request::new(vec![StoreOp::Scan {
                    from: "queue/slot/".into(),
                    to: "queue/slot/~".into(),
                }])
                .credential(credential)
                .retry_budget(8);
                let StoreResp::Entries(entries) = store_resp(client.request(scan)).remove(0) else {
                    panic!("scan must return entries")
                };
                if entries.is_empty() {
                    std::thread::yield_now();
                    continue;
                }
                // …and a second removes what it saw, as one batch.
                let removes: Vec<StoreOp> =
                    entries.iter().map(|(k, _)| StoreOp::Remove(k.clone())).collect();
                let resp =
                    client.request(Request::new(removes).credential(credential).retry_budget(8));
                for ((key, item), removed) in entries.into_iter().zip(store_resp(resp)) {
                    // The dispatcher is the only consumer, so every remove
                    // must hit (exactly-once dispatch).
                    assert_eq!(removed, StoreResp::Value(Some(item)), "{key} vanished");
                    let slot: u64 =
                        key.rsplit('/').next().unwrap().parse().expect("zero-padded slot");
                    dispatched.push((slot, item));
                }
            }
        });
    });

    // Exactly-once dispatch.
    assert_eq!(dispatched.len() as u64, total, "every item dispatched");
    let unique: std::collections::HashSet<u64> = dispatched.iter().map(|(_, item)| *item).collect();
    assert_eq!(unique.len() as u64, total, "no duplicates");

    // Per-producer FIFO: a producer publishes slot k before claiming any
    // later slot, so its items can only ever be scanned — and therefore
    // dispatched — in claim order. (Global slot order is *not* guaranteed:
    // a higher slot may be published, scanned, and dispatched before a
    // lower one whose producer is still between claim and publish.)
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    for (_, item) in &dispatched {
        let producer = item / 1_000;
        let seq = item % 1_000;
        if let Some(&prev) = last_seen.get(&producer) {
            assert!(seq > prev, "producer {producer} order violated: {prev} then {seq}");
        }
        last_seen.insert(producer, seq);
    }

    println!(
        "dispatched {total} items, exactly once, per-producer FIFO preserved \
         ({} CAS losses retried by guests)",
        cas_retries.load(Ordering::Relaxed)
    );
    let first: Vec<u64> = dispatched.iter().take(10).map(|(_, item)| *item).collect();
    println!("first 10 dispatched: {first:?}");
}

/// Unwraps every per-op result of a response (this example's requests are
/// all expected to succeed; typed errors are panics here).
fn store_resp(resp: asymmetric_progress::store::Response) -> Vec<StoreResp> {
    resp.results.into_iter().map(|r| r.unwrap_or_else(|e| panic!("request failed: {e}"))).collect()
}
