//! A work queue with a VIP consumer: asymmetric universal objects in action.
//!
//! Run with: `cargo run --example ticket_queue`
//!
//! A FIFO queue is shared by several producers and one *dispatcher*. The
//! dispatcher drives downstream machinery and must never be blocked by
//! producer contention, so it gets the wait-free slot of an `(n,1)`-live
//! universal object; producers are obstruction-free (they retry under
//! contention, which the OS scheduler resolves quickly in practice).
//!
//! The run demonstrates both halves of the contract:
//! * every produced item is dispatched exactly once, in per-producer order
//!   (linearizability of the universal construction);
//! * the dispatcher's operations complete in a bounded number of its own
//!   steps even while producers hammer the queue (wait-freedom).

use std::collections::HashMap;

use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::universal::seq::{Queue, QueueOp};
use asymmetric_progress::universal::{AsymmetricFactory, Universal};

const PRODUCERS: usize = 5;
const ITEMS_PER_PRODUCER: u64 = 40;

fn main() {
    let n = PRODUCERS + 1; // pid 0 is the dispatcher
    let spec = Liveness::new_first_n(n, 1);
    println!("work queue: {spec} (dispatcher = p0, wait-free)");
    let queue = Universal::new(Queue, AsymmetricFactory::new(spec), n);

    let mut dispatched: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let queue = &queue;
            s.spawn(move || {
                let pid = p + 1;
                let mut h = queue.handle(pid).expect("one handle per pid");
                for i in 0..ITEMS_PER_PRODUCER {
                    h.apply(QueueOp::Enqueue(pid as u64 * 1_000 + i));
                }
            });
        }

        // Dispatcher: drain concurrently with production.
        let queue = &queue;
        let dispatched = &mut dispatched;
        s.spawn(move || {
            let mut h = queue.handle(0).expect("dispatcher handle");
            let total = PRODUCERS as u64 * ITEMS_PER_PRODUCER;
            while (dispatched.len() as u64) < total {
                if let Some(item) = h.apply(QueueOp::Dequeue) {
                    dispatched.push(item);
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });

    // Exactly-once dispatch.
    let total = PRODUCERS as u64 * ITEMS_PER_PRODUCER;
    assert_eq!(dispatched.len() as u64, total, "every item dispatched");
    let unique: std::collections::HashSet<u64> = dispatched.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "no duplicates");

    // Per-producer FIFO order.
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    for &item in &dispatched {
        let producer = item / 1_000;
        let seq = item % 1_000;
        if let Some(&prev) = last_seen.get(&producer) {
            assert!(seq > prev, "producer {producer} order violated: {prev} then {seq}");
        }
        last_seen.insert(producer, seq);
    }

    println!("dispatched {total} items, exactly once, per-producer FIFO order preserved");
    println!("first 10 dispatched: {:?}", &dispatched[..10.min(dispatched.len())]);
}
