//! Quickstart: asymmetric progress in five minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The example walks the paper's spectrum end to end:
//! 1. a `(6,2)`-live consensus object across 6 threads (wait-freedom for
//!    processes 0 and 1, obstruction-freedom for the rest);
//! 2. the arbiter object type (Figure 4);
//! 3. group-based asymmetric consensus (Figure 5);
//! 4. the consensus-number arithmetic of Theorem 3;
//! 5. the service layer's unified request envelope: one `Request` →
//!    `Response` API carrying tier credential, durability, deadline and
//!    retry budget — the same envelope the wire protocol speaks.

use asymmetric_progress::core::arbiter::{Arbiter, Role};
use asymmetric_progress::core::consensus::{AsymmetricConsensus, Consensus};
use asymmetric_progress::core::group::GroupConsensus;
use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::model::ProcessSet;
use asymmetric_progress::store::{
    Request, StoreBuilder, StoreError, StoreOp, StoreResp, TierCredential,
};

fn main() {
    banner("1. A (6,2)-live consensus object");
    let spec = Liveness::new_first_n(6, 2);
    println!("spec: {spec}");
    println!("consensus number (Theorem 3): {}", spec.consensus_number());
    let cons: AsymmetricConsensus<String> = AsymmetricConsensus::new(spec);
    std::thread::scope(|s| {
        for pid in 0..6usize {
            let cons = &cons;
            s.spawn(move || {
                let role = if spec.is_wait_free_for(pid) { "wait-free" } else { "guest" };
                let decided = cons.propose(pid, format!("value-of-p{pid}")).unwrap();
                println!("  p{pid} ({role:9}) decided {decided}");
            });
        }
    });
    let (wf, guests) = cons.path_stats();
    println!("  paths taken: {wf} wait-free, {guests} obstruction-free");

    banner("2. The arbiter object type (Figure 4)");
    let arbiter = Arbiter::new(ProcessSet::from_indices([0, 1]));
    std::thread::scope(|s| {
        for pid in 0..2usize {
            let arbiter = &arbiter;
            s.spawn(move || {
                let w = arbiter.arbitrate(pid, Role::Owner).unwrap();
                println!("  owner p{pid} sees winner: {w}");
            });
        }
        for pid in 2..5usize {
            let arbiter = &arbiter;
            s.spawn(move || {
                let w = arbiter.arbitrate(pid, Role::Guest).unwrap();
                println!("  guest p{pid} sees winner: {w}");
            });
        }
    });

    banner("3. Group-based asymmetric consensus (Figure 5)");
    // 6 processes, (2,2)-live objects → 3 ordered groups of 2.
    let group: GroupConsensus<u64> = GroupConsensus::new(6, 2).unwrap();
    println!("layout: {}", group.layout());
    std::thread::scope(|s| {
        for pid in 0..6usize {
            let group = &group;
            s.spawn(move || {
                let decided = group.propose(pid, 100 + pid as u64).unwrap();
                println!("  p{pid} (group {}) decided {decided}", group.layout().group_of(pid));
            });
        }
    });
    println!("final decision: {:?}", group.peek());

    banner("4. The hierarchy (Corollary 1)");
    let n = 6;
    for x in [0, 1, 2, n - 1, n] {
        let spec = Liveness::new_first_n(n, x);
        println!("  ({n},{x})-live consensus has consensus number {}", spec.consensus_number());
    }
    println!("  ⇒ (6,0) ≺ (6,1) ≺ (6,2) ≺ … ≺ (6,5) ≃ (6,6)");

    banner("5. The service layer: one envelope, two tiers");
    let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
    let mut vip = store.client(store.admit_vip().unwrap());
    let mut guest = store.client(store.admit_guest());

    // One Request carries the ops, the tier credential, and a finite
    // retry budget; the Response answers per-op with typed results.
    let resp = vip.request(
        Request::new(vec![
            StoreOp::Put("config/epoch".into(), 1),
            StoreOp::Get("config/epoch".into()),
        ])
        .credential(vip.credential())
        .retry_budget(4),
    );
    assert_eq!(resp.results[1], Ok(StoreResp::Value(Some(1))));
    println!("  VIP envelope served on the bounded wait-free arm: {:?}", resp.results[1]);

    // Failure is a value: a guest claiming the VIP tier is refused with a
    // typed error, not blocked or panicked.
    let denied = guest.request(
        Request::new(vec![StoreOp::Get("config/epoch".into())])
            .credential(TierCredential::Vip { token: 0 }),
    );
    assert_eq!(denied.results[0], Err(StoreError::GuestTier));
    println!("  guest claiming VIP refused with: {:?}", denied.results[0]);
    println!("  (the wire protocol in `apc-net` ships this exact envelope — see docs/WIRE.md)");
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}
