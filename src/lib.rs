//! # `asymmetric-progress` — facade crate
//!
//! A comprehensive Rust implementation of
//! *On Asymmetric Progress Conditions* (Damien Imbs, Michel Raynal,
//! Gadi Taubenfeld, PODC 2010): `(y,x)`-live objects, the arbiter object
//! type, group-based asymmetric consensus, the `(n,x)`-liveness hierarchy,
//! and the simulation/model-checking substrate used to reproduce the paper's
//! theorems.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — simulated asynchronous shared memory, schedulers, the
//!   exhaustive explorer, valence analysis, fairness/livelock analysis and
//!   non-termination certificates.
//! * [`registers`] — real lock-free atomic register substrate
//!   (`AtomicPtr` + crossbeam-epoch cells, stamped registers, snapshots).
//! * [`core`] — the paper's contribution: liveness specifications,
//!   asymmetric consensus objects, the arbiter (Figure 4) and group-based
//!   asymmetric consensus (Figure 5), in both real-thread and model form.
//! * [`common2`] — Common2 objects (§3.5): Test&Set, Fetch&Add, Swap.
//! * [`universal`] — Herlihy's universal construction driven by symmetric or
//!   asymmetric consensus.
//! * [`hierarchy`] — executable theorem machinery for Theorems 1–4 and the
//!   `(n,x)`-liveness hierarchy (Corollary 1).
//! * [`store`] — the service layer: a sharded, linearizable-per-shard
//!   key→value store whose clients are admitted into asymmetric progress
//!   classes (bounded wait-free VIP tier, unbounded obstruction-free guest
//!   tier), built on the universal construction, with checkpoint-sealed
//!   crash-recoverable persistence (`store::persist`).
//! * [`net`] — the wire-protocol front-end: a length-prefixed binary codec
//!   for the store's unified `Request`/`Response` envelope, simulated
//!   connections, and a single-threaded reactor that preserves the
//!   asymmetric tiers across the network boundary (VIP dispatch stays
//!   bounded wait-free; guest overload sheds as typed backpressure).
//!
//! ## Quickstart
//!
//! Solve consensus among 6 threads where threads 0 and 1 are guaranteed
//! wait-freedom and the rest obstruction-freedom:
//!
//! ```
//! use asymmetric_progress::core::consensus::{AsymmetricConsensus, Consensus};
//! use asymmetric_progress::core::liveness::Liveness;
//!
//! let spec = Liveness::new_first_n(6, 2); // (6,2)-live: ports {0..5}, wait-free {0,1}
//! let cons: AsymmetricConsensus<u64> = AsymmetricConsensus::new(spec);
//! std::thread::scope(|s| {
//!     for t in 0..6u64 {
//!         let cons = &cons;
//!         s.spawn(move || {
//!             let decided = cons.propose(t as usize, t * 10).unwrap();
//!             assert!(decided % 10 == 0);
//!         });
//!     }
//! });
//! ```

pub use apc_common2 as common2;
pub use apc_core as core;
pub use apc_hierarchy as hierarchy;
pub use apc_model as model;
pub use apc_net as net;
pub use apc_registers as registers;
pub use apc_store as store;
pub use apc_universal as universal;
