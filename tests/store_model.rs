//! Exhaustive model checks of the store's shard commit path: commit safety
//! on every schedule, the asymmetric liveness guarantee (Theorem 3
//! flavor) — every fair schedule with a VIP participant terminates, while
//! guest-only schedules admit a fair livelock — the checkpoint-install
//! race: a checkpoint proposed through the same consensus path as client
//! batches is safe on every schedule (no committed op dropped or replayed
//! twice) — and the **split-vs-commit race**: a live shard split's
//! topology-bump record racing concurrent VIP/guest batches places exactly
//! once on every schedule, and VIP fair-termination survives the split.

use asymmetric_progress::model::explore::{
    Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn,
};
use asymmetric_progress::model::fairness::{fair_livelocks, fair_termination, StateGraph};
use asymmetric_progress::model::ObjectId;
use asymmetric_progress::model::{ProcessSet, Value};
use asymmetric_progress::store::model::{
    checkpointed_commit_system, merge_adopt_system, merge_commit_system, proposed_batches,
    shard_commit_system, split_commit_system, MergeOrder, PlacementSafety, ADOPT_BASE,
    CHECKPOINT_BASE, MERGE_BASE, SPLIT_BASE,
};

fn mask_participants(mask: u8, n: usize) -> ProcessSet {
    (0..n).filter(|i| mask & (1 << i) != 0).collect::<Vec<usize>>().into_iter().collect()
}

/// Safety matrix: for every participation pattern of a (3,1) shard cell,
/// every schedule agrees on one committed batch and the committed batch was
/// proposed.
#[test]
fn commit_safety_matrix_3_1_exhaustive() {
    for mask in 1u8..8 {
        let participants = mask_participants(mask, 3);
        let (sys, _) = shard_commit_system(3, 1, 1, participants);
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(300_000));
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new(proposed_batches(participants)), &NoFaults],
        );
        assert!(result.ok(), "mask {mask:03b}: {:?}", result.violations.first());
        assert!(!result.truncated, "mask {mask:03b} must be exhaustive");
    }
}

/// Safety at (4,2): two VIP ports, two guest ports, all participating.
#[test]
fn commit_safety_4_2_exhaustive() {
    let participants = ProcessSet::first_n(4);
    let (sys, _) = shard_commit_system(4, 2, 1, participants);
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(500_000));
    let result = explorer
        .explore(&sys, &[&Agreement, &ValidityIn::new(proposed_batches(participants)), &NoFaults]);
    assert!(result.ok(), "{:?}", result.violations.first());
    assert!(!result.truncated);
}

/// The asymmetric guarantee, positive half: **any** participation pattern
/// containing a VIP port terminates under every fair schedule.
#[test]
fn vip_schedules_always_terminate() {
    for (ports, vips) in [(3usize, 1usize), (4, 2)] {
        for mask in 1u8..(1 << ports) {
            let participants = mask_participants(mask, ports);
            let has_vip = participants.iter().any(|p| p.index() < vips);
            if !has_vip {
                continue;
            }
            let (sys, _) = shard_commit_system(ports, vips, 1, participants);
            let graph = StateGraph::build(&sys, 500_000);
            assert!(!graph.truncated(), "({ports},{vips}) mask {mask:04b} truncated");
            let verdict = fair_termination(&graph, |pid| participants.contains(pid));
            assert!(verdict.holds(), "({ports},{vips}) mask {mask:04b}: {verdict:?}");
        }
    }
}

/// The asymmetric guarantee, negative half: guest-only schedules can
/// livelock — the checker exhibits the lockstep starvation as a positive
/// witness in which every guest keeps stepping yet none ever commits.
#[test]
fn guest_only_schedules_admit_livelock() {
    for (ports, vips, guest_mask) in [(3usize, 1usize, 0b110u8), (4, 2, 0b1100)] {
        let participants = mask_participants(guest_mask, ports);
        let (sys, _) = shard_commit_system(ports, vips, 1, participants);
        let graph = StateGraph::build(&sys, 500_000);
        assert!(!graph.truncated());
        let witnesses = fair_livelocks(&graph);
        assert!(
            !witnesses.is_empty(),
            "({ports},{vips}) guests {guest_mask:04b}: lockstep livelock witness expected"
        );
        // The witness starves exactly the participating guests.
        assert!(witnesses.iter().any(|w| w.live.iter().all(|p| participants.contains(p))));
        let verdict = fair_termination(&graph, |pid| participants.contains(pid));
        assert!(!verdict.holds(), "guest-only termination must not be guaranteed");
    }
}

/// The checkpoint race matrix, exhaustively: for a (3,1) shard, every
/// committer participation pattern racing a checkpoint install from every
/// non-committing port satisfies [`PlacementSafety`] on **every** schedule
/// — no committed batch is dropped, nothing (batch or checkpoint) is
/// agreed by two log cells, and terminal states place every participant.
#[test]
fn checkpoint_install_race_safety_matrix_exhaustive() {
    for committer_mask in 0u8..8 {
        for ck in 0usize..3 {
            if committer_mask & (1 << ck) != 0 {
                continue; // the checkpointer does not also commit a batch
            }
            let committers = mask_participants(committer_mask, 3);
            let participants = mask_participants(committer_mask | (1 << ck), 3);
            let (sys, cells, proposals) = checkpointed_commit_system(3, 1, 1, committers, Some(ck));
            let safety = PlacementSafety { cells, participants, proposals };
            let explorer = Explorer::new(ExploreConfig::default().with_max_states(400_000));
            let result = explorer.explore(&sys, &[&safety, &NoFaults]);
            assert!(
                result.ok(),
                "committers {committer_mask:03b} + ckpt {ck}: {:?}",
                result.violations.first()
            );
            assert!(
                !result.truncated,
                "committers {committer_mask:03b} + ckpt {ck} must be exhaustive"
            );
        }
    }
}

/// At (4,2): both VIPs and a guest commit while the other guest installs a
/// checkpoint — still safe on every schedule.
#[test]
fn checkpoint_race_4_2_exhaustive() {
    let committers = ProcessSet::from_indices([0, 1, 2]);
    let (sys, cells, proposals) = checkpointed_commit_system(4, 2, 1, committers, Some(3));
    let safety = PlacementSafety { cells, participants: ProcessSet::first_n(4), proposals };
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(2_000_000));
    let result = explorer.explore(&sys, &[&safety, &NoFaults]);
    assert!(result.ok(), "{:?}", result.violations.first());
    assert!(!result.truncated);
}

/// Liveness, positive half: a VIP committing while a guest checkpoints
/// terminates on every fair schedule — the checkpointer cannot block the
/// wait-free tier, and once the VIP is done the checkpointer installs in
/// isolation.
#[test]
fn vip_commit_racing_checkpoint_terminates_fairly() {
    let committers = ProcessSet::from_indices([0]);
    let (sys, _, _) = checkpointed_commit_system(3, 1, 1, committers, Some(2));
    let graph = StateGraph::build(&sys, 500_000);
    assert!(!graph.truncated());
    let participants = ProcessSet::from_indices([0, 2]);
    let verdict = fair_termination(&graph, |pid| participants.contains(pid));
    assert!(verdict.holds(), "{verdict:?}");
}

/// Liveness, negative half: checkpoint installation is lock-free but not
/// wait-free — a guest checkpointer and a guest committer can starve each
/// other in lockstep, which the checker exhibits as a fair-livelock
/// witness. (This is why the store rides checkpoints on the guest tier and
/// documents them as lock-free.)
#[test]
fn guest_checkpointer_racing_guest_committer_admits_livelock() {
    let committers = ProcessSet::from_indices([1]);
    let (sys, _, _) = checkpointed_commit_system(3, 1, 1, committers, Some(2));
    let graph = StateGraph::build(&sys, 500_000);
    assert!(!graph.truncated());
    let witnesses = fair_livelocks(&graph);
    assert!(!witnesses.is_empty(), "lockstep guests must admit a livelock witness");
}

/// The split race matrix, exhaustively: for a (3,1) shard, every committer
/// participation pattern racing a topology-bump install from every
/// non-committing port satisfies [`PlacementSafety`] on **every** schedule
/// — no committed batch is dropped by the migration, nothing (batch or
/// bump) is agreed by two log cells (no op replays into both sides of the
/// split), and terminal states place every participant. This is the
/// model-checked core of [`Store::split_shard`]'s safety claim.
#[test]
fn split_install_race_safety_matrix_exhaustive() {
    for committer_mask in 0u8..8 {
        for splitter in 0usize..3 {
            if committer_mask & (1 << splitter) != 0 {
                continue; // the splitter does not also commit a batch
            }
            let committers = mask_participants(committer_mask, 3);
            let participants = mask_participants(committer_mask | (1 << splitter), 3);
            let (sys, cells, proposals) = split_commit_system(3, 1, 1, committers, Some(splitter));
            let safety = PlacementSafety { cells, participants, proposals };
            let explorer = Explorer::new(ExploreConfig::default().with_max_states(400_000));
            let result = explorer.explore(&sys, &[&safety, &NoFaults]);
            assert!(
                result.ok(),
                "committers {committer_mask:03b} + split {splitter}: {:?}",
                result.violations.first()
            );
            assert!(
                !result.truncated,
                "committers {committer_mask:03b} + split {splitter} must be exhaustive"
            );
        }
    }
}

/// At (4,2): both VIPs and a guest commit while the other guest installs a
/// split bump — still safe on every schedule.
#[test]
fn split_race_4_2_exhaustive() {
    let committers = ProcessSet::from_indices([0, 1, 2]);
    let (sys, cells, proposals) = split_commit_system(4, 2, 1, committers, Some(3));
    let safety = PlacementSafety { cells, participants: ProcessSet::first_n(4), proposals };
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(2_000_000));
    let result = explorer.explore(&sys, &[&safety, &NoFaults]);
    assert!(result.ok(), "{:?}", result.violations.first());
    assert!(!result.truncated);
}

/// VIP wait-freedom survives a split: a VIP committing while a guest
/// installs the topology bump terminates on every fair schedule — the
/// split rides the guest tier and obeys the helping rule, so it cannot
/// block the wait-free class.
#[test]
fn vip_commit_racing_split_terminates_fairly() {
    let committers = ProcessSet::from_indices([0]);
    let (sys, _, _) = split_commit_system(3, 1, 1, committers, Some(2));
    let graph = StateGraph::build(&sys, 500_000);
    assert!(!graph.truncated());
    let participants = ProcessSet::from_indices([0, 2]);
    let verdict = fair_termination(&graph, |pid| participants.contains(pid));
    assert!(verdict.holds(), "{verdict:?}");
}

/// Both VIPs committing against a guest's split bump also terminate fairly
/// at (4,2) — the wait-free tier's guarantee is per-class, not per-port.
#[test]
fn both_vips_racing_split_terminate_fairly_4_2() {
    let committers = ProcessSet::from_indices([0, 1]);
    let (sys, _, _) = split_commit_system(4, 2, 1, committers, Some(3));
    let graph = StateGraph::build(&sys, 2_000_000);
    assert!(!graph.truncated());
    let participants = ProcessSet::from_indices([0, 1, 3]);
    let verdict = fair_termination(&graph, |pid| participants.contains(pid));
    assert!(verdict.holds(), "{verdict:?}");
}

/// The caveat carries over from checkpoints: split installation is
/// lock-free but not wait-free — a guest splitter and a guest committer can
/// starve each other in lockstep. This is why `Store::split_shard` rides
/// the guest tier and documents the split as lock-free.
#[test]
fn guest_splitter_racing_guest_committer_admits_livelock() {
    let committers = ProcessSet::from_indices([1]);
    let (sys, _, _) = split_commit_system(3, 1, 1, committers, Some(2));
    let graph = StateGraph::build(&sys, 500_000);
    assert!(!graph.truncated());
    let witnesses = fair_livelocks(&graph);
    assert!(!witnesses.is_empty(), "lockstep guests must admit a livelock witness");
}

/// The **merge race matrix**, exhaustively — the child-side half of
/// [`Store::merge_shard`]: for a (3,1) shard, every committer
/// participation pattern racing a retirement (drain) install from every
/// non-committing port satisfies [`PlacementSafety`] on **every** schedule
/// — no committed batch is dropped by the drain, nothing (batch or
/// retirement) is agreed by two log cells, and terminal states place every
/// participant. Mirrors PR 4's split matrix, marker for marker.
#[test]
fn merge_install_race_safety_matrix_exhaustive() {
    for committer_mask in 0u8..8 {
        for merger in 0usize..3 {
            if committer_mask & (1 << merger) != 0 {
                continue; // the merger does not also commit a batch
            }
            let committers = mask_participants(committer_mask, 3);
            let participants = mask_participants(committer_mask | (1 << merger), 3);
            let (sys, cells, proposals) = merge_commit_system(3, 1, 1, committers, Some(merger));
            let safety = PlacementSafety { cells, participants, proposals };
            let explorer = Explorer::new(ExploreConfig::default().with_max_states(400_000));
            let result = explorer.explore(&sys, &[&safety, &NoFaults]);
            assert!(
                result.ok(),
                "committers {committer_mask:03b} + merge {merger}: {:?}",
                result.violations.first()
            );
            assert!(
                !result.truncated,
                "committers {committer_mask:03b} + merge {merger} must be exhaustive"
            );
        }
    }
}

/// At (4,2): both VIPs and a guest commit while the other guest installs
/// the retirement — still safe on every schedule.
#[test]
fn merge_race_4_2_exhaustive() {
    let committers = ProcessSet::from_indices([0, 1, 2]);
    let (sys, cells, proposals) = merge_commit_system(4, 2, 1, committers, Some(3));
    let safety = PlacementSafety { cells, participants: ProcessSet::first_n(4), proposals };
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(2_000_000));
    let result = explorer.explore(&sys, &[&safety, &NoFaults]);
    assert!(result.ok(), "{:?}", result.violations.first());
    assert!(!result.truncated);
}

/// The **cross-log merge matrix**: both halves of the merge — the child
/// drain and the parent adoption — racing committers on *each* log, for
/// every placement of up to two committers across the two logs. Placement
/// safety holds over the union of both logs' cells (in particular, no
/// batch ever places into both sides of the merge) and the adoption never
/// precedes the drain, on every schedule.
#[test]
fn merge_adopt_race_matrix_exhaustive() {
    // Committers 0 and 1 each go to the child log, the parent log, or
    // nowhere; port 2 is always the merger.
    for c0 in 0u8..3 {
        for c1 in 0u8..3 {
            // 0 = absent, 1 = commits on the child log, 2 = on the parent.
            let mut child: Vec<usize> = Vec::new();
            let mut parent: Vec<usize> = Vec::new();
            for (pid, which) in [(0usize, c0), (1, c1)] {
                match which {
                    1 => child.push(pid),
                    2 => parent.push(pid),
                    _ => {}
                }
            }
            let child_committers: ProcessSet = child.clone().into_iter().collect();
            let parent_committers: ProcessSet = parent.clone().into_iter().collect();
            let (sys, child_cells, parent_cells, proposals) =
                merge_adopt_system(3, 1, 1, child_committers, parent_committers, 2);
            let all_cells: Vec<ObjectId> =
                child_cells.iter().chain(parent_cells.iter()).copied().collect();
            let participants: ProcessSet =
                child.into_iter().chain(parent).chain([2usize]).collect();
            let safety = PlacementSafety { cells: all_cells, participants, proposals };
            let order = MergeOrder {
                child_cells,
                parent_cells,
                drain: Value::Num(MERGE_BASE + 2),
                adopt: Value::Num(ADOPT_BASE + 2),
            };
            let explorer = Explorer::new(ExploreConfig::default().with_max_states(2_000_000));
            let result = explorer.explore(&sys, &[&safety, &order, &NoFaults]);
            assert!(result.ok(), "child {c0} / parent {c1}: {:?}", result.violations.first());
            assert!(!result.truncated, "child {c0} / parent {c1} must be exhaustive");
        }
    }
}

/// VIP wait-freedom survives a merge: a VIP committing (on either side of
/// the merge) while a guest drives the dual-log retirement terminates on
/// every fair schedule — the merge rides the guest tier and obeys the
/// helping rule on both logs, so it cannot block the wait-free class.
#[test]
fn vip_commit_racing_merge_terminates_fairly() {
    // Single-log half (the child drain racing a VIP batch).
    let committers = ProcessSet::from_indices([0]);
    let (sys, _, _) = merge_commit_system(3, 1, 1, committers, Some(2));
    let graph = StateGraph::build(&sys, 500_000);
    assert!(!graph.truncated());
    let participants = ProcessSet::from_indices([0, 2]);
    let verdict = fair_termination(&graph, |pid| participants.contains(pid));
    assert!(verdict.holds(), "single-log: {verdict:?}");

    // Cross-log: the VIP commits on the child log while the merger crosses
    // both logs.
    let (sys, _, _, _) =
        merge_adopt_system(3, 1, 1, ProcessSet::from_indices([0]), ProcessSet::EMPTY, 2);
    let graph = StateGraph::build(&sys, 2_000_000);
    assert!(!graph.truncated());
    let verdict = fair_termination(&graph, |pid| participants.contains(pid));
    assert!(verdict.holds(), "cross-log: {verdict:?}");
}

/// The caveat carries over from splits: merge installation is lock-free
/// but not wait-free — a guest merger and a guest committer can starve
/// each other in lockstep, which the checker exhibits as a fair-livelock
/// witness. This is why `Store::merge_shard` rides the guest tier and
/// documents the merge as lock-free.
#[test]
fn guest_merger_racing_guest_committer_admits_livelock() {
    let committers = ProcessSet::from_indices([1]);
    let (sys, _, _) = merge_commit_system(3, 1, 1, committers, Some(2));
    let graph = StateGraph::build(&sys, 500_000);
    assert!(!graph.truncated());
    let witnesses = fair_livelocks(&graph);
    assert!(!witnesses.is_empty(), "lockstep guests must admit a livelock witness");
}

/// The checkpoint, split, and merge marker values are namespaced away from
/// batch ids (and from each other), so none can be confused in a cell
/// decision.
#[test]
fn checkpoint_values_are_disjoint_from_batches() {
    let batches = proposed_batches(ProcessSet::first_n(64));
    for pid in 0..64u32 {
        assert!(!batches.contains(&Value::Num(CHECKPOINT_BASE + pid)));
        assert!(!batches.contains(&Value::Num(SPLIT_BASE + pid)));
        assert!(!batches.contains(&Value::Num(MERGE_BASE + pid)));
        assert!(!batches.contains(&Value::Num(ADOPT_BASE + pid)));
        let markers = [CHECKPOINT_BASE + pid, SPLIT_BASE + pid, MERGE_BASE + pid, ADOPT_BASE + pid];
        for (i, a) in markers.iter().enumerate() {
            for b in &markers[i + 1..] {
                assert_ne!(a, b, "marker namespaces must not collide");
            }
        }
    }
}

/// Obstruction-freedom still holds: each guest, running solo from the
/// initial state, commits — the livelock needs *contention*, not merely
/// the absence of a VIP.
#[test]
fn every_solo_guest_commits() {
    use asymmetric_progress::model::{ProcessId, Runner, Schedule};
    for guest in [1usize, 2] {
        let (sys, _) = shard_commit_system(3, 1, 2, ProcessSet::from_indices([guest]));
        let mut runner = Runner::new(sys);
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(guest), 1), 200);
        assert_eq!(
            runner.system().decision(ProcessId::new(guest)),
            Some(Value::Num(100 + guest as u32)),
            "solo guest {guest} must commit its own batch"
        );
    }
}
