//! Exhaustive model checks of the store's shard commit path: commit safety
//! on every schedule, and the asymmetric liveness guarantee (Theorem 3
//! flavor) — every fair schedule with a VIP participant terminates, while
//! guest-only schedules admit a fair livelock.

use asymmetric_progress::model::explore::{
    Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn,
};
use asymmetric_progress::model::fairness::{fair_livelocks, fair_termination, StateGraph};
use asymmetric_progress::model::{ProcessSet, Value};
use asymmetric_progress::store::model::{proposed_batches, shard_commit_system};

fn mask_participants(mask: u8, n: usize) -> ProcessSet {
    (0..n).filter(|i| mask & (1 << i) != 0).collect::<Vec<usize>>().into_iter().collect()
}

/// Safety matrix: for every participation pattern of a (3,1) shard cell,
/// every schedule agrees on one committed batch and the committed batch was
/// proposed.
#[test]
fn commit_safety_matrix_3_1_exhaustive() {
    for mask in 1u8..8 {
        let participants = mask_participants(mask, 3);
        let (sys, _) = shard_commit_system(3, 1, 1, participants);
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(300_000));
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new(proposed_batches(participants)), &NoFaults],
        );
        assert!(result.ok(), "mask {mask:03b}: {:?}", result.violations.first());
        assert!(!result.truncated, "mask {mask:03b} must be exhaustive");
    }
}

/// Safety at (4,2): two VIP ports, two guest ports, all participating.
#[test]
fn commit_safety_4_2_exhaustive() {
    let participants = ProcessSet::first_n(4);
    let (sys, _) = shard_commit_system(4, 2, 1, participants);
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(500_000));
    let result = explorer.explore(
        &sys,
        &[&Agreement, &ValidityIn::new(proposed_batches(participants)), &NoFaults],
    );
    assert!(result.ok(), "{:?}", result.violations.first());
    assert!(!result.truncated);
}

/// The asymmetric guarantee, positive half: **any** participation pattern
/// containing a VIP port terminates under every fair schedule.
#[test]
fn vip_schedules_always_terminate() {
    for (ports, vips) in [(3usize, 1usize), (4, 2)] {
        for mask in 1u8..(1 << ports) {
            let participants = mask_participants(mask, ports);
            let has_vip = participants.iter().any(|p| p.index() < vips);
            if !has_vip {
                continue;
            }
            let (sys, _) = shard_commit_system(ports, vips, 1, participants);
            let graph = StateGraph::build(&sys, 500_000);
            assert!(!graph.truncated(), "({ports},{vips}) mask {mask:04b} truncated");
            let verdict = fair_termination(&graph, |pid| participants.contains(pid));
            assert!(verdict.holds(), "({ports},{vips}) mask {mask:04b}: {verdict:?}");
        }
    }
}

/// The asymmetric guarantee, negative half: guest-only schedules can
/// livelock — the checker exhibits the lockstep starvation as a positive
/// witness in which every guest keeps stepping yet none ever commits.
#[test]
fn guest_only_schedules_admit_livelock() {
    for (ports, vips, guest_mask) in [(3usize, 1usize, 0b110u8), (4, 2, 0b1100)] {
        let participants = mask_participants(guest_mask, ports);
        let (sys, _) = shard_commit_system(ports, vips, 1, participants);
        let graph = StateGraph::build(&sys, 500_000);
        assert!(!graph.truncated());
        let witnesses = fair_livelocks(&graph);
        assert!(
            !witnesses.is_empty(),
            "({ports},{vips}) guests {guest_mask:04b}: lockstep livelock witness expected"
        );
        // The witness starves exactly the participating guests.
        assert!(witnesses
            .iter()
            .any(|w| w.live.iter().all(|p| participants.contains(p))));
        let verdict = fair_termination(&graph, |pid| participants.contains(pid));
        assert!(!verdict.holds(), "guest-only termination must not be guaranteed");
    }
}

/// Obstruction-freedom still holds: each guest, running solo from the
/// initial state, commits — the livelock needs *contention*, not merely
/// the absence of a VIP.
#[test]
fn every_solo_guest_commits() {
    use asymmetric_progress::model::{ProcessId, Runner, Schedule};
    for guest in [1usize, 2] {
        let (sys, _) = shard_commit_system(3, 1, 2, ProcessSet::from_indices([guest]));
        let mut runner = Runner::new(sys);
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(guest), 1), 200);
        assert_eq!(
            runner.system().decision(ProcessId::new(guest)),
            Some(Value::Num(100 + guest as u32)),
            "solo guest {guest} must commit its own batch"
        );
    }
}
