//! Integration tests for the wire front-end: the net scenario family.
//!
//! These are the `store/scenarios/net/*` acceptance scenarios: handshake
//! and request/response on both tiers, guest overload answered with typed
//! backpressure while the VIP tier stays served, a 10k-connection smoke,
//! the `GET /metrics` listener, and wrapper-vs-envelope equivalence.

use std::collections::BTreeMap;

use proptest::prelude::*;

use asymmetric_progress::net::{NetClient, ServerConfig, StoreServer};
use asymmetric_progress::store::{
    DurabilityClass, Request, StoreBuilder, StoreError, StoreOp, StoreResp, TierCredential,
};

const VIP_TOKEN: u64 = 0xbeef;

fn server_cfg(guest_cap: usize) -> ServerConfig {
    ServerConfig {
        vip_tokens: vec![VIP_TOKEN],
        guest_dispatch_per_poll: guest_cap,
        ..ServerConfig::default()
    }
}

/// Polls until the client has at least one response (bounded turns).
fn poll_until(
    server: &mut StoreServer<'_>,
    client: &mut NetClient,
) -> Vec<(u64, Vec<Result<StoreResp, StoreError>>)> {
    for _ in 0..64 {
        server.poll();
        let got = client.drain().expect("clean wire");
        if !got.is_empty() {
            return got;
        }
    }
    panic!("no response after 64 reactor turns");
}

#[test]
fn net_handshake_and_roundtrip_both_tiers() {
    let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
    let mut server = StoreServer::new(&store, server_cfg(256));

    let mut vip = NetClient::connect(&mut server, TierCredential::Vip { token: VIP_TOKEN });
    let mut guest = NetClient::connect(&mut server, TierCredential::Guest);

    let id = vip.send(
        &Request::new(vec![StoreOp::Put("net/epoch".into(), 7), StoreOp::Get("net/epoch".into())])
            .credential(TierCredential::Vip { token: VIP_TOKEN })
            .retry_budget(8),
    );
    let got = poll_until(&mut server, &mut vip);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, id, "response correlates by request id");
    assert_eq!(got[0].1[1], Ok(StoreResp::Value(Some(7))));

    let id = guest.send(
        &Request::new(vec![StoreOp::Get("net/epoch".into())])
            .credential(TierCredential::Guest)
            .retry_budget(8),
    );
    let got = poll_until(&mut server, &mut guest);
    assert_eq!(got[0].0, id);
    assert_eq!(got[0].1[0], Ok(StoreResp::Value(Some(7))), "guest reads the VIP write");
}

/// The acceptance scenario: guests flooding past the per-turn dispatch cap
/// are shed with typed `RetryBudgetExhausted` — never blocked — while every
/// VIP request in the same turn is served (no VIP 429s, bounded turns).
#[test]
fn net_guest_overload_sheds_typed_while_vip_is_served() {
    let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
    let cap = 8usize;
    // `guest_queue_depth: 0` pins the legacy semantics this scenario is
    // about: overflow sheds in the arrival turn, not after queueing.
    let mut server =
        StoreServer::new(&store, ServerConfig { guest_queue_depth: 0, ..server_cfg(cap) });

    let mut vip = NetClient::connect(&mut server, TierCredential::Vip { token: VIP_TOKEN });
    let mut guests: Vec<NetClient> =
        (0..cap * 4).map(|_| NetClient::connect(&mut server, TierCredential::Guest)).collect();
    server.poll(); // handshakes

    // Everyone submits in the same reactor turn.
    for (g, guest) in guests.iter_mut().enumerate() {
        guest.send(
            &Request::new(vec![StoreOp::Put(format!("flood/{g}"), g as u64)])
                .credential(TierCredential::Guest)
                .retry_budget(4),
        );
    }
    vip.send(
        &Request::new(vec![StoreOp::Put("vip/alive".into(), 1)])
            .credential(TierCredential::Vip { token: VIP_TOKEN })
            .retry_budget(4),
    );
    let stats = server.poll();

    // The VIP answer is served this very turn, successfully.
    let got = vip.drain().expect("clean wire");
    assert_eq!(got.len(), 1, "VIP served in the overload turn");
    assert!(got[0].1.iter().all(|r| r.is_ok()), "no VIP 429 under guest flood: {got:?}");

    // Exactly `cap` guests were served; the rest got the typed 429.
    assert_eq!(stats.shed, cap * 3, "overflow beyond the cap is shed");
    let mut served = 0usize;
    let mut shed = 0usize;
    for guest in &mut guests {
        for (_, results) in guest.drain().expect("clean wire") {
            match &results[0] {
                Ok(StoreResp::Value(_)) => served += 1,
                Err(StoreError::RetryBudgetExhausted { budget }) => {
                    assert_eq!(*budget, 4, "the 429 echoes the request's budget");
                    shed += 1;
                }
                other => panic!("unexpected guest result: {other:?}"),
            }
        }
    }
    assert_eq!((served, shed), (cap, cap * 3));

    // The scrape agrees: sheds are guest-only.
    let snap = server.scrape();
    assert_eq!(snap.value("store_net_backpressure_shed_total", &[("tier", "vip")]), Some(0));
    assert_eq!(
        snap.value("store_net_backpressure_shed_total", &[("tier", "guest")]),
        Some(cap as u64 * 3)
    );

    // Shed guests retry and eventually land — backpressure is recoverable.
    let mut landed = 0usize;
    for round in 0..8 {
        for (g, guest) in guests.iter_mut().enumerate() {
            guest.send(
                &Request::new(vec![StoreOp::Put(format!("retry/{round}/{g}"), 1)])
                    .credential(TierCredential::Guest)
                    .retry_budget(4),
            );
        }
        server.poll();
        for guest in &mut guests {
            for (_, results) in guest.drain().expect("clean wire") {
                if results[0].is_ok() {
                    landed += 1;
                }
            }
        }
    }
    assert!(landed >= cap * 8, "retries make progress: {landed}");

    // Even after the retry storm, the VIP tier has shed nothing.
    let snap = server.scrape();
    assert_eq!(snap.value("store_net_backpressure_shed_total", &[("tier", "vip")]), Some(0));
}

/// 10k concurrent connections multiplexed by one reactor: every one
/// completes a pipelined two-request exchange.
#[test]
fn net_ten_thousand_connections_smoke() {
    let store = StoreBuilder::new().shards(4).vip_capacity(1).build().unwrap();
    let mut server = StoreServer::new(&store, server_cfg(4_096));

    let mut conns: Vec<NetClient> =
        (0..10_000).map(|_| NetClient::connect(&mut server, TierCredential::Guest)).collect();
    assert_eq!(server.conn_count(), 10_000);

    // Pipelining: both requests go out before any response is read.
    for (c, conn) in conns.iter_mut().enumerate() {
        conn.send(
            &Request::new(vec![StoreOp::Put(format!("smoke/{c}"), c as u64)])
                .credential(TierCredential::Guest)
                .retry_budget(8),
        );
        conn.send(
            &Request::new(vec![StoreOp::Get(format!("smoke/{c}"))])
                .credential(TierCredential::Guest)
                .retry_budget(8),
        );
    }
    let mut done = vec![0usize; conns.len()];
    for _ in 0..64 {
        server.poll();
        for (c, conn) in conns.iter_mut().enumerate() {
            for (_, results) in conn.drain().expect("clean wire") {
                match &results[0] {
                    Ok(StoreResp::Value(None)) => done[c] += 1,
                    Ok(StoreResp::Value(v)) => {
                        assert_eq!(*v, Some(c as u64), "conn {c} reads its own write");
                        done[c] += 1;
                    }
                    Err(StoreError::RetryBudgetExhausted { .. }) => {
                        // Typed backpressure: resend the read.
                        conn.send(
                            &Request::new(vec![StoreOp::Get(format!("smoke/{c}"))])
                                .credential(TierCredential::Guest)
                                .retry_budget(8),
                        );
                    }
                    other => panic!("conn {c}: unexpected result {other:?}"),
                }
            }
        }
        if done.iter().all(|&d| d >= 2) {
            break;
        }
    }
    assert!(done.iter().all(|&d| d >= 2), "every connection completed its exchange");
    assert_eq!(
        server.scrape().value("store_net_conns_accepted_total", &[("tier", "guest")]),
        Some(10_000)
    );
}

/// The listener doubles as the observability endpoint: a plain HTTP `GET
/// /metrics` on a fresh connection returns the merged store+net scrape.
#[test]
fn net_http_metrics_lists_net_series() {
    let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
    let mut server = StoreServer::new(&store, server_cfg(64));

    let mut guest = NetClient::connect(&mut server, TierCredential::Guest);
    guest.send(
        &Request::new(vec![StoreOp::Put("probe".into(), 1)])
            .credential(TierCredential::Guest)
            .retry_budget(4),
    );
    poll_until(&mut server, &mut guest);

    let http = server.connect();
    http.send(b"GET /metrics HTTP/1.1\r\nHost: sim\r\n\r\n");
    server.poll();
    let mut body = Vec::new();
    http.drain_into(&mut body);
    let text = String::from_utf8(body).expect("utf-8 exposition");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "served: {}", &text[..40.min(text.len())]);
    for series in [
        "store_net_conns_accepted_total",
        "store_net_requests_total",
        "store_net_request_latency_ns",
        "store_net_http_metrics_hits_total",
        "store_commits_total", // the store scrape is merged in
    ] {
        assert!(text.contains(series), "exposition must carry {series}");
    }
    assert!(http.is_closed(), "the HTTP connection closes after the reply");
}

/// The legacy wrappers are now thin sugar over the envelope: both paths
/// must produce identical results and identical store state.
#[test]
fn net_wrappers_and_envelope_agree() {
    let store = StoreBuilder::new().shards(2).vip_capacity(2).build().unwrap();

    let mut sugar = store.client(store.admit_vip().unwrap());
    let mut envelope = store.client(store.admit_vip().unwrap());

    // Wrapper path.
    let w1 = sugar.execute(vec![StoreOp::Put("wrap/a".into(), 1)]);
    let w2 = sugar.get("wrap/a");
    // Envelope path, same shape.
    let e1 = envelope.request(
        Request::new(vec![StoreOp::Put("env/a".into(), 1)])
            .credential(envelope.credential())
            .durability(DurabilityClass::Group),
    );
    let e2 = envelope.request(
        Request::new(vec![StoreOp::Get("env/a".into())]).credential(envelope.credential()),
    );

    assert_eq!(w1, e1.into_legacy(), "put: wrapper ≡ envelope");
    assert_eq!(w2, Some(1));
    assert_eq!(e2.results[0], Ok(StoreResp::Value(Some(1))));

    // And over the wire, the same envelope yields the same answers.
    let mut server = StoreServer::new(&store, server_cfg(64));
    let mut conn = NetClient::connect(&mut server, TierCredential::Guest);
    conn.send(
        &Request::new(vec![StoreOp::Get("wrap/a".into()), StoreOp::Get("env/a".into())])
            .credential(TierCredential::Guest)
            .retry_budget(8),
    );
    let got = poll_until(&mut server, &mut conn);
    assert_eq!(got[0].1, vec![Ok(StoreResp::Value(Some(1))), Ok(StoreResp::Value(Some(1)))]);
}

/// A guest frame whose deadline is already behind it is shed pre-dispatch
/// with the typed `DeadlineExceeded` — which round-trips the wire as
/// discriminant 6 — while a VIP frame with the same dead deadline is
/// still served: VIP frames are never shed.
#[test]
fn net_deadline_expiry_is_typed_and_never_touches_vip() {
    let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
    let mut server = StoreServer::new(&store, server_cfg(64));
    let mut vip = NetClient::connect(&mut server, TierCredential::Vip { token: VIP_TOKEN });
    let mut guest = NetClient::connect(&mut server, TierCredential::Guest);

    guest.send(
        &Request::new(vec![StoreOp::Put("late".into(), 1)])
            .credential(TierCredential::Guest)
            .retry_budget(8)
            .deadline_ms(0),
    );
    vip.send(
        &Request::new(vec![StoreOp::Put("vip/fine".into(), 2)])
            .credential(TierCredential::Vip { token: VIP_TOKEN })
            .retry_budget(8)
            .deadline_ms(0),
    );
    let stats = server.poll();
    assert_eq!(stats.deadline_shed, 1, "the guest frame expired in the queue");

    let got = guest.drain().expect("clean wire");
    assert_eq!(
        got[0].1,
        vec![Err(StoreError::DeadlineExceeded { deadline_ms: 0 })],
        "expiry is a typed deadline error, not a 429"
    );
    let got = vip.drain().expect("clean wire");
    assert!(got[0].1[0].is_ok(), "VIP frames are never deadline-shed: {got:?}");

    let snap = server.scrape();
    assert_eq!(snap.value("store_net_deadline_shed_total", &[("tier", "guest")]), Some(1));
    assert_eq!(snap.value("store_net_deadline_shed_total", &[("tier", "vip")]), Some(0));
    assert_eq!(snap.value("store_net_backpressure_shed_total", &[("tier", "guest")]), Some(0));
}

/// The independent oracle: the sequential meaning of one operation.
fn oracle_apply(state: &mut BTreeMap<String, u64>, op: &StoreOp) -> StoreResp {
    match op {
        StoreOp::Get(k) => StoreResp::Value(state.get(k).copied()),
        StoreOp::Put(k, v) => StoreResp::Value(state.insert(k.clone(), *v)),
        StoreOp::Remove(k) => StoreResp::Value(state.remove(k)),
        StoreOp::Cas { key, expect, new } => {
            let actual = state.get(key).copied();
            if actual == *expect {
                state.insert(key.clone(), *new);
                StoreResp::Cas { ok: true, actual }
            } else {
                StoreResp::Cas { ok: false, actual }
            }
        }
        StoreOp::Scan { from, to } => {
            let mut entries: Vec<(String, u64)> = state
                .iter()
                .filter(|(k, _)| *from <= **k && **k < *to)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            entries.sort();
            StoreResp::Entries(entries)
        }
    }
}

/// Decodes a generated `(kind, key, val)` triple into an operation over a
/// small key space (cross-guest collisions are the point).
fn decode_op(kind: u8, key: u8, val: u64) -> StoreOp {
    let k = format!("key/{:02}", key % 12);
    match kind % 6 {
        0 | 1 => StoreOp::Put(k, val),
        2 => StoreOp::Get(k),
        3 => StoreOp::Remove(k),
        4 => StoreOp::Cas { key: k, expect: (!val.is_multiple_of(3)).then_some(val / 2), new: val },
        _ => {
            let hi = format!("key/{:02}", (key % 12).saturating_add(val as u8 % 5));
            StoreOp::Scan { from: k, to: hi }
        }
    }
}

/// Drives one server over every guest's pipelined envelopes and returns
/// each guest's responses in correlation-id order.
fn run_pipelines(
    batch: bool,
    shards: usize,
    pipelines: &[Vec<Vec<StoreOp>>],
) -> Vec<Vec<(u64, Vec<Result<StoreResp, StoreError>>)>> {
    let store = StoreBuilder::new().shards(shards).vip_capacity(1).build().unwrap();
    let mut server =
        StoreServer::new(&store, ServerConfig { batch_guest_dispatch: batch, ..server_cfg(256) });
    let mut guests: Vec<NetClient> =
        pipelines.iter().map(|_| NetClient::connect(&mut server, TierCredential::Guest)).collect();
    for (g, pipeline) in pipelines.iter().enumerate() {
        for ops in pipeline {
            guests[g]
                .send(&Request::new(ops.clone()).credential(TierCredential::Guest).retry_budget(8));
        }
    }
    let want: Vec<usize> = pipelines.iter().map(Vec::len).collect();
    let mut out: Vec<Vec<(u64, Vec<Result<StoreResp, StoreError>>)>> =
        pipelines.iter().map(|_| Vec::new()).collect();
    for _ in 0..64 {
        server.poll();
        for (g, guest) in guests.iter_mut().enumerate() {
            out[g].extend(guest.drain().expect("clean wire"));
        }
        if out.iter().zip(&want).all(|(got, want)| got.len() >= *want) {
            break;
        }
    }
    for transcript in &mut out {
        transcript.sort_by_key(|(id, _)| *id);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batching transparency on the wire: coalesced dispatch must be
    /// observationally equivalent to one-envelope-at-a-time dispatch, and
    /// both must match the sequential `BTreeMap` oracle response-for-
    /// response. (Arrival order is deterministic: the reactor ingests
    /// connections in index order, each connection's pipeline in send
    /// order — the oracle applies ops in exactly that order.)
    #[test]
    fn net_batched_dispatch_is_observationally_equivalent(
        shards in 1usize..4,
        encoded in proptest::collection::vec(          // per guest…
            proptest::collection::vec(                 // …per envelope…
                proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 1..4), // …ops
                1..6),
            1..5),
    ) {
        let pipelines: Vec<Vec<Vec<StoreOp>>> = encoded
            .iter()
            .map(|envs| {
                envs.iter()
                    .map(|ops| ops.iter().map(|&(k, key, v)| decode_op(k, key, v)).collect())
                    .collect()
            })
            .collect();

        let mut oracle = BTreeMap::new();
        let expect: Vec<Vec<Vec<StoreResp>>> = pipelines
            .iter()
            .map(|envs| {
                envs.iter()
                    .map(|ops| ops.iter().map(|op| oracle_apply(&mut oracle, op)).collect())
                    .collect()
            })
            .collect();

        let batched = run_pipelines(true, shards, &pipelines);
        let unbatched = run_pipelines(false, shards, &pipelines);
        prop_assert_eq!(&batched, &unbatched, "batching must be transparent");
        for (g, (transcript, envs)) in batched.iter().zip(&expect).enumerate() {
            prop_assert_eq!(transcript.len(), envs.len(), "guest {} answered in full", g);
            for ((_, results), want) in transcript.iter().zip(envs) {
                for (got, resp) in results.iter().zip(want) {
                    prop_assert_eq!(got.as_ref(), Ok(resp), "guest {} diverged from oracle", g);
                }
                prop_assert_eq!(results.len(), want.len());
            }
        }
    }
}
