//! Experiments E5 + E6: the valence machinery (Lemmas 3–5) and the
//! fault-freedom impossibility (Theorem 4 / Lemma 7).

use asymmetric_progress::core::consensus::model::{
    binary_register_consensus, register_consensus_system,
};
use asymmetric_progress::hierarchy::theorem4;
use asymmetric_progress::model::explore::{ExploreConfig, Explorer, Valence};
use asymmetric_progress::model::programs::ProposeProgram;
use asymmetric_progress::model::{ProcessId, ProcessSet, SystemBuilder, Value};

fn oracle() -> Explorer {
    Explorer::new(ExploreConfig::default().with_max_states(500_000).with_max_depth(100))
}

/// E5 / Lemma 3: with mixed inputs, the empty run is bivalent — both for the
/// register-based protocol and for a bare obstruction-free base object.
#[test]
fn lemma3_bivalent_empty_runs() {
    // Register-based protocol.
    let (sys, _) = binary_register_consensus(2, 2);
    assert!(matches!(oracle().valence(&sys), Valence::Bivalent(_)));

    // Bare (2,0)-live base object.
    let mut b = SystemBuilder::new(2);
    let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(2), 1);
    let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
    assert!(matches!(oracle().valence(&sys), Valence::Bivalent(_)));
}

/// E5 / Lemma 3's complement: unanimity forces univalence.
#[test]
fn lemma3_unanimous_univalent() {
    let (sys, _) = register_consensus_system(&[Some(9), Some(9)], 2);
    match oracle().valence(&sys) {
        Valence::Univalent(v) | Valence::UnivalentBounded(v) => assert_eq!(v, Value::Num(9)),
        other => panic!("expected univalence, got {other:?}"),
    }
}

/// E5 / Lemma 4: for a (2,1)-live object, the wait-free process has a
/// decider point — a bivalent run from which its every step decides.
#[test]
fn lemma4_decider_point() {
    let mut b = SystemBuilder::new(2);
    let cons = b.add_live_consensus(ProcessSet::first_n(2), ProcessSet::from_indices([0]), 1);
    let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
    let explorer = oracle();
    let (state, path) = explorer
        .decider_point(&sys, ProcessId::new(0))
        .expect("the wait-free process is a decider somewhere");
    assert!(explorer.valence(&state).is_bivalent());
    // One step of the decider resolves the valence.
    let mut next = state.clone();
    next.step(ProcessId::new(0));
    assert!(!explorer.valence(&next).is_bivalent());
    // The path is replayable.
    assert!(path.len() < 100);
}

/// E6 / Theorem 4: the Lemma 7 round-robin discipline constructs a
/// fault-free (all-participating, crash-free, everyone-stepping) run that
/// never decides.
#[test]
fn lemma7_fault_free_starvation() {
    let report = theorem4::fault_freedom_adversary(2, 10, 20);
    assert!(report.starved_fault_free(), "{report}");
    assert!(report.steps_per_process.iter().all(|&s| s > 0), "fault-freedom: everyone steps");
}

/// E6 complement: the same protocol decides without the adversary, so the
/// impossibility is about *schedules*, not about the protocol.
#[test]
fn fault_free_happy_path_decides() {
    assert!(theorem4::fault_free_round_robin_decides(2, 8, 2000));
    assert!(theorem4::fault_free_round_robin_decides(3, 10, 6000));
}

/// E6: the starved run's end state is still live and undecided — exactly the
/// run Theorem 4's proof constructs.
#[test]
fn starved_run_is_live_and_undecided() {
    let sys = theorem4::starved_system(2, 10, 14).expect("adversary succeeds");
    assert!(sys.decisions().is_empty());
    assert_eq!(sys.live_set().len(), 2);
}
