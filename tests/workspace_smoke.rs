//! Workspace smoke test: one real-thread consensus round and one model
//! Explorer run, exercising every facade re-export
//! (`asymmetric_progress::{core, model, registers, common2, universal,
//! hierarchy}`) so a wiring regression in `src/lib.rs` or the workspace
//! manifests fails fast and obviously.

use asymmetric_progress::common2::TestAndSet;
use asymmetric_progress::core::consensus::{AsymmetricConsensus, Consensus};
use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::hierarchy::theorem3;
use asymmetric_progress::model::explore::{Agreement, ExploreConfig, Explorer, ValidityIn};
use asymmetric_progress::model::programs::ProposeProgram;
use asymmetric_progress::model::{ProcessSet, SystemBuilder, Value};
use asymmetric_progress::registers::AtomicCell;
use asymmetric_progress::store::{ProgressClass, StoreBuilder, StoreOp, StoreResp};
use asymmetric_progress::universal::seq::{Counter, CounterOp};
use asymmetric_progress::universal::{CasFactory, Universal};

/// Real threads: a full `(4,2)`-live propose round must agree on one of the
/// proposed values, and wait-free ports must see their guarantee honored.
#[test]
fn real_thread_asymmetric_consensus_round() {
    let spec = Liveness::new_first_n(4, 2);
    let cons: AsymmetricConsensus<u64> = AsymmetricConsensus::new(spec);
    let mut decisions = vec![0u64; 4];
    std::thread::scope(|s| {
        for (pid, slot) in decisions.iter_mut().enumerate() {
            let cons = &cons;
            s.spawn(move || {
                *slot = cons.propose(pid, 100 + pid as u64).unwrap();
            });
        }
    });
    let winner = decisions[0];
    assert!((100..104).contains(&winner), "decided value was proposed: {winner}");
    assert!(decisions.iter().all(|&d| d == winner), "agreement: {decisions:?}");
}

/// Model: the explorer exhaustively verifies agreement + validity for a
/// small `(3,1)`-live consensus system, reaching at least one decision.
#[test]
fn model_explorer_verifies_small_live_consensus() {
    let mut builder = SystemBuilder::new(3);
    let object = builder.add_live_consensus(ProcessSet::first_n(3), ProcessSet::first_n(1), 1);
    let system = builder.build(|pid| ProposeProgram::new(object, Value::Num(pid.index() as u32)));
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(500_000));
    let validity = ValidityIn::new((0..3).map(Value::Num));
    let result = explorer.explore(&system, &[&Agreement, &validity]);
    assert!(result.ok(), "violations: {:?}", result.violations);
    assert!(!result.truncated, "exploration must be exhaustive at this size");
    assert!(!result.decisions.is_empty(), "some schedule must reach a decision");
}

/// The remaining facade crates each do one small real operation.
#[test]
fn facade_crates_all_wired() {
    // registers
    let cell: AtomicCell<u64> = AtomicCell::new();
    assert!(cell.set_if_bot(7).is_ok());
    assert_eq!(cell.load(), Some(7));

    // common2
    let tas = TestAndSet::new();
    assert!(tas.test_and_set(), "first TAS wins");
    assert!(!tas.test_and_set(), "second TAS loses");

    // universal
    let counter = Universal::new(Counter, CasFactory::new(Liveness::new_first_n(2, 2)), 2);
    let mut h0 = counter.handle(0).unwrap();
    let mut h1 = counter.handle(1).unwrap();
    h0.apply(CounterOp::Add(2));
    h1.apply(CounterOp::Add(3));
    assert_eq!(h0.apply(CounterOp::Get), 5);

    // hierarchy
    let report = theorem3::theorem3_constructive(1, 1, 1);
    assert!(report.verified(), "Theorem 3 constructive direction at x=1: {report}");
}

/// The store crate: admission classes, sharded batched ops, wait-free
/// statistics — the full service surface through the facade.
#[test]
fn store_service_layer_wired() {
    let store = StoreBuilder::new()
        .shards(2)
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .build()
        .expect("valid sizing");

    // Admission: bounded VIP tier, unbounded guest tier.
    let vip = store.admit_vip().expect("first VIP fits");
    assert!(store.admit_vip().is_err(), "the wait-free tier is bounded");
    let guest = store.admit_guest();
    assert_eq!(vip.class(), ProgressClass::Vip);
    assert_eq!(guest.class(), ProgressClass::Guest);
    assert!(guest.cascade_group().is_some(), "guests land in a cascade group");

    // Batched cross-shard operations through both classes.
    let mut v = store.client(vip);
    let mut g = store.client(guest);
    let resps = v.execute(vec![
        StoreOp::Put("a".into(), 1),
        StoreOp::Put("b".into(), 2),
        StoreOp::Cas { key: "a".into(), expect: Some(1), new: 3 },
    ]);
    assert_eq!(resps[2], StoreResp::Cas { ok: true, actual: Some(1) });
    assert_eq!(g.get("a"), Some(3), "guest reads the VIP's committed state");
    assert_eq!(g.scan("", "z").len(), 2);

    // Wait-free stats cover both shards.
    let digests = store.snapshot_stats();
    assert_eq!(digests.len(), 2);
    assert_eq!(digests.iter().map(|d| d.entries).sum::<u64>(), 2);
}

/// The persistence layer: checkpoint, flush, crash, recover — the new
/// durability surface through the facade.
#[test]
fn store_persistence_wired() {
    use asymmetric_progress::store::persist::Persister;

    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("smoke");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("smoke.snapshot");

    {
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let mut c = store.client(store.admit_guest());
        c.put("durable", 1);
        let persister = Persister::new(&path);
        persister.persist(&store).expect("flush");
        assert_eq!(persister.flushes(), 1);
        c.put("volatile", 2); // committed after the flush: lost in the crash
    }

    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .recover(&path)
        .expect("recover");
    assert_eq!(recovered.shards(), 2, "shard count restored from the snapshot");
    assert_eq!(recovered.replay_steps(), 0, "boot replays nothing (O(delta))");
    let mut c = recovered.client(recovered.admit_vip().expect("vip"));
    assert_eq!(c.get("durable"), Some(1));
    assert_eq!(c.get("volatile"), None, "prefix consistency as of the last flush");
}
