//! Experiment E1: the arbiter (Figure 4 / Theorem 5), exhaustively
//! model-checked across configurations — the executable form of
//! Lemmas 12–16.

use asymmetric_progress::core::arbiter::model::{arbiter_system, arbiter_system_with, role_value};
use asymmetric_progress::core::arbiter::Role;
use asymmetric_progress::model::explore::{
    Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn,
};
use asymmetric_progress::model::fairness::{fair_termination, FairTermination, StateGraph};
use asymmetric_progress::model::{ProcessId, ProcessSet};

fn owner() -> asymmetric_progress::model::Value {
    role_value(Role::Owner)
}

fn guest() -> asymmetric_progress::model::Value {
    role_value(Role::Guest)
}

/// Agreement + validity for every owner/guest split of up to 4 processes,
/// with a crash budget of 1 — every schedule, every crash position.
#[test]
fn agreement_validity_all_small_splits() {
    let configs: &[(usize, &[usize], &[usize])] =
        &[(2, &[0], &[1]), (3, &[0], &[1, 2]), (3, &[0, 1], &[2]), (4, &[0, 1], &[2, 3])];
    for &(n, owners, guests) in configs {
        let owners = ProcessSet::from_indices(owners.iter().copied());
        let guests = ProcessSet::from_indices(guests.iter().copied());
        let (sys, _) = arbiter_system(n, owners, guests);
        let explorer =
            Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(n)));
        let result =
            explorer.explore(&sys, &[&Agreement, &ValidityIn::new([owner(), guest()]), &NoFaults]);
        assert!(result.ok(), "({n}, {owners}, {guests}): {:?}", result.violations.first());
        assert!(!result.truncated, "({n}, {owners}, {guests}) truncated");
        // Both outcomes reachable when both camps participate.
        assert!(result.decisions.contains(&owner()), "owner win reachable");
        assert!(result.decisions.contains(&guest()), "guest win reachable");
    }
}

/// Lemma 16 matrix: with only one camp participating, only that camp can be
/// returned.
#[test]
fn validity_single_camp_matrix() {
    // Only owners.
    let (sys, _) = arbiter_system(3, ProcessSet::from_indices([0, 1]), ProcessSet::EMPTY);
    let explorer = Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(3)));
    let result = explorer.explore(&sys, &[&ValidityIn::new([owner()]), &NoFaults]);
    assert!(result.ok(), "only owners ⇒ only owner decided: {:?}", result.violations.first());

    // Only guests (owners declared but absent).
    let (sys, _) = arbiter_system_with(
        3,
        ProcessSet::from_indices([0]),
        ProcessSet::EMPTY,
        ProcessSet::from_indices([1, 2]),
    );
    let result = explorer.explore(&sys, &[&ValidityIn::new([guest()]), &NoFaults]);
    assert!(result.ok(), "only guests ⇒ only guest decided: {:?}", result.violations.first());
}

/// Lemma 12 under fairness for several configurations: a correct
/// participating owner means every correct participant terminates.
#[test]
fn fair_termination_with_correct_owner_matrix() {
    for (n, owners, guests) in [
        (2usize, vec![0usize], vec![1usize]),
        (3, vec![0], vec![1, 2]),
        (4, vec![0, 1], vec![2, 3]),
    ] {
        let (sys, _) = arbiter_system(
            n,
            ProcessSet::from_indices(owners.iter().copied()),
            ProcessSet::from_indices(guests.iter().copied()),
        );
        let graph = StateGraph::build(&sys, 2_000_000);
        let verdict = fair_termination(&graph, |_| true);
        assert!(verdict.holds(), "n={n}: {verdict:?}");
    }
}

/// Lemma 14: once anyone returns, everyone terminates. Exhaustive
/// approximation: no reachable fair livelock contains a decided process.
#[test]
fn no_livelock_after_any_return() {
    for (owners, guests) in [(vec![0usize], vec![1usize, 2]), (vec![0, 1], vec![2])] {
        let (sys, _) = arbiter_system(
            3,
            ProcessSet::from_indices(owners.iter().copied()),
            ProcessSet::from_indices(guests.iter().copied()),
        );
        let graph = StateGraph::build(&sys, 2_000_000);
        for witness in asymmetric_progress::model::fairness::fair_livelocks(&graph) {
            let state = &graph.states()[witness.sample_state];
            assert!(
                state.decisions().is_empty(),
                "a process returned yet a fair livelock persists (Lemma 14 violated)"
            );
        }
    }
}

/// The documented caveat: an owner crashing between its PART write and the
/// WINNER write may strand the guests — the arbiter's termination property
/// deliberately does not cover this. The livelock must be *detectable*.
#[test]
fn crashed_owner_stranding_detected() {
    let (mut sys, _) =
        arbiter_system(3, ProcessSet::from_indices([0]), ProcessSet::from_indices([1, 2]));
    sys.step(ProcessId::new(0)); // owner writes PART[owner]
    sys.crash(ProcessId::new(0));
    let graph = StateGraph::build(&sys, 2_000_000);
    let verdict = fair_termination(&graph, |pid| pid.index() != 0);
    assert!(matches!(verdict, FairTermination::Livelock(_)), "{verdict:?}");
}

/// Conversely, an owner crashing AFTER the WINNER write strands no one.
#[test]
fn owner_crash_after_winner_write_is_harmless() {
    let (mut sys, _) =
        arbiter_system(2, ProcessSet::from_indices([0]), ProcessSet::from_indices([1]));
    // Owner: PART write, PART[guest] read, XCONS propose, WINNER write.
    for _ in 0..4 {
        sys.step(ProcessId::new(0));
    }
    sys.crash(ProcessId::new(0));
    let graph = StateGraph::build(&sys, 1_000_000);
    let verdict = fair_termination(&graph, |pid| pid.index() == 1);
    assert!(verdict.holds(), "{verdict:?}");
}
