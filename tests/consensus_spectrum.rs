//! Cross-crate integration: the whole liveness spectrum of consensus
//! objects under real-thread stress, checked with the history tools.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use asymmetric_progress::core::consensus::{
    AsymmetricConsensus, CasConsensus, Consensus, ObstructionFreeConsensus,
};
use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::model::history::{assert_consensus, ProposeRecord};
use asymmetric_progress::model::linearize::{is_linearizable, CompleteOp, ConsensusSpec};
use asymmetric_progress::model::ProcessSet;

fn stress<C: Consensus<u64>>(make: impl Fn() -> C, n: usize, rounds: usize) {
    for round in 0..rounds {
        let cons = make();
        let records = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 0..n {
                let cons = &cons;
                let records = &records;
                s.spawn(move || {
                    let proposed = (round * 1000 + pid) as u64;
                    let returned = cons.propose(pid, proposed).unwrap();
                    records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                });
            }
        });
        let records = records.into_inner().unwrap();
        assert_eq!(records.len(), n);
        assert_consensus(&records);
    }
}

#[test]
fn cas_consensus_stress() {
    stress(|| CasConsensus::new(Liveness::new_first_n(8, 8)), 8, 50);
}

#[test]
fn obstruction_free_consensus_stress() {
    let spec = Liveness::obstruction_free(ProcessSet::first_n(4)).unwrap();
    stress(move || ObstructionFreeConsensus::new(spec), 4, 30);
}

#[test]
fn asymmetric_consensus_stress_various_x() {
    for x in [0, 1, 3, 6] {
        stress(move || AsymmetricConsensus::new(Liveness::new_first_n(6, x.min(6))), 6, 25);
    }
}

/// Full linearizability (Wing–Gong) of a concurrent consensus history,
/// with invocation/response timestamps from a shared logical clock.
#[test]
fn consensus_history_is_linearizable() {
    for _ in 0..50 {
        let n = 4;
        let cons = CasConsensus::new(Liveness::new_first_n(n, n));
        let clock = AtomicU64::new(0);
        let ops = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 0..n {
                let cons = &cons;
                let clock = &clock;
                let ops = &ops;
                s.spawn(move || {
                    let invoked_at = clock.fetch_add(1, Ordering::SeqCst);
                    let returned = cons.propose(pid, pid as u64 + 10).unwrap();
                    let responded_at = clock.fetch_add(1, Ordering::SeqCst);
                    ops.lock().unwrap().push(CompleteOp {
                        op: pid as u64 + 10,
                        resp: returned,
                        invoked_at,
                        responded_at,
                    });
                });
            }
        });
        let history = ops.into_inner().unwrap();
        assert!(is_linearizable(&ConsensusSpec, &history), "history not linearizable: {history:?}");
    }
}

/// The wait-free path of an asymmetric object is bounded: even with guests
/// contending, the wait-free member's propose is two atomic operations. We
/// check it completes even when the guests never get isolation (they are
/// suspended mid-protocol by holding them on a barrier).
#[test]
fn wait_free_member_unblocks_everyone() {
    use std::sync::Barrier;
    let n = 5;
    let cons = AsymmetricConsensus::new(Liveness::new_first_n(n, 1));
    let barrier = Barrier::new(n);
    let records = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for pid in 1..n {
            let cons = &cons;
            let barrier = &barrier;
            let records = &records;
            s.spawn(move || {
                barrier.wait();
                let returned = cons.propose(pid, pid as u64).unwrap();
                records.lock().unwrap().push(ProposeRecord { pid, proposed: pid as u64, returned });
            });
        }
        let cons = &cons;
        let barrier = &barrier;
        let records = &records;
        s.spawn(move || {
            barrier.wait();
            let returned = cons.propose(0, 0).unwrap();
            records.lock().unwrap().push(ProposeRecord { pid: 0, proposed: 0, returned });
        });
    });
    assert_consensus(&records.into_inner().unwrap());
}

/// peek() never contradicts any propose() return value.
#[test]
fn peek_is_consistent_with_decisions() {
    for _ in 0..50 {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(4, 2));
        let peeked = Mutex::new(Vec::new());
        let decided = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 0..4 {
                let cons = &cons;
                let decided = &decided;
                s.spawn(move || {
                    let d = cons.propose(pid, pid as u64).unwrap();
                    decided.lock().unwrap().push(d);
                });
            }
            let cons = &cons;
            let peeked = &peeked;
            s.spawn(move || {
                for _ in 0..100 {
                    if let Some(v) = cons.peek() {
                        peeked.lock().unwrap().push(v);
                    }
                }
            });
        });
        let decided = decided.into_inner().unwrap();
        let final_value = decided[0];
        for d in &decided {
            assert_eq!(*d, final_value);
        }
        for p in peeked.into_inner().unwrap() {
            assert_eq!(p, final_value, "peek contradicted the decision");
        }
    }
}
