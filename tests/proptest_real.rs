//! Property-based tests on the real (threaded) substrate: registers,
//! snapshots, the linearizability checker, and liveness-spec algebra.

use proptest::prelude::*;

use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::model::linearize::{
    is_linearizable, CompleteOp, ConsensusSpec, RegOp, RegisterSpec,
};
use asymmetric_progress::model::ProcessSet;
use asymmetric_progress::registers::snapshot::SwmrSnapshot;
use asymmetric_progress::registers::{AtomicCell, PackedRegister};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AtomicCell sequential semantics match an Option<u64> reference.
    #[test]
    fn atomic_cell_matches_reference(ops in proptest::collection::vec(0u8..4, 1..60)) {
        let cell: AtomicCell<u64> = AtomicCell::new();
        let mut reference: Option<u64> = None;
        for (i, op) in ops.into_iter().enumerate() {
            let v = i as u64;
            match op {
                0 => {
                    cell.store(v);
                    reference = Some(v);
                }
                1 => {
                    prop_assert_eq!(cell.swap(v), reference);
                    reference = Some(v);
                }
                2 => {
                    let won = cell.set_if_bot(v).is_ok();
                    prop_assert_eq!(won, reference.is_none());
                    if won {
                        reference = Some(v);
                    }
                }
                _ => {
                    cell.clear();
                    reference = None;
                }
            }
            prop_assert_eq!(cell.load(), reference);
        }
    }

    /// PackedRegister agrees with AtomicCell<u64> on the same op sequence.
    #[test]
    fn packed_register_matches_cell(ops in proptest::collection::vec(0u8..3, 1..60)) {
        let packed = PackedRegister::new();
        let cell: AtomicCell<u64> = AtomicCell::new();
        for (i, op) in ops.into_iter().enumerate() {
            let v = i as u64;
            match op {
                0 => {
                    packed.store(v);
                    cell.store(v);
                }
                1 => {
                    prop_assert_eq!(packed.set_if_bot(v), cell.set_if_bot(v).is_ok());
                }
                _ => {
                    packed.clear();
                    cell.clear();
                }
            }
            prop_assert_eq!(packed.load(), cell.load());
        }
    }

    /// Sequential snapshot = plain array.
    #[test]
    fn snapshot_matches_array(
        updates in proptest::collection::vec((0usize..4, 0u64..100), 0..40)
    ) {
        let snap = SwmrSnapshot::new(4, 0u64);
        let mut array = [0u64; 4];
        for (i, v) in updates {
            snap.update(i, v);
            array[i] = v;
            prop_assert_eq!(snap.scan(), array.to_vec());
            prop_assert_eq!(snap.read(i), array[i]);
        }
    }

    /// Any actually-sequential history is linearizable; bumping one read's
    /// value out of band makes it non-linearizable.
    #[test]
    fn linearizability_checker_on_sequential_histories(
        writes in proptest::collection::vec(1u64..50, 1..8)
    ) {
        let mut history = Vec::new();
        let mut t = 0u64;
        let mut current = 0u64;
        for w in &writes {
            history.push(CompleteOp { op: RegOp::Write(*w), resp: None, invoked_at: t, responded_at: t + 1 });
            t += 2;
            current = *w;
            history.push(CompleteOp { op: RegOp::Read, resp: Some(current), invoked_at: t, responded_at: t + 1 });
            t += 2;
        }
        prop_assert!(is_linearizable(&RegisterSpec, &history));
        // Corrupt the final read.
        if let Some(last) = history.last_mut() {
            last.resp = Some(current + 999);
        }
        prop_assert!(!is_linearizable(&RegisterSpec, &history));
    }

    /// Consensus histories: everyone returning the same proposed value while
    /// overlapping is linearizable iff the "winner" was someone's proposal.
    #[test]
    fn consensus_linearizability(proposals in proptest::collection::vec(1u64..20, 2..6), winner_idx in 0usize..6) {
        let winner = proposals[winner_idx % proposals.len()];
        // All operations mutually overlap.
        let history: Vec<CompleteOp<u64, u64>> = proposals
            .iter()
            .enumerate()
            .map(|(i, &p)| CompleteOp {
                op: p,
                resp: winner,
                invoked_at: i as u64,
                responded_at: 100 + i as u64,
            })
            .collect();
        prop_assert!(is_linearizable(&ConsensusSpec, &history));
        // A value nobody proposed can never be the outcome.
        let rogue: Vec<CompleteOp<u64, u64>> = history
            .iter()
            .map(|c| CompleteOp { op: c.op, resp: 777, invoked_at: c.invoked_at, responded_at: c.responded_at })
            .collect();
        prop_assert!(!is_linearizable(&ConsensusSpec, &rogue));
    }

    /// Liveness-spec algebra: restriction (Theorem 3's tool) never increases
    /// the consensus number, and the hierarchy relation is a total preorder
    /// consistent with consensus numbers.
    #[test]
    fn liveness_restriction_monotone(y in 2usize..10, x in 0usize..10, keep_mask in 1u64..1024) {
        let x = x.min(y);
        let spec = Liveness::new_first_n(y, x);
        let keep: ProcessSet = (0..10usize).filter(|i| keep_mask & (1 << i) != 0).collect();
        if let Ok(restricted) = spec.restrict(keep) {
            prop_assert!(restricted.y() <= spec.y());
            prop_assert!(restricted.x() <= spec.x());
            prop_assert!(restricted.consensus_number() <= spec.consensus_number().max(restricted.y()));
        }
    }

    /// Theorem 3 arithmetic: consensus number is x+1 below the top, y at the
    /// top two rungs.
    #[test]
    fn consensus_number_formula(y in 1usize..20, x in 0usize..20) {
        let x = x.min(y);
        let spec = Liveness::new_first_n(y, x);
        let expected = if x + 1 >= y { y } else { x + 1 };
        prop_assert_eq!(spec.consensus_number(), expected);
    }
}
