//! The crash-recovery battery: random workloads snapshotted at random
//! points, crashed at arbitrary log indices, recovered from disk, and
//! compared against an independent `BTreeMap` oracle; plus the O(delta)
//! replay regression guard and the corrupted/truncated-snapshot error
//! paths.
//!
//! The durability contract under test is **prefix consistency**: a
//! recovered store is exactly the store as of the last successful flush
//! (per shard, a prefix of that shard's commit order); operations
//! committed after the flush are lost, never half-applied.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;

use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::store::persist::{PersistError, RecoverError, StoreSnapshot};
use asymmetric_progress::store::{Store, StoreBuilder, StoreOp, StoreResp};
use asymmetric_progress::universal::seq::{Counter, CounterOp};
use asymmetric_progress::universal::{CasFactory, Universal};

/// A scratch path under cargo's per-target tmp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("store-recovery");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// The independent oracle (duplicated from `store_oracle.rs` on purpose:
/// the oracle must not share code with the system under test).
fn oracle_apply(state: &mut BTreeMap<String, u64>, op: &StoreOp) -> StoreResp {
    match op {
        StoreOp::Get(k) => StoreResp::Value(state.get(k).copied()),
        StoreOp::Put(k, v) => StoreResp::Value(state.insert(k.clone(), *v)),
        StoreOp::Remove(k) => StoreResp::Value(state.remove(k)),
        StoreOp::Cas { key, expect, new } => {
            let actual = state.get(key).copied();
            if actual == *expect {
                state.insert(key.clone(), *new);
                StoreResp::Cas { ok: true, actual }
            } else {
                StoreResp::Cas { ok: false, actual }
            }
        }
        StoreOp::Scan { from, to } => StoreResp::Entries(
            state
                .iter()
                .filter(|(k, _)| *from <= **k && **k < *to)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        ),
    }
}

fn decode_op(kind: u8, key: u8, val: u64) -> StoreOp {
    let k = format!("key/{:02}", key % 12);
    match kind % 6 {
        0 | 1 => StoreOp::Put(k, val),
        2 => StoreOp::Get(k),
        3 => StoreOp::Remove(k),
        4 => StoreOp::Cas { key: k, expect: (!val.is_multiple_of(3)).then_some(val / 2), new: val },
        _ => {
            let hi = format!("key/{:02}", (key % 12).saturating_add(val as u8 % 5));
            StoreOp::Scan { from: k, to: hi }
        }
    }
}

fn full_scan(store: &Store) -> Vec<(String, u64)> {
    let mut auditor = store.client(store.admit_guest());
    auditor.scan("", "\u{10ffff}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random workload, snapshots at random cadence, crash at an arbitrary
    /// log index (= wherever the op stream happens to end), recovery from
    /// disk: the recovered state must equal the oracle as of the last
    /// snapshot, and subsequent operations on the recovered store must
    /// match the oracle response-for-response.
    #[test]
    fn crash_recovery_matches_oracle(
        shards in 1usize..4,
        encoded in proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 1..60),
        snap_every in 1usize..8,
        case in 0u64..1_000_000,
    ) {
        let path = scratch(&format!("proptest-{case}-{shards}-{snap_every}.snapshot"));
        let mut oracle = BTreeMap::new();
        let mut oracle_at_snapshot = BTreeMap::new();
        {
            let store = StoreBuilder::new()
                .shards(shards)
                .vip_capacity(1)
                .guest_ports(2)
                .guest_group_width(1)
                .build()
                .expect("valid sizing");
            let mut client = store.client(store.admit_vip().expect("first vip"));
            // Baseline snapshot: the crash may land before the cadence hits.
            store.checkpoint().write_to(&path).expect("initial flush");
            for (i, (kind, key, val)) in encoded.iter().enumerate() {
                let op = decode_op(*kind, *key, *val);
                let got = client.execute(vec![op.clone()]).pop().expect("one response");
                let want = oracle_apply(&mut oracle, &op);
                prop_assert_eq!(&got, &want, "pre-crash op {} diverged", i);
                if (i + 1) % snap_every == 0 {
                    store.checkpoint().write_to(&path).expect("cadence flush");
                    oracle_at_snapshot = oracle.clone();
                }
            }
        } // store dropped here: the crash, at whatever log index the stream reached
        let recovered = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect("snapshot must recover");
        prop_assert_eq!(recovered.shards(), shards, "shard count survives recovery");
        let want: Vec<(String, u64)> =
            oracle_at_snapshot.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(full_scan(&recovered), want, "recovered state == oracle at last snapshot");

        // Life after recovery: replay the same op stream against the
        // recovered store and the snapshot-time oracle, response for
        // response.
        let mut client = recovered.client(recovered.admit_vip().expect("first vip"));
        for (i, (kind, key, val)) in encoded.iter().enumerate() {
            let op = decode_op(*kind, *key, *val);
            let got = client.execute(vec![op.clone()]).pop().expect("one response");
            let want = oracle_apply(&mut oracle_at_snapshot, &op);
            prop_assert_eq!(&got, &want, "post-recovery op {} diverged", i);
        }
    }

    /// Byte-level fault injection: flipping any byte or cutting the file at
    /// any point must yield a typed [`PersistError`] from recovery — no
    /// panic, no silently recovered partial state.
    #[test]
    fn corrupted_or_truncated_snapshots_fail_closed(
        flip_seed in 0usize..10_000,
        cut_seed in 0usize..10_000,
    ) {
        let path = scratch(&format!("fault-{flip_seed}-{cut_seed}.snapshot"));
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let mut client = store.client(store.admit_vip().expect("first vip"));
        for i in 0..20 {
            client.put(&format!("key/{i:02}"), i);
        }
        store.checkpoint().write_to(&path).expect("flush");
        let good = std::fs::read(&path).expect("snapshot bytes");

        // Flip one byte.
        let mut flipped = good.clone();
        let at = flip_seed % flipped.len();
        flipped[at] ^= 0x20;
        std::fs::write(&path, &flipped).expect("write corrupted");
        let err = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect_err("flipped byte must not recover");
        prop_assert!(
            matches!(err, RecoverError::Persist(_)),
            "flip at {} gave {:?}", at, err
        );

        // Truncate to a strict prefix.
        let cut = cut_seed % good.len();
        std::fs::write(&path, &good[..cut]).expect("write truncated");
        let err = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect_err("truncated file must not recover");
        prop_assert!(
            matches!(
                err,
                RecoverError::Persist(
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                )
            ),
            "cut to {} gave {:?}", cut, err
        );

        // The pristine bytes still recover (the store itself was fine).
        std::fs::write(&path, &good).expect("restore snapshot");
        let recovered = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect("pristine snapshot recovers");
        prop_assert_eq!(full_scan(&recovered).len(), 20);
    }
}

/// The O(delta) replay regression guard (universal level): after a
/// checkpoint at log index k, a fresh handle's replay-step counter must be
/// proportional to (len − k), not to len. If checkpoint bootstrapping ever
/// silently regresses to O(history) replay, this counter catches it.
#[test]
fn fresh_handle_replay_is_o_delta_not_o_history() {
    let n = 3;
    let history = 500u64; // sealed prefix
    let delta = 7u64; // post-checkpoint suffix
    let obj = Universal::new(Counter, CasFactory::new(Liveness::new_first_n(n, n)), n);
    let mut writer = obj.handle(0).unwrap();
    for _ in 0..history {
        writer.apply(CounterOp::Add(1));
    }
    let sealed_at = writer.checkpoint();
    assert_eq!(sealed_at, history, "checkpoint seals the whole history");
    for _ in 0..delta {
        writer.apply(CounterOp::Add(1));
    }
    let mut fresh = obj.handle(1).unwrap();
    assert_eq!(fresh.apply(CounterOp::Get), history + delta, "replay is still exact");
    let steps = fresh.replay_steps();
    assert!(
        steps <= delta + 2,
        "fresh handle replayed {steps} cells; O(delta) demands ≤ {} (delta {delta} + \
         checkpoint cell + own op)",
        delta + 2
    );
    assert_eq!(
        fresh.replayed_cells(),
        history + delta + 2,
        "absolute position still spans the whole log"
    );
}

/// The same guard at the store level, end to end through disk: a store
/// checkpointed at index k recovers with zero boot replay and O(1) work
/// for its first operation.
#[test]
fn recovered_store_does_not_replay_history() {
    let path = scratch("o-delta-store.snapshot");
    let history = 300u64;
    {
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .unwrap();
        let mut client = store.client(store.admit_vip().unwrap());
        for i in 0..history {
            client.put(&format!("key/{i:03}"), i);
        }
        store.checkpoint().write_to(&path).unwrap();
        let indices = store.anchor_indices();
        assert_eq!(
            indices.iter().map(|i| i - 1).sum::<u64>(),
            history,
            "the shards' checkpoints jointly seal every commit"
        );
    }
    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .recover(&path)
        .unwrap();
    assert_eq!(recovered.replay_steps(), 0, "boot replays nothing");
    let mut client = recovered.client(recovered.admit_vip().unwrap());
    assert_eq!(client.get("key/000"), Some(0));
    assert!(
        recovered.replay_steps() <= 2,
        "first post-recovery op replayed {} cells, expected O(1)",
        recovered.replay_steps()
    );
    assert_eq!(full_scan(&recovered).len(), history as usize);
}

/// Per-shard prefix consistency under concurrency: clients write ordered
/// streams to disjoint key spaces while a persister group-commits in the
/// background; whatever cut the crash lands on, each shard's recovered
/// content is a *prefix* of every client's per-shard write order — no
/// gaps, no phantom writes.
#[test]
fn concurrent_flushes_recover_to_a_per_shard_prefix() {
    use asymmetric_progress::store::persist::Persister;
    let path = scratch("prefix-cut.snapshot");
    let clients = 3usize;
    let per_client = 40u64;
    let shards;
    {
        let store = StoreBuilder::new()
            .shards(3)
            .vip_capacity(1)
            .guest_ports(4)
            .guest_group_width(2)
            .build()
            .unwrap();
        shards = store.shards();
        let persister = Persister::new(&path);
        persister.persist(&store).unwrap();
        let tickets: Vec<_> = (0..clients)
            .map(|c| if c == 0 { store.admit_vip().unwrap() } else { store.admit_guest() })
            .collect();
        std::thread::scope(|s| {
            for (c, ticket) in tickets.iter().enumerate() {
                let store = &store;
                s.spawn(move || {
                    let mut client = store.client(*ticket);
                    for i in 0..per_client {
                        client.put(&format!("c{c}/{i:03}"), i);
                    }
                });
            }
            // Flush concurrently with the writers: the cut lands wherever
            // the group commits happen to seal each shard.
            let store = &store;
            let persister = &persister;
            s.spawn(move || {
                for _ in 0..5 {
                    persister.persist(store).unwrap();
                }
            });
        });
    } // crash
    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(4)
        .guest_group_width(2)
        .recover(&path)
        .unwrap();
    let entries = full_scan(&recovered);
    for (k, v) in &entries {
        let (c, i) = k.split_once('/').expect("key shape");
        let i: u64 = i.parse().unwrap();
        assert_eq!(*v, i, "phantom or torn write: {k}={v}");
        assert!(c.starts_with('c') && i < per_client);
    }
    // Per shard and per client, presence must be prefix-closed in write
    // order: if c's i-th key on shard s survived, every earlier key of c
    // on shard s survived too.
    let present: std::collections::BTreeSet<&str> =
        entries.iter().map(|(k, _)| k.as_str()).collect();
    for c in 0..clients {
        for s in 0..shards {
            let mut seen_missing = false;
            for i in 0..per_client {
                let key = format!("c{c}/{i:03}");
                if recovered.shard_of(&key) != s {
                    continue;
                }
                if present.contains(key.as_str()) {
                    assert!(
                        !seen_missing,
                        "shard {s}: client {c}'s key {key} survived after an earlier gap — \
                         not a prefix of the commit order"
                    );
                } else {
                    seen_missing = true;
                }
            }
        }
    }
}

/// Snapshot files round-trip through the public `StoreSnapshot` API too
/// (capture → encode → decode → recover), so external tooling can inspect
/// snapshots without a store.
#[test]
fn snapshot_api_roundtrip() {
    let store = StoreBuilder::new()
        .shards(2)
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .build()
        .unwrap();
    let mut client = store.client(store.admit_guest());
    client.put("a", 1);
    client.put("b", 2);
    let snap = store.checkpoint();
    let decoded = StoreSnapshot::decode(&snap.encode()).unwrap();
    assert_eq!(decoded, snap);
    assert_eq!(decoded.entries(), 2);
}

/// The acceptance-criteria roundtrip: a store that performed **live
/// splits** flushes, crashes, and recovers with its post-split topology
/// intact — same shard count, same split tree, same placement, same data.
#[test]
fn post_split_topology_survives_crash_recovery() {
    let path = scratch("post-split.snapshot");
    let (expected, topology_before) = {
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(3)
            .guest_group_width(1)
            .build()
            .unwrap();
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..96u64 {
            c.put(&format!("key/{i:03}"), i);
        }
        // Two live splits (one stacked on the first child's parent).
        let c1 = store.split_shard(store.hottest_shard()).unwrap();
        store.split_shard(c1 % store.shards()).unwrap();
        assert_eq!(store.shards(), 4);
        assert_eq!(store.topology().version(), 2);
        c.put("post/split", 7);
        store.checkpoint().write_to(&path).unwrap();
        // Post-flush commits must not survive.
        c.put("late", 1);
        (full_scan(&store), store.topology())
    }; // crash
    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(3)
        .guest_group_width(1)
        .recover(&path)
        .unwrap();
    assert_eq!(recovered.shards(), 4, "post-split shard count restored");
    let topology_after = recovered.topology();
    assert_eq!(topology_after.version(), 2, "topology version restored");
    assert_eq!(topology_after, topology_before, "the split tree survives verbatim");
    // Placement agrees exactly with the pre-crash topology, so every key
    // routes to the shard that actually holds its data.
    let mut c = recovered.client(recovered.admit_vip().unwrap());
    let scanned: Vec<(String, u64)> =
        full_scan(&recovered).into_iter().filter(|(k, _)| k != "late").collect();
    assert_eq!(scanned, expected.into_iter().filter(|(k, _)| k != "late").collect::<Vec<_>>());
    for (key, value) in &scanned {
        assert_eq!(c.get(key), Some(*value), "{key} routes to its post-split shard");
        assert_eq!(
            recovered.shard_of(key),
            topology_before.shard_of(key),
            "{key} placement survives recovery"
        );
    }
    assert_eq!(c.get("late"), None, "post-flush commits are not durable");
    // The recovered store can keep splitting.
    let next = recovered.split_shard(0).unwrap();
    assert_eq!(next, 4);
    assert_eq!(recovered.topology().version(), 3);
    c.put("after/recovery", 9);
    assert_eq!(c.get("after/recovery"), Some(9));
}

// ---------------------------------------------------------------------------
// Elastic-topology recovery: merged trees, tombstones, format upgrades.
// ---------------------------------------------------------------------------

/// FNV-1a 64, duplicated here on purpose: the tests below hand-encode and
/// re-seal snapshot bytes, and the checksum oracle must not share code
/// with the system under test.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The post-merge roundtrip: a store that split **and merged** live
/// flushes, crashes, and recovers with its tombstoned topology intact —
/// same slots, same tombstones, same placement, same data — and can keep
/// splitting and merging afterwards.
#[test]
fn post_merge_topology_survives_crash_recovery() {
    let path = scratch("post-merge.snapshot");
    let (expected, topology_before) = {
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(3)
            .guest_group_width(1)
            .build()
            .unwrap();
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..96u64 {
            c.put(&format!("key/{i:03}"), i);
        }
        // Grow by two, shrink by one: a live tombstone in the middle of
        // the slot range.
        let c1 = store.split_shard(0).unwrap();
        let c2 = store.split_shard(1).unwrap();
        store.merge_shard(c1).unwrap();
        assert_eq!(store.shards(), 4);
        assert_eq!(store.live_shards(), 3);
        assert_eq!(store.topology().version(), 3);
        c.put("post/merge", 7);
        store.checkpoint().write_to(&path).unwrap();
        // Post-flush commits must not survive.
        c.put("late", 1);
        let _ = c2;
        (full_scan(&store), store.topology())
    }; // crash
    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(3)
        .guest_group_width(1)
        .recover(&path)
        .unwrap();
    assert_eq!(recovered.shards(), 4, "tombstones keep their slot across recovery");
    assert_eq!(recovered.live_shards(), 3, "the live set survives");
    let topology_after = recovered.topology();
    assert_eq!(topology_after, topology_before, "the tombstoned tree survives verbatim");
    assert!(!topology_after.is_live(2), "shard 2 is still retired");
    let mut c = recovered.client(recovered.admit_vip().unwrap());
    let scanned: Vec<(String, u64)> =
        full_scan(&recovered).into_iter().filter(|(k, _)| k != "late").collect();
    assert_eq!(scanned, expected.into_iter().filter(|(k, _)| k != "late").collect::<Vec<_>>());
    for (key, value) in &scanned {
        assert_eq!(c.get(key), Some(*value), "{key} routes to its post-merge shard");
        assert_eq!(
            recovered.shard_of(key),
            topology_before.shard_of(key),
            "{key} placement survives recovery"
        );
    }
    assert_eq!(c.get("late"), None, "post-flush commits are not durable");
    // The tombstone is empty and stays that way; stats agree with data.
    let stats = recovered.snapshot_stats();
    assert_eq!(stats[2].entries, 0, "the recovered tombstone holds nothing");
    // The recovered store keeps reconfiguring: split, then merge it back.
    let next = recovered.split_shard(0).unwrap();
    assert_eq!(next, 4);
    assert_eq!(recovered.merge_shard(next).unwrap(), 0);
    assert_eq!(recovered.topology().version(), 5);
    c.put("after/recovery", 9);
    assert_eq!(c.get("after/recovery"), Some(9));
    assert_eq!(full_scan(&recovered).len(), scanned.len() + 1);
}

/// A v2 (PR-4-era, pre-tombstone) snapshot file recovers end-to-end
/// through `StoreBuilder::recover`: the upgrade reads every node as live
/// and the store serves exactly the flushed data.
#[test]
fn v2_snapshot_files_upgrade_on_recovery() {
    let path = scratch("v2-upgrade.snapshot");
    // Hand-encode a v2 file: a fresh(2) topology (roots at version 0) and
    // two frames. Seeds must match what the router derives for roots, so
    // take them from a live topology.
    let topology = asymmetric_progress::store::ShardTopology::fresh(2);
    let entries: Vec<(String, u64)> = (0..10u64).map(|i| (format!("key/{i:02}"), i * 3)).collect();
    let mut frames: Vec<Vec<(String, u64)>> = vec![Vec::new(), Vec::new()];
    for (k, v) in &entries {
        frames[topology.shard_of(k)].push((k.clone(), *v));
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(b"APCS");
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.extend_from_slice(&2u32.to_le_bytes());
    let topo_start = buf.len();
    buf.extend_from_slice(&0u64.to_le_bytes()); // topo version
    for s in 0..2 {
        let node = topology.node(s);
        buf.extend_from_slice(&node.seed.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
    }
    let topo_sum = fnv(&buf[topo_start..]);
    buf.extend_from_slice(&topo_sum.to_le_bytes());
    for frame in &frames {
        let frame_start = buf.len();
        buf.extend_from_slice(&0u64.to_le_bytes()); // log_index
        buf.extend_from_slice(&0u64.to_le_bytes()); // epoch
        buf.extend_from_slice(&(frame.len() as u64).to_le_bytes());
        let payload_len_at = buf.len();
        buf.extend_from_slice(&0u64.to_le_bytes());
        let payload_start = buf.len();
        for (k, v) in frame {
            buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let payload_len = (buf.len() - payload_start) as u64;
        buf[payload_len_at..payload_len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
        let sum = fnv(&buf[frame_start..]);
        buf.extend_from_slice(&sum.to_le_bytes());
    }
    let sum = fnv(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &buf).unwrap();

    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .recover(&path)
        .unwrap();
    assert_eq!(recovered.shards(), 2);
    assert_eq!(recovered.live_shards(), 2, "a v2 file upgrades to all-live nodes");
    assert_eq!(full_scan(&recovered), entries);
    // The upgraded store is fully elastic: split and merge still work.
    let child = recovered.split_shard(0).unwrap();
    recovered.merge_shard(child).unwrap();
    assert_eq!(full_scan(&recovered), entries, "nothing lost across the upgrade + round-trip");
}

/// Fault injection on the tombstone column specifically: structurally
/// invalid retirements (re-sealed so every checksum passes) must fail
/// closed with their own typed corruption errors — recovery never builds
/// a store whose tombstones lie.
#[test]
fn corrupted_tombstones_fail_closed_with_typed_errors() {
    let path = scratch("bad-tombstones.snapshot");
    // node records: (seed, parent, created_at, retired_at)
    let encode = |records: &[(u64, u32, u64, u64)], topo_version: u64| {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"APCS");
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
        let topo_start = buf.len();
        buf.extend_from_slice(&topo_version.to_le_bytes());
        for &(seed, parent, created_at, retired_at) in records {
            buf.extend_from_slice(&seed.to_le_bytes());
            buf.extend_from_slice(&parent.to_le_bytes());
            buf.extend_from_slice(&created_at.to_le_bytes());
            buf.extend_from_slice(&retired_at.to_le_bytes());
        }
        let topo_sum = fnv(&buf[topo_start..]);
        buf.extend_from_slice(&topo_sum.to_le_bytes());
        for _ in records {
            let frame_start = buf.len();
            for _ in 0..4 {
                buf.extend_from_slice(&0u64.to_le_bytes());
            }
            let sum = fnv(&buf[frame_start..]);
            buf.extend_from_slice(&sum.to_le_bytes());
        }
        let sum = fnv(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    };
    let recover = |bytes: &[u8]| {
        std::fs::write(&path, bytes).unwrap();
        StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect_err("corrupt tombstones must not recover")
    };
    let live = u64::MAX;
    // A retired root.
    let err = recover(&encode(&[(7, u32::MAX, 0, 1)], 1));
    assert!(
        matches!(err, RecoverError::Persist(PersistError::Corrupt(m)) if m.contains("root")),
        "retired root gave {err:?}"
    );
    // Retirement beyond the topology version.
    let err = recover(&encode(&[(7, u32::MAX, 0, live), (8, 0, 1, 9)], 2));
    assert!(
        matches!(err, RecoverError::Persist(PersistError::Corrupt(m)) if m.contains("version range")),
        "out-of-range tombstone gave {err:?}"
    );
    // Retirement at or before creation.
    let err = recover(&encode(&[(7, u32::MAX, 0, live), (8, 0, 2, 2)], 2));
    assert!(
        matches!(err, RecoverError::Persist(PersistError::Corrupt(m)) if m.contains("version range")),
        "pre-creation tombstone gave {err:?}"
    );
    // A live child under a tombstone.
    let err = recover(&encode(&[(7, u32::MAX, 0, live), (8, 0, 1, 3), (9, 1, 2, live)], 3));
    assert!(
        matches!(err, RecoverError::Persist(PersistError::Corrupt(m)) if m.contains("tombstone")),
        "live child of tombstone gave {err:?}"
    );
    // And a well-formed tombstone with a lying (non-empty) frame: build a
    // real post-merge snapshot, then graft data into the retired frame.
    let store = StoreBuilder::new()
        .shards(1)
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .build()
        .unwrap();
    let mut c = store.client(store.admit_vip().unwrap());
    for i in 0..8u64 {
        c.put(&format!("k{i}"), i);
    }
    let child = store.split_shard(0).unwrap();
    store.merge_shard(child).unwrap();
    let snap = store.checkpoint();
    let mut tampered = snap;
    let mut ghost = std::collections::BTreeMap::new();
    ghost.insert("ghost".to_string(), 1u64);
    tampered.shards[child] = asymmetric_progress::store::ShardSnapshot {
        log_index: tampered.shards[child].log_index,
        state: asymmetric_progress::store::ShardState::with_entries(ghost, 2),
    };
    std::fs::write(&path, tampered.encode()).unwrap();
    let err = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .recover(&path)
        .expect_err("a tombstoned frame with entries must not recover");
    assert!(
        matches!(err, RecoverError::Persist(PersistError::Corrupt(m)) if m.contains("carries entries")),
        "ghost entries gave {err:?}"
    );
}

/// Random split/merge churn, then crash + recover: the recovered store
/// equals the oracle at the last flush and its placement function equals
/// the pre-crash one — the proptest twin of the deterministic roundtrip.
#[test]
fn churned_topology_recovers_exactly() {
    // Deterministic multi-round churn (no proptest macro needed: the
    // interesting randomness is the rendezvous placement itself).
    for seed in 0u64..6 {
        let path = scratch(&format!("churn-{seed}.snapshot"));
        let (expected, topo_before) = {
            let store = StoreBuilder::new()
                .shards(1 + (seed as usize % 3))
                .vip_capacity(1)
                .guest_ports(2)
                .guest_group_width(1)
                .build()
                .unwrap();
            let mut c = store.client(store.admit_vip().unwrap());
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            for i in 0..60u64 {
                c.put(&format!("key/{i:02}"), i ^ seed);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 7 == 0 {
                    let topo = store.topology();
                    let live: Vec<usize> =
                        (0..topo.shards()).filter(|&s| topo.is_live(s)).collect();
                    store.split_shard(live[(x >> 8) as usize % live.len()]).unwrap();
                } else if x % 7 == 1 {
                    let topo = store.topology();
                    if let Some(victim) = (0..topo.shards()).find(|&s| topo.check_merge(s).is_ok())
                    {
                        store.merge_shard(victim).unwrap();
                    }
                }
            }
            store.checkpoint().write_to(&path).unwrap();
            (full_scan(&store), store.topology())
        };
        let recovered = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .unwrap();
        assert_eq!(recovered.topology(), topo_before, "seed {seed}: churned tree survives");
        assert_eq!(full_scan(&recovered), expected, "seed {seed}: data survives");
        let mut c = recovered.client(recovered.admit_vip().unwrap());
        for (k, v) in &expected {
            assert_eq!(c.get(k), Some(*v), "seed {seed}: {k} routes correctly after recovery");
        }
    }
}

/// The persister's scrape: flush cycles, failures, and group-commit
/// coalescing reconcile with `flushes()` — and under `k` concurrent
/// requests, every request is accounted for as either a led cycle or a
/// coalesced ride-along.
#[test]
fn persister_scrape_counts_flushes_failures_and_coalescing() {
    use asymmetric_progress::store::persist::Persister;

    let path = scratch("persist-metrics.snapshot");
    let store = StoreBuilder::new().shards(2).build().unwrap();
    let persister = Persister::new(&path);
    store.client(store.admit_guest()).put("k", 1);
    persister.persist(&store).unwrap();
    persister.persist(&store).unwrap();

    const CONCURRENT: u64 = 6;
    std::thread::scope(|s| {
        for _ in 0..CONCURRENT {
            s.spawn(|| persister.persist(&store).unwrap());
        }
    });

    let snap = persister.scrape();
    let flushes = snap.value("store_persist_flushes_total", &[]).unwrap();
    let coalesced = snap.value("store_persist_coalesced_total", &[]).unwrap();
    assert_eq!(flushes, persister.flushes(), "scrape agrees with the state-mutex counter");
    assert_eq!(snap.value("store_persist_flush_failures_total", &[]), Some(0));
    assert_eq!(
        flushes + coalesced,
        2 + CONCURRENT,
        "every request either led a cycle or coalesced into one"
    );
    let lat = snap.histogram("store_persist_flush_latency_ns", &[]).unwrap();
    assert_eq!(lat.count, flushes, "every physical cycle is timed");

    // A failing flush (unwritable target) shows up as a failure cycle.
    let bad = Persister::new(scratch("no-such-dir").join("deep").join("x.snapshot"));
    assert!(bad.persist(&store).is_err());
    let snap = bad.scrape();
    assert_eq!(snap.value("store_persist_flushes_total", &[]), Some(1));
    assert_eq!(snap.value("store_persist_flush_failures_total", &[]), Some(1));
}
