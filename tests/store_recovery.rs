//! The crash-recovery battery: random workloads snapshotted at random
//! points, crashed at arbitrary log indices, recovered from disk, and
//! compared against an independent `BTreeMap` oracle; plus the O(delta)
//! replay regression guard and the corrupted/truncated-snapshot error
//! paths.
//!
//! The durability contract under test is **prefix consistency**: a
//! recovered store is exactly the store as of the last successful flush
//! (per shard, a prefix of that shard's commit order); operations
//! committed after the flush are lost, never half-applied.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;

use asymmetric_progress::core::liveness::Liveness;
use asymmetric_progress::store::persist::{PersistError, RecoverError, StoreSnapshot};
use asymmetric_progress::store::{Store, StoreBuilder, StoreOp, StoreResp};
use asymmetric_progress::universal::seq::{Counter, CounterOp};
use asymmetric_progress::universal::{CasFactory, Universal};

/// A scratch path under cargo's per-target tmp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("store-recovery");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// The independent oracle (duplicated from `store_oracle.rs` on purpose:
/// the oracle must not share code with the system under test).
fn oracle_apply(state: &mut BTreeMap<String, u64>, op: &StoreOp) -> StoreResp {
    match op {
        StoreOp::Get(k) => StoreResp::Value(state.get(k).copied()),
        StoreOp::Put(k, v) => StoreResp::Value(state.insert(k.clone(), *v)),
        StoreOp::Remove(k) => StoreResp::Value(state.remove(k)),
        StoreOp::Cas { key, expect, new } => {
            let actual = state.get(key).copied();
            if actual == *expect {
                state.insert(key.clone(), *new);
                StoreResp::Cas { ok: true, actual }
            } else {
                StoreResp::Cas { ok: false, actual }
            }
        }
        StoreOp::Scan { from, to } => StoreResp::Entries(
            state
                .iter()
                .filter(|(k, _)| *from <= **k && **k < *to)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        ),
    }
}

fn decode_op(kind: u8, key: u8, val: u64) -> StoreOp {
    let k = format!("key/{:02}", key % 12);
    match kind % 6 {
        0 | 1 => StoreOp::Put(k, val),
        2 => StoreOp::Get(k),
        3 => StoreOp::Remove(k),
        4 => StoreOp::Cas { key: k, expect: (!val.is_multiple_of(3)).then_some(val / 2), new: val },
        _ => {
            let hi = format!("key/{:02}", (key % 12).saturating_add(val as u8 % 5));
            StoreOp::Scan { from: k, to: hi }
        }
    }
}

fn full_scan(store: &Store) -> Vec<(String, u64)> {
    let mut auditor = store.client(store.admit_guest());
    auditor.scan("", "\u{10ffff}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random workload, snapshots at random cadence, crash at an arbitrary
    /// log index (= wherever the op stream happens to end), recovery from
    /// disk: the recovered state must equal the oracle as of the last
    /// snapshot, and subsequent operations on the recovered store must
    /// match the oracle response-for-response.
    #[test]
    fn crash_recovery_matches_oracle(
        shards in 1usize..4,
        encoded in proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 1..60),
        snap_every in 1usize..8,
        case in 0u64..1_000_000,
    ) {
        let path = scratch(&format!("proptest-{case}-{shards}-{snap_every}.snapshot"));
        let mut oracle = BTreeMap::new();
        let mut oracle_at_snapshot = BTreeMap::new();
        {
            let store = StoreBuilder::new()
                .shards(shards)
                .vip_capacity(1)
                .guest_ports(2)
                .guest_group_width(1)
                .build()
                .expect("valid sizing");
            let mut client = store.client(store.admit_vip().expect("first vip"));
            // Baseline snapshot: the crash may land before the cadence hits.
            store.checkpoint().write_to(&path).expect("initial flush");
            for (i, (kind, key, val)) in encoded.iter().enumerate() {
                let op = decode_op(*kind, *key, *val);
                let got = client.execute(vec![op.clone()]).pop().expect("one response");
                let want = oracle_apply(&mut oracle, &op);
                prop_assert_eq!(&got, &want, "pre-crash op {} diverged", i);
                if (i + 1) % snap_every == 0 {
                    store.checkpoint().write_to(&path).expect("cadence flush");
                    oracle_at_snapshot = oracle.clone();
                }
            }
        } // store dropped here: the crash, at whatever log index the stream reached
        let recovered = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect("snapshot must recover");
        prop_assert_eq!(recovered.shards(), shards, "shard count survives recovery");
        let want: Vec<(String, u64)> =
            oracle_at_snapshot.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(full_scan(&recovered), want, "recovered state == oracle at last snapshot");

        // Life after recovery: replay the same op stream against the
        // recovered store and the snapshot-time oracle, response for
        // response.
        let mut client = recovered.client(recovered.admit_vip().expect("first vip"));
        for (i, (kind, key, val)) in encoded.iter().enumerate() {
            let op = decode_op(*kind, *key, *val);
            let got = client.execute(vec![op.clone()]).pop().expect("one response");
            let want = oracle_apply(&mut oracle_at_snapshot, &op);
            prop_assert_eq!(&got, &want, "post-recovery op {} diverged", i);
        }
    }

    /// Byte-level fault injection: flipping any byte or cutting the file at
    /// any point must yield a typed [`PersistError`] from recovery — no
    /// panic, no silently recovered partial state.
    #[test]
    fn corrupted_or_truncated_snapshots_fail_closed(
        flip_seed in 0usize..10_000,
        cut_seed in 0usize..10_000,
    ) {
        let path = scratch(&format!("fault-{flip_seed}-{cut_seed}.snapshot"));
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let mut client = store.client(store.admit_vip().expect("first vip"));
        for i in 0..20 {
            client.put(&format!("key/{i:02}"), i);
        }
        store.checkpoint().write_to(&path).expect("flush");
        let good = std::fs::read(&path).expect("snapshot bytes");

        // Flip one byte.
        let mut flipped = good.clone();
        let at = flip_seed % flipped.len();
        flipped[at] ^= 0x20;
        std::fs::write(&path, &flipped).expect("write corrupted");
        let err = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect_err("flipped byte must not recover");
        prop_assert!(
            matches!(err, RecoverError::Persist(_)),
            "flip at {} gave {:?}", at, err
        );

        // Truncate to a strict prefix.
        let cut = cut_seed % good.len();
        std::fs::write(&path, &good[..cut]).expect("write truncated");
        let err = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect_err("truncated file must not recover");
        prop_assert!(
            matches!(
                err,
                RecoverError::Persist(
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                )
            ),
            "cut to {} gave {:?}", cut, err
        );

        // The pristine bytes still recover (the store itself was fine).
        std::fs::write(&path, &good).expect("restore snapshot");
        let recovered = StoreBuilder::new()
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .recover(&path)
            .expect("pristine snapshot recovers");
        prop_assert_eq!(full_scan(&recovered).len(), 20);
    }
}

/// The O(delta) replay regression guard (universal level): after a
/// checkpoint at log index k, a fresh handle's replay-step counter must be
/// proportional to (len − k), not to len. If checkpoint bootstrapping ever
/// silently regresses to O(history) replay, this counter catches it.
#[test]
fn fresh_handle_replay_is_o_delta_not_o_history() {
    let n = 3;
    let history = 500u64; // sealed prefix
    let delta = 7u64; // post-checkpoint suffix
    let obj = Universal::new(Counter, CasFactory::new(Liveness::new_first_n(n, n)), n);
    let mut writer = obj.handle(0).unwrap();
    for _ in 0..history {
        writer.apply(CounterOp::Add(1));
    }
    let sealed_at = writer.checkpoint();
    assert_eq!(sealed_at, history, "checkpoint seals the whole history");
    for _ in 0..delta {
        writer.apply(CounterOp::Add(1));
    }
    let mut fresh = obj.handle(1).unwrap();
    assert_eq!(fresh.apply(CounterOp::Get), history + delta, "replay is still exact");
    let steps = fresh.replay_steps();
    assert!(
        steps <= delta + 2,
        "fresh handle replayed {steps} cells; O(delta) demands ≤ {} (delta {delta} + \
         checkpoint cell + own op)",
        delta + 2
    );
    assert_eq!(
        fresh.replayed_cells(),
        history + delta + 2,
        "absolute position still spans the whole log"
    );
}

/// The same guard at the store level, end to end through disk: a store
/// checkpointed at index k recovers with zero boot replay and O(1) work
/// for its first operation.
#[test]
fn recovered_store_does_not_replay_history() {
    let path = scratch("o-delta-store.snapshot");
    let history = 300u64;
    {
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .unwrap();
        let mut client = store.client(store.admit_vip().unwrap());
        for i in 0..history {
            client.put(&format!("key/{i:03}"), i);
        }
        store.checkpoint().write_to(&path).unwrap();
        let indices = store.anchor_indices();
        assert_eq!(
            indices.iter().map(|i| i - 1).sum::<u64>(),
            history,
            "the shards' checkpoints jointly seal every commit"
        );
    }
    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .recover(&path)
        .unwrap();
    assert_eq!(recovered.replay_steps(), 0, "boot replays nothing");
    let mut client = recovered.client(recovered.admit_vip().unwrap());
    assert_eq!(client.get("key/000"), Some(0));
    assert!(
        recovered.replay_steps() <= 2,
        "first post-recovery op replayed {} cells, expected O(1)",
        recovered.replay_steps()
    );
    assert_eq!(full_scan(&recovered).len(), history as usize);
}

/// Per-shard prefix consistency under concurrency: clients write ordered
/// streams to disjoint key spaces while a persister group-commits in the
/// background; whatever cut the crash lands on, each shard's recovered
/// content is a *prefix* of every client's per-shard write order — no
/// gaps, no phantom writes.
#[test]
fn concurrent_flushes_recover_to_a_per_shard_prefix() {
    use asymmetric_progress::store::persist::Persister;
    let path = scratch("prefix-cut.snapshot");
    let clients = 3usize;
    let per_client = 40u64;
    let shards;
    {
        let store = StoreBuilder::new()
            .shards(3)
            .vip_capacity(1)
            .guest_ports(4)
            .guest_group_width(2)
            .build()
            .unwrap();
        shards = store.shards();
        let persister = Persister::new(&path);
        persister.persist(&store).unwrap();
        let tickets: Vec<_> = (0..clients)
            .map(|c| if c == 0 { store.admit_vip().unwrap() } else { store.admit_guest() })
            .collect();
        std::thread::scope(|s| {
            for (c, ticket) in tickets.iter().enumerate() {
                let store = &store;
                s.spawn(move || {
                    let mut client = store.client(*ticket);
                    for i in 0..per_client {
                        client.put(&format!("c{c}/{i:03}"), i);
                    }
                });
            }
            // Flush concurrently with the writers: the cut lands wherever
            // the group commits happen to seal each shard.
            let store = &store;
            let persister = &persister;
            s.spawn(move || {
                for _ in 0..5 {
                    persister.persist(store).unwrap();
                }
            });
        });
    } // crash
    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(4)
        .guest_group_width(2)
        .recover(&path)
        .unwrap();
    let entries = full_scan(&recovered);
    for (k, v) in &entries {
        let (c, i) = k.split_once('/').expect("key shape");
        let i: u64 = i.parse().unwrap();
        assert_eq!(*v, i, "phantom or torn write: {k}={v}");
        assert!(c.starts_with('c') && i < per_client);
    }
    // Per shard and per client, presence must be prefix-closed in write
    // order: if c's i-th key on shard s survived, every earlier key of c
    // on shard s survived too.
    let present: std::collections::BTreeSet<&str> =
        entries.iter().map(|(k, _)| k.as_str()).collect();
    for c in 0..clients {
        for s in 0..shards {
            let mut seen_missing = false;
            for i in 0..per_client {
                let key = format!("c{c}/{i:03}");
                if recovered.shard_of(&key) != s {
                    continue;
                }
                if present.contains(key.as_str()) {
                    assert!(
                        !seen_missing,
                        "shard {s}: client {c}'s key {key} survived after an earlier gap — \
                         not a prefix of the commit order"
                    );
                } else {
                    seen_missing = true;
                }
            }
        }
    }
}

/// Snapshot files round-trip through the public `StoreSnapshot` API too
/// (capture → encode → decode → recover), so external tooling can inspect
/// snapshots without a store.
#[test]
fn snapshot_api_roundtrip() {
    let store = StoreBuilder::new()
        .shards(2)
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .build()
        .unwrap();
    let mut client = store.client(store.admit_guest());
    client.put("a", 1);
    client.put("b", 2);
    let snap = store.checkpoint();
    let decoded = StoreSnapshot::decode(&snap.encode()).unwrap();
    assert_eq!(decoded, snap);
    assert_eq!(decoded.entries(), 2);
}

/// The acceptance-criteria roundtrip: a store that performed **live
/// splits** flushes, crashes, and recovers with its post-split topology
/// intact — same shard count, same split tree, same placement, same data.
#[test]
fn post_split_topology_survives_crash_recovery() {
    let path = scratch("post-split.snapshot");
    let (expected, topology_before) = {
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(3)
            .guest_group_width(1)
            .build()
            .unwrap();
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..96u64 {
            c.put(&format!("key/{i:03}"), i);
        }
        // Two live splits (one stacked on the first child's parent).
        let c1 = store.split_shard(store.hottest_shard()).unwrap();
        store.split_shard(c1 % store.shards()).unwrap();
        assert_eq!(store.shards(), 4);
        assert_eq!(store.topology().version(), 2);
        c.put("post/split", 7);
        store.checkpoint().write_to(&path).unwrap();
        // Post-flush commits must not survive.
        c.put("late", 1);
        (full_scan(&store), store.topology())
    }; // crash
    let recovered = StoreBuilder::new()
        .vip_capacity(1)
        .guest_ports(3)
        .guest_group_width(1)
        .recover(&path)
        .unwrap();
    assert_eq!(recovered.shards(), 4, "post-split shard count restored");
    let topology_after = recovered.topology();
    assert_eq!(topology_after.version(), 2, "topology version restored");
    assert_eq!(topology_after, topology_before, "the split tree survives verbatim");
    // Placement agrees exactly with the pre-crash topology, so every key
    // routes to the shard that actually holds its data.
    let mut c = recovered.client(recovered.admit_vip().unwrap());
    let scanned: Vec<(String, u64)> =
        full_scan(&recovered).into_iter().filter(|(k, _)| k != "late").collect();
    assert_eq!(scanned, expected.into_iter().filter(|(k, _)| k != "late").collect::<Vec<_>>());
    for (key, value) in &scanned {
        assert_eq!(c.get(key), Some(*value), "{key} routes to its post-split shard");
        assert_eq!(
            recovered.shard_of(key),
            topology_before.shard_of(key),
            "{key} placement survives recovery"
        );
    }
    assert_eq!(c.get("late"), None, "post-flush commits are not durable");
    // The recovered store can keep splitting.
    let next = recovered.split_shard(0).unwrap();
    assert_eq!(next, 4);
    assert_eq!(recovered.topology().version(), 3);
    c.put("after/recovery", 9);
    assert_eq!(c.get("after/recovery"), Some(9));
}
