//! The WAL crash battery: op-granular durability between checkpoints.
//!
//! The contract under test is the PR's asymmetric-durability claim:
//!
//! * every commit acknowledged through [`Client::execute_durable`]
//!   (`DurabilityClass::Sync`, a VIP privilege) survives a crash at *any*
//!   later point;
//! * group-committed operations recover to a **consistent prefix** of the
//!   commit order — never a gap, never a phantom, never a torn write;
//! * snapshot + WAL replay together equal an independent `BTreeMap`
//!   oracle at the last durability boundary, with checkpoints interleaved
//!   at arbitrary cadence;
//! * crash damage to the log itself is handled asymmetrically: a torn
//!   tail recovers the valid prefix, mid-log corruption fails closed with
//!   a typed error;
//! * recovery ignores and sweeps orphaned `*.tmp` snapshot files left by
//!   a crash between temp-file write and rename.
//!
//! [`Client::execute_durable`]: asymmetric_progress::store::store::Client::execute_durable

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use asymmetric_progress::store::persist::{PersistError, Persister};
use asymmetric_progress::store::wal::{DurabilityError, Wal, WalConfig};
use asymmetric_progress::store::{Store, StoreBuilder, StoreOp, StoreResp};

/// A scratch *directory* under cargo's per-target tmp dir, wiped clean so
/// stale segments from a previous run never leak into a recovery scan.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("store-wal").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Deterministic flushing: frames hit disk only on `sync()` and
/// checkpoint rotations, so every test knows exactly where its
/// durability boundary is.
fn no_flusher() -> WalConfig {
    WalConfig { background_flusher: false, ..WalConfig::default() }
}

fn builder() -> StoreBuilder {
    StoreBuilder::new().shards(2).vip_capacity(1).guest_ports(2).guest_group_width(1)
}

/// The independent oracle (duplicated from `store_recovery.rs` on
/// purpose: the oracle must not share code with the system under test).
fn oracle_apply(state: &mut BTreeMap<String, u64>, op: &StoreOp) -> StoreResp {
    match op {
        StoreOp::Get(k) => StoreResp::Value(state.get(k).copied()),
        StoreOp::Put(k, v) => StoreResp::Value(state.insert(k.clone(), *v)),
        StoreOp::Remove(k) => StoreResp::Value(state.remove(k)),
        StoreOp::Cas { key, expect, new } => {
            let actual = state.get(key).copied();
            if actual == *expect {
                state.insert(key.clone(), *new);
                StoreResp::Cas { ok: true, actual }
            } else {
                StoreResp::Cas { ok: false, actual }
            }
        }
        StoreOp::Scan { from, to } => StoreResp::Entries(
            state
                .iter()
                .filter(|(k, _)| *from <= **k && **k < *to)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        ),
    }
}

fn decode_op(kind: u8, key: u8, val: u64) -> StoreOp {
    let k = format!("key/{:02}", key % 12);
    match kind % 6 {
        0 | 1 => StoreOp::Put(k, val),
        2 => StoreOp::Get(k),
        3 => StoreOp::Remove(k),
        4 => StoreOp::Cas { key: k, expect: (!val.is_multiple_of(3)).then_some(val / 2), new: val },
        _ => {
            let hi = format!("key/{:02}", (key % 12).saturating_add(val as u8 % 5));
            StoreOp::Scan { from: k, to: hi }
        }
    }
}

fn full_scan(store: &Store) -> Vec<(String, u64)> {
    let mut auditor = store.client(store.admit_guest());
    auditor.scan("", "\u{10ffff}")
}

fn as_entries(state: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    state.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// The acceptance-criteria matrix: a mixed VIP/guest stream killed at
/// every possible point. Every `execute_durable`-acknowledged commit must
/// survive, and (with the background flusher disabled, so the only flush
/// points are the syncs themselves) the recovered state is *exactly* the
/// oracle at the last acknowledged sync — group commits after it are
/// lost whole, never half-applied.
#[test]
fn kill_at_any_point_recovers_every_sync_acknowledged_commit() {
    let stream: Vec<StoreOp> = (0..24u64)
        .map(|i| match i % 4 {
            0 => StoreOp::Put(format!("key/{:02}", i % 7), i + 100),
            1 => StoreOp::Put(format!("key/{:02}", (i + 3) % 7), i + 200),
            2 => StoreOp::Remove(format!("key/{:02}", i % 7)),
            _ => StoreOp::Cas { key: format!("key/{:02}", (i + 1) % 7), expect: None, new: i },
        })
        .collect();
    for kill_at in 0..=stream.len() {
        let dir = scratch_dir(&format!("kill-{kill_at}"));
        let snap = dir.join("store.snapshot");
        let wal_dir = dir.join("wal");
        let mut oracle = BTreeMap::new();
        let mut at_last_sync = BTreeMap::new();
        let mut prefix_states = vec![oracle.clone()];
        {
            let wal = Wal::open(&wal_dir, no_flusher()).expect("fresh wal");
            let store = builder().build_with_wal(Arc::clone(&wal)).expect("sizing");
            let mut vip = store.client(store.admit_vip().expect("first vip"));
            let mut guest = store.client(store.admit_guest());
            for (i, op) in stream.iter().take(kill_at).enumerate() {
                // Every third op is a VIP sync commit; the rest ride the
                // guest group-commit path.
                if i % 3 == 2 {
                    vip.execute_durable(vec![op.clone()]).expect("sync acknowledged");
                } else {
                    guest.execute(vec![op.clone()]);
                }
                oracle_apply(&mut oracle, op);
                prefix_states.push(oracle.clone());
                if i % 3 == 2 {
                    at_last_sync = oracle.clone();
                }
            }
            wal.simulate_crash(); // the kill: buffered group frames die here
        }
        let wal = Wal::open(&wal_dir, no_flusher()).expect("reopen after crash");
        let recovered =
            builder().recover_with_wal(&snap, wal).expect("wal-only recovery (no snapshot yet)");
        let got = full_scan(&recovered);
        // A sync flushes *everything* buffered before it (group frames
        // included), so the recovered state is the oracle at the last
        // acknowledged sync — in particular a consistent prefix.
        assert_eq!(
            got,
            as_entries(&at_last_sync),
            "kill at {kill_at}: recovery must land exactly on the last sync boundary"
        );
        assert!(
            prefix_states.iter().any(|s| as_entries(s) == got),
            "kill at {kill_at}: recovered state is not a prefix of the commit order"
        );
    }
}

/// The group tier alone, background flusher ON: wherever the flush
/// cadence happens to land when the process dies, the recovered state is
/// *some* prefix of the single-threaded commit order — the coalescing
/// window bounds what can be lost, and nothing is ever half-applied.
#[test]
fn group_commits_recover_to_a_consistent_prefix() {
    let dir = scratch_dir("group-prefix");
    let snap = dir.join("store.snapshot");
    let wal_dir = dir.join("wal");
    let mut oracle = BTreeMap::new();
    let mut prefix_states = vec![oracle.clone()];
    {
        let cfg = WalConfig {
            flush_interval: std::time::Duration::from_micros(200),
            max_coalesced_frames: 4,
            ..WalConfig::default()
        };
        let wal = Wal::open(&wal_dir, cfg).expect("fresh wal");
        let store = builder().build_with_wal(Arc::clone(&wal)).expect("sizing");
        let mut guest = store.client(store.admit_guest());
        for i in 0..40u64 {
            let op = StoreOp::Put(format!("key/{:02}", i % 9), i);
            guest.execute(vec![op.clone()]);
            oracle_apply(&mut oracle, &op);
            prefix_states.push(oracle.clone());
        }
        wal.simulate_crash();
    }
    let wal = Wal::open(&wal_dir, no_flusher()).expect("reopen after crash");
    let recovered = builder().recover_with_wal(&snap, wal).expect("recovery");
    let got = full_scan(&recovered);
    assert!(
        prefix_states.iter().any(|s| as_entries(s) == got),
        "recovered state {got:?} is not a prefix of the commit order"
    );
}

/// Crash damage to the log itself, end to end through
/// `recover_with_wal`: a tail torn mid-frame recovers the valid prefix;
/// the *same* damage mid-log (valid frames after it) fails closed with
/// the typed checksum error before a store is ever built.
#[test]
fn torn_tail_recovers_prefix_but_mid_log_corruption_fails_closed() {
    let dir = scratch_dir("tear-vs-corrupt");
    let snap = dir.join("store.snapshot");
    let wal_dir = dir.join("wal");
    {
        let wal = Wal::open(&wal_dir, no_flusher()).expect("fresh wal");
        let store = builder().build_with_wal(Arc::clone(&wal)).expect("sizing");
        let mut vip = store.client(store.admit_vip().expect("vip"));
        for i in 0..6u64 {
            vip.execute_durable(vec![StoreOp::Put(format!("k{i}"), i)]).expect("sync");
        }
        wal.simulate_crash();
    }
    let seg = std::fs::read_dir(&wal_dir)
        .expect("wal dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "apcw"))
        .max()
        .expect("one segment");
    let good = std::fs::read(&seg).expect("segment bytes");

    // Tear: cut into the last frame's checksum. The prefix survives.
    std::fs::write(&seg, &good[..good.len() - 5]).expect("tear tail");
    let wal = Wal::open(&wal_dir, no_flusher()).expect("a torn tail is expected crash damage");
    let recovered = builder().recover_with_wal(&snap, wal).expect("prefix recovery");
    assert_eq!(
        full_scan(&recovered),
        (0..5u64).map(|i| (format!("k{i}"), i)).collect::<Vec<_>>(),
        "the five intact frames survive; the torn sixth is cut off"
    );

    // Corruption: the same-size wound mid-log (frames still decode after
    // it) must fail closed — there is no safe prefix to claim.
    let mut bad = good.clone();
    bad[good.len() / 2] ^= 0x40;
    std::fs::write(&seg, &bad).expect("corrupt mid-log");
    // Wipe the reopened WAL's fresh segments so only the damaged one is
    // scanned (the tear-recovery above re-logged the replayed effects).
    for entry in std::fs::read_dir(&wal_dir).expect("wal dir").flatten() {
        if entry.path() != seg {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    let err = Wal::open(&wal_dir, no_flusher()).expect_err("mid-log corruption must fail closed");
    assert!(
        matches!(err, PersistError::ChecksumMismatch { .. } | PersistError::Corrupt(_)),
        "mid-log corruption gave {err:?}"
    );
}

/// Satellite 3's fault injection: a crash between temp-file write and
/// rename leaves `<snapshot>.<pid>-<seq>.tmp` orphans. Recovery must
/// neither trust them (even when their bytes are a *valid* snapshot) nor
/// trip over them (even when they are garbage) — it sweeps them and
/// recovers from the real snapshot.
#[test]
fn orphaned_tmp_snapshots_are_ignored_and_swept() {
    let dir = scratch_dir("orphan-tmp");
    let snap = dir.join("store.snapshot");
    {
        let store = builder().build().expect("sizing");
        let mut vip = store.client(store.admit_vip().expect("vip"));
        for i in 0..8u64 {
            vip.put(&format!("real/{i}"), i);
        }
        store.checkpoint().write_to(&snap).expect("flush");
    }
    // A garbage orphan (killed mid-write)…
    std::fs::write(dir.join("store.snapshot.4242-1.tmp"), b"half a snapsh").expect("garbage tmp");
    // …and a *well-formed* orphan holding different data (killed after
    // the write, before the rename): valid bytes must not be trusted.
    let decoy = {
        let store = builder().build().expect("sizing");
        store.client(store.admit_guest()).put("decoy/key", 666);
        store.checkpoint().encode()
    };
    std::fs::write(dir.join("store.snapshot.4242-2.tmp"), &decoy).expect("decoy tmp");

    let recovered = builder().recover(&snap).expect("orphans must not break recovery");
    let entries = full_scan(&recovered);
    assert_eq!(entries.len(), 8, "exactly the real snapshot's data");
    assert!(entries.iter().all(|(k, _)| k.starts_with("real/")), "the decoy was not trusted");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "orphans must be swept, found {leftovers:?}");

    // The WAL-attached recovery path sweeps too — including when no
    // snapshot exists at all (death before the first checkpoint).
    let dir2 = scratch_dir("orphan-tmp-fresh");
    let snap2 = dir2.join("store.snapshot");
    std::fs::write(dir2.join("store.snapshot.7-1.tmp"), b"junk").expect("tmp");
    let wal = Wal::open(dir2.join("wal"), no_flusher()).expect("fresh wal");
    let recovered = builder().recover_with_wal(&snap2, wal).expect("fresh store");
    assert!(full_scan(&recovered).is_empty());
    assert!(
        !dir2.join("store.snapshot.7-1.tmp").exists(),
        "the fresh-store path sweeps orphans too"
    );
}

/// Durability is a progress-class privilege, surfaced as typed errors:
/// a store without a WAL has nothing to fsync, and a guest is *denied*
/// synchronous durability (and counted) — the asymmetric contract at the
/// API surface, with the `store_wal_*` series observable through the
/// persister's scrape.
#[test]
fn synchronous_durability_is_a_vip_privilege() {
    // No WAL attached: the VIP path reports NoWal.
    let bare = builder().build().expect("sizing");
    let mut vip = bare.client(bare.admit_vip().expect("vip"));
    assert_eq!(vip.execute_durable(vec![StoreOp::Put("k".into(), 1)]), Err(DurabilityError::NoWal));

    let dir = scratch_dir("vip-privilege");
    let wal = Wal::open(dir.join("wal"), no_flusher()).expect("fresh wal");
    let store = builder().build_with_wal(Arc::clone(&wal)).expect("sizing");
    let persister = Persister::new(dir.join("store.snapshot")).with_wal(Arc::clone(&wal));

    let mut guest = store.client(store.admit_guest());
    assert_eq!(
        guest.execute_durable(vec![StoreOp::Put("g".into(), 1)]),
        Err(DurabilityError::GuestTier),
        "synchronous durability is asymmetric by design"
    );
    let mut vip = store.client(store.admit_vip().expect("vip"));
    let resps = vip.execute_durable(vec![StoreOp::Put("v".into(), 2)]).expect("sync ack");
    assert_eq!(resps, vec![StoreResp::Value(None)]);
    guest.put("g", 3); // a group append, for the class-labelled counter

    persister.persist(&store).expect("checkpoint");
    let snap = persister.scrape();
    assert_eq!(snap.value("store_wal_sync_denied_total", &[]), Some(1));
    assert_eq!(snap.value("store_wal_appends_total", &[("class", "sync")]), Some(1));
    assert!(snap.value("store_wal_appends_total", &[("class", "group")]).unwrap_or(0) >= 1);
    assert!(snap.value("store_wal_flushes_total", &[]).unwrap_or(0) >= 1);
    assert!(
        snap.value("store_wal_rotations_total", &[]).unwrap_or(0) >= 1,
        "the checkpoint seal rotates the log"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: random workload, checkpoints at random
    /// cadence through a WAL-coupled persister, syncs at random cadence,
    /// then a crash that discards everything since the last flush point.
    /// Snapshot + WAL replay must equal the oracle at the last durability
    /// boundary (the later of last checkpoint / last sync) — and the
    /// recovered store keeps serving, response for response.
    #[test]
    fn snapshot_plus_wal_replay_matches_oracle(
        encoded in proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 1..50),
        ckpt_every in 2usize..9,
        sync_every in 2usize..7,
        case in 0u64..1_000_000,
    ) {
        let dir = scratch_dir(&format!("oracle-{case}-{ckpt_every}-{sync_every}"));
        let snap_path = dir.join("store.snapshot");
        let wal_dir = dir.join("wal");
        let mut oracle = BTreeMap::new();
        let mut at_boundary = BTreeMap::new();
        {
            let wal = Wal::open(&wal_dir, no_flusher()).expect("fresh wal");
            let store = builder().build_with_wal(Arc::clone(&wal)).expect("sizing");
            let persister = Persister::new(&snap_path).with_wal(Arc::clone(&wal));
            let mut vip = store.client(store.admit_vip().expect("first vip"));
            let mut guest = store.client(store.admit_guest());
            for (i, (kind, key, val)) in encoded.iter().enumerate() {
                let op = decode_op(*kind, *key, *val);
                let got = if i % sync_every == 0 {
                    vip.execute_durable(vec![op.clone()])
                        .expect("sync acknowledged")
                        .pop()
                        .expect("one response")
                } else {
                    guest.execute(vec![op.clone()]).pop().expect("one response")
                };
                let want = oracle_apply(&mut oracle, &op);
                prop_assert_eq!(&got, &want, "pre-crash op {} diverged", i);
                if i % sync_every == 0 {
                    // The fsync covers every frame buffered up to here.
                    at_boundary = oracle.clone();
                }
                if (i + 1) % ckpt_every == 0 {
                    // The checkpoint covers every *commit* up to here,
                    // flushed or not.
                    persister.persist(&store).expect("cadence checkpoint");
                    at_boundary = oracle.clone();
                }
            }
            wal.simulate_crash();
        }
        let wal = Wal::open(&wal_dir, no_flusher()).expect("reopen after crash");
        let recovered = builder()
            .recover_with_wal(&snap_path, wal)
            .expect("snapshot + wal replay");
        prop_assert_eq!(
            full_scan(&recovered),
            as_entries(&at_boundary),
            "recovered state == oracle at the last durability boundary"
        );
        // Life after recovery: the same stream replays against the
        // recovered store and the boundary-time oracle, response for
        // response — reads, failed CAS and scans included.
        let mut client = recovered.client(recovered.admit_vip().expect("first vip"));
        for (i, (kind, key, val)) in encoded.iter().enumerate() {
            let op = decode_op(*kind, *key, *val);
            let got = client.execute(vec![op.clone()]).pop().expect("one response");
            let want = oracle_apply(&mut at_boundary, &op);
            prop_assert_eq!(&got, &want, "post-recovery op {} diverged", i);
        }
    }
}
