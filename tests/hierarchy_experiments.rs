//! Experiments E3 + E4: the (n,x)-liveness hierarchy (Theorems 2 and 3,
//! Corollary 1) and the Theorem 1 / §3.5 starvation demonstrations.

use asymmetric_progress::hierarchy::{corollary1, theorem1, theorem2, theorem3};

/// E3, constructive half: an `(x+1,x)`-live object solves wait-free
/// consensus for `x+1` processes — exhaustively verified for x = 0, 1, 2.
#[test]
fn hierarchy_constructive_sweep() {
    for x in 0..=2 {
        let report = theorem3::theorem3_constructive(x, 1, 1);
        assert!(report.verified(), "x={x}: {report}");
    }
}

/// E3, negative half: an `(x+2,x)`-live object leaves two guests starving
/// under the crash-and-lockstep adversary — machine-checked certificates.
#[test]
fn hierarchy_negative_sweep() {
    for x in 0..=4 {
        let cert = theorem3::theorem3_negative(x, 1).unwrap_or_else(|| {
            panic!("x={x}: expected a starvation certificate");
        });
        assert_eq!(cert.live_forever.len(), 2);
        assert!(cert.loop_periods >= 1);
    }
}

/// E3: the full hierarchy table — every row verified in both directions,
/// consensus numbers matching Theorem 3.
#[test]
fn hierarchy_table_consistent() {
    let rows = corollary1::hierarchy_table(2, 1);
    for row in &rows {
        assert_eq!(row.consensus_number, row.x + 1);
        assert!(row.constructive_verified && row.negative_certified, "{row}");
        assert!(row.states_explored > 0);
    }
    // Rows are strictly increasing in consensus number.
    for pair in rows.windows(2) {
        assert!(pair[0].consensus_number < pair[1].consensus_number);
    }
}

/// E3: isolation-window robustness — the certificates exist regardless of
/// how long "long enough in isolation" is.
#[test]
fn negative_direction_robust_to_window() {
    for window in [1u8, 2, 4] {
        let report = theorem2::theorem2_scenario(4, 2, window);
        assert!(report.starves(), "window {window}: {report}");
    }
}

/// E4: Theorem 1's starvation content — the bivalence-preserving adversary
/// keeps the register-based consensus undecided; no process is wait-free.
#[test]
fn theorem1_adversary_starves() {
    let report = theorem1::theorem1_starvation(25);
    assert!(report.starved(), "{report}");
}

/// E4, boundary: the complement facts that sharpen the impossibility — a
/// lone guest decides, and live wait-free members unblock everyone.
#[test]
fn impossibility_boundaries() {
    assert!(theorem2::lone_guest_decides(4, 1));
    assert!(theorem2::theorem2_complement(4, 1, 1));
    assert!(theorem2::theorem2_complement(5, 4, 1));
}

/// E4, §3.5 variant: Common2 objects do not help — Test&Set solves exactly
/// 2-process consensus; the naive 3-process protocol breaks agreement
/// (found exhaustively), so the "second strongest object" reasoning stands.
#[test]
fn common2_boundary() {
    use asymmetric_progress::common2::two_consensus::{
        naive_three_process_system, tas_consensus_system,
    };
    use asymmetric_progress::model::explore::{Agreement, ExploreConfig, Explorer};

    let explorer = Explorer::new(ExploreConfig::default());
    let two = explorer.explore(&tas_consensus_system(2), &[&Agreement]);
    assert!(two.ok(), "2-process TAS consensus is correct");
    let three = explorer.explore(&naive_three_process_system(), &[&Agreement]);
    assert!(!three.ok(), "3-process naive extension must fail");
}
