//! Experiment E2: the group-based consensus (Figure 5 / Theorem 6) —
//! the asymmetric termination matrix, exhaustively at small (n, x) and
//! under real threads at larger n.

use std::sync::Mutex;

use asymmetric_progress::core::group::model::group_system;
use asymmetric_progress::core::group::{GroupConsensus, GroupLayout};
use asymmetric_progress::model::explore::{
    Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn,
};
use asymmetric_progress::model::fairness::{fair_termination, StateGraph};
use asymmetric_progress::model::history::{assert_consensus, ProposeRecord};
use asymmetric_progress::model::{ProcessSet, Value};

/// The termination matrix of the asymmetric progress condition: for every
/// participation pattern of 3 singleton groups, if the first participating
/// group has a correct process, all correct participants decide — checked
/// under every fair schedule.
#[test]
fn termination_matrix_3x1_exhaustive() {
    let layout = GroupLayout::new(3, 1).unwrap();
    // All non-empty participation patterns over 3 processes.
    for mask in 1u8..8 {
        let participants: ProcessSet =
            (0..3).filter(|i| mask & (1 << i) != 0).collect::<Vec<usize>>().into_iter().collect();
        let (sys, _) = group_system(layout, participants);
        let graph = StateGraph::build(&sys, 3_000_000);
        assert!(!graph.truncated(), "mask {mask:03b} truncated");
        let verdict = fair_termination(&graph, |pid| participants.contains(pid));
        assert!(verdict.holds(), "mask {mask:03b}: {verdict:?}");
    }
}

/// Agreement + validity for every participation pattern at (3,1).
#[test]
fn safety_matrix_3x1_exhaustive() {
    let layout = GroupLayout::new(3, 1).unwrap();
    for mask in 1u8..8 {
        let participants: ProcessSet =
            (0..3).filter(|i| mask & (1 << i) != 0).collect::<Vec<usize>>().into_iter().collect();
        let proposals: Vec<Value> =
            participants.iter().map(|p| Value::Num(100 + p.index() as u32)).collect();
        let (sys, _) = group_system(layout, participants);
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(3_000_000));
        let result = explorer.explore(&sys, &[&Agreement, &ValidityIn::new(proposals), &NoFaults]);
        assert!(result.ok(), "mask {mask:03b}: {:?}", result.violations.first());
    }
}

/// (4,2): two groups of two. Full participation gets an exhaustive *safety*
/// check (agreement at every reachable state); the fair-termination graph
/// is only built for the suffix pattern — the full-participation state
/// graph is out of reach for an explicit-state build (the safety DFS
/// memoizes and discards, the graph must keep every state).
#[test]
fn safety_4x2_full_participation_exhaustive() {
    let layout = GroupLayout::new(4, 2).unwrap();
    let (sys, _) = group_system(layout, ProcessSet::first_n(4));
    // 1.2M distinct states keeps the memoization within CI memory while the
    // sibling matrix tests run in parallel; agreement is checked at every
    // visited state.
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(1_200_000));
    let result = explorer.explore(&sys, &[&Agreement, &NoFaults]);
    assert!(result.ok(), "{:?}", result.violations.first());
}

#[test]
fn termination_4x2_suffix_exhaustive() {
    let layout = GroupLayout::new(4, 2).unwrap();
    let participants = ProcessSet::from_indices([2, 3]);
    let (sys, _) = group_system(layout, participants);
    let explorer = Explorer::new(ExploreConfig::default().with_max_states(1_000_000));
    let result = explorer.explore(&sys, &[&Agreement, &NoFaults]);
    assert!(result.ok(), "{:?}", result.violations.first());
    let graph = StateGraph::build(&sys, 1_000_000);
    let verdict = fair_termination(&graph, |pid| participants.contains(pid));
    assert!(verdict.holds(), "{verdict:?}");
}

/// The paper's fairness remark: "for any process, there is an asynchrony and
/// failure pattern in which the value proposed by that process is decided."
/// Model form: run each process solo; its value wins.
#[test]
fn every_process_can_win() {
    let layout = GroupLayout::new(4, 2).unwrap();
    for pid in 0..4 {
        let (sys, _) = group_system(layout, ProcessSet::from_indices([pid]));
        let mut runner = asymmetric_progress::model::Runner::new(sys);
        runner.run_until_terminated(
            &asymmetric_progress::model::Schedule::solo(
                asymmetric_progress::model::ProcessId::new(pid),
                1,
            ),
            1000,
        );
        assert_eq!(
            runner.system().decision(asymmetric_progress::model::ProcessId::new(pid)),
            Some(Value::Num(100 + pid as u32)),
            "p{pid}'s value must win when it runs alone"
        );
    }
}

/// Real threads, larger n: all-participate and suffix-participation runs
/// agree and terminate across (n, x) shapes.
#[test]
fn real_threads_shape_sweep() {
    for (n, x) in [(4usize, 2usize), (6, 2), (6, 3), (8, 4), (9, 3)] {
        let cons: GroupConsensus<u64> = GroupConsensus::new(n, x).unwrap();
        let records = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 0..n {
                let cons = &cons;
                let records = &records;
                s.spawn(move || {
                    let proposed = (n * 100 + pid) as u64;
                    let returned = cons.propose(pid, proposed).unwrap();
                    records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                });
            }
        });
        let records = records.into_inner().unwrap();
        assert_eq!(records.len(), n, "(n,x)=({n},{x})");
        assert_consensus(&records);
    }
}

/// Real threads: only the last group participates — the asymmetric condition
/// still guarantees termination (y = m has a correct participant).
#[test]
fn real_threads_last_group_only() {
    for _ in 0..20 {
        let n = 6;
        let cons: GroupConsensus<u64> = GroupConsensus::new(n, 2).unwrap();
        let records = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 4..6 {
                let cons = &cons;
                let records = &records;
                s.spawn(move || {
                    let returned = cons.propose(pid, pid as u64).unwrap();
                    records.lock().unwrap().push(ProposeRecord {
                        pid,
                        proposed: pid as u64,
                        returned,
                    });
                });
            }
        });
        let records = records.into_inner().unwrap();
        assert_eq!(records.len(), 2);
        assert_consensus(&records);
        // Validity: the decided value comes from group 3.
        assert!(records[0].returned == 4 || records[0].returned == 5);
    }
}
