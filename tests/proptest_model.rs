//! Property-based tests: consensus safety under *arbitrary* schedules and
//! crash patterns, for every protocol in the repository's model form.

use proptest::prelude::*;

use asymmetric_progress::core::arbiter::model::arbiter_system;
use asymmetric_progress::core::consensus::model::register_consensus_system;
use asymmetric_progress::core::group::model::group_system;
use asymmetric_progress::core::group::GroupLayout;
use asymmetric_progress::model::programs::ProposeProgram;
use asymmetric_progress::model::{
    ProcessId, ProcessSet, Runner, Schedule, ScheduleEvent, SystemBuilder, Value,
};

/// An arbitrary schedule over `n` processes: steps with occasional crashes.
fn schedule_strategy(n: usize, len: usize) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((0..n, prop::bool::weighted(0.03)), len).prop_map(move |events| {
        let mut crashed = Vec::new();
        events
            .into_iter()
            .map(|(pid, crash)| {
                if crash && !crashed.contains(&pid) && crashed.len() + 1 < n {
                    crashed.push(pid);
                    ScheduleEvent::Crash(ProcessId::new(pid))
                } else {
                    ScheduleEvent::Step(ProcessId::new(pid))
                }
            })
            .collect()
    })
}

fn check_agreement_validity(
    decisions: &[(ProcessId, Value)],
    valid: impl Fn(Value) -> bool,
) -> Result<(), TestCaseError> {
    for pair in decisions.windows(2) {
        prop_assert_eq!(pair[0].1, pair[1].1, "agreement violated");
    }
    for (pid, v) in decisions {
        prop_assert!(valid(*v), "validity violated at {}: {}", pid, v);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (y,x)-live base objects: agreement + validity under arbitrary
    /// schedules and crashes, for every x.
    #[test]
    fn live_consensus_safety(
        schedule in schedule_strategy(4, 120),
        x in 0usize..=4,
    ) {
        let mut b = SystemBuilder::new(4);
        let cons = b.add_live_consensus(ProcessSet::first_n(4), ProcessSet::first_n(x.min(4)), 1);
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let mut runner = Runner::new(sys);
        runner.run(&schedule);
        check_agreement_validity(&runner.system().decisions(), |v| {
            matches!(v, Value::Num(k) if k < 4)
        })?;
        prop_assert!(!runner.system().any_faulted());
    }

    /// Register-based round consensus: safety under arbitrary schedules.
    #[test]
    fn register_consensus_safety(schedule in schedule_strategy(3, 400)) {
        let (sys, _) = register_consensus_system(&[Some(0), Some(1), Some(2)], 8);
        let mut runner = Runner::new(sys);
        runner.run(&schedule);
        check_agreement_validity(&runner.system().decisions(), |v| {
            matches!(v, Value::Num(k) if k < 3)
        })?;
        prop_assert!(!runner.system().any_faulted());
    }

    /// Group-based consensus (Figure 5): safety under arbitrary schedules,
    /// crashes and participation patterns, across layouts.
    #[test]
    fn group_consensus_safety(
        schedule in schedule_strategy(4, 500),
        mask in 1u8..16,
        x in 1usize..=4,
    ) {
        let layout = GroupLayout::new(4, x).unwrap();
        let participants: ProcessSet =
            (0..4usize).filter(|i| mask & (1 << i) != 0).collect();
        let (sys, _) = group_system(layout, participants);
        let mut runner = Runner::new(sys);
        runner.run(&schedule);
        check_agreement_validity(&runner.system().decisions(), |v| {
            participants.iter().any(|p| v == Value::Num(100 + p.index() as u32))
        })?;
        prop_assert!(!runner.system().any_faulted());
    }

    /// The arbiter (Figure 4): agreement + validity under arbitrary
    /// schedules, crashes and splits.
    #[test]
    fn arbiter_safety(
        schedule in schedule_strategy(4, 200),
        owner_mask in 1u8..15,
    ) {
        let owners: ProcessSet = (0..4usize).filter(|i| owner_mask & (1 << i) != 0).collect();
        let guests = ProcessSet::first_n(4).difference(owners);
        let (sys, _) = arbiter_system(4, owners, guests);
        let mut runner = Runner::new(sys);
        runner.run(&schedule);
        let decisions = runner.system().decisions();
        for pair in decisions.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].1, "arbiter agreement violated");
        }
        // Validity: the winning camp has a participant (both camps are
        // non-empty by construction of the masks — owner wins need owners,
        // guest wins need guests).
        if let Some((_, v)) = decisions.first() {
            let owner_win = *v == Value::Num(0);
            let camp_nonempty = if owner_win { !owners.is_empty() } else { !guests.is_empty() };
            prop_assert!(camp_nonempty, "winning camp has no participant");
        }
        prop_assert!(!runner.system().any_faulted());
    }

    /// Solo runs always decide own value, for any (y,x)-live object and any
    /// window — obstruction-free termination, the possibility half.
    #[test]
    fn solo_guest_always_decides(
        window in 0u8..6,
        pid in 0usize..4,
        steps in 16usize..64,
    ) {
        let mut b = SystemBuilder::new(4);
        let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(4), window);
        let sys = b.build(|p| ProposeProgram::new(cons, Value::Num(p.index() as u32)));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(pid), steps.max(window as usize + 3)));
        prop_assert_eq!(
            runner.system().decision(ProcessId::new(pid)),
            Some(Value::Num(pid as u32))
        );
    }
}
