//! Property tests: the sharded store against a single-threaded `BTreeMap`
//! oracle.
//!
//! The oracle reimplements the operational semantics independently (it does
//! not call into `apc-store`), so these properties check the whole
//! distributed pipeline — router planning, per-shard batching, the
//! universal-log commit path, response reassembly — against the obvious
//! sequential meaning of the operations.

use std::collections::BTreeMap;

use proptest::prelude::*;

use asymmetric_progress::store::{
    ElasticityPolicy, ShardTopology, StoreBuilder, StoreOp, StoreResp,
};

/// The independent oracle: the sequential meaning of one operation.
fn oracle_apply(state: &mut BTreeMap<String, u64>, op: &StoreOp) -> StoreResp {
    match op {
        StoreOp::Get(k) => StoreResp::Value(state.get(k).copied()),
        StoreOp::Put(k, v) => StoreResp::Value(state.insert(k.clone(), *v)),
        StoreOp::Remove(k) => StoreResp::Value(state.remove(k)),
        StoreOp::Cas { key, expect, new } => {
            let actual = state.get(key).copied();
            if actual == *expect {
                state.insert(key.clone(), *new);
                StoreResp::Cas { ok: true, actual }
            } else {
                StoreResp::Cas { ok: false, actual }
            }
        }
        StoreOp::Scan { from, to } => {
            let mut entries: Vec<(String, u64)> = state
                .iter()
                .filter(|(k, _)| *from <= **k && **k < *to)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            entries.sort();
            StoreResp::Entries(entries)
        }
    }
}

/// Decodes a generated `(kind, key, val)` triple into an operation over a
/// small key space (collisions across clients are the point).
fn decode_op(kind: u8, key: u8, val: u64) -> StoreOp {
    let k = format!("key/{:02}", key % 12);
    match kind % 6 {
        0 | 1 => StoreOp::Put(k, val),
        2 => StoreOp::Get(k),
        3 => StoreOp::Remove(k),
        4 => StoreOp::Cas { key: k, expect: (!val.is_multiple_of(3)).then_some(val / 2), new: val },
        _ => {
            let hi = format!("key/{:02}", (key % 12).saturating_add(val as u8 % 5));
            StoreOp::Scan { from: k, to: hi }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op sequences through a single client match the oracle
    /// response-for-response, at several shard counts.
    #[test]
    fn sequential_ops_match_oracle(
        shards in 1usize..4,
        encoded in proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 1..60),
    ) {
        let store = StoreBuilder::new()
            .shards(shards)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let mut client = store.client(store.admit_vip().expect("first vip"));
        let mut oracle = BTreeMap::new();
        for (i, (kind, key, val)) in encoded.iter().enumerate() {
            let op = decode_op(*kind, *key, *val);
            let got = client.execute(vec![op.clone()]).pop().expect("one response");
            let want = oracle_apply(&mut oracle, &op);
            prop_assert_eq!(
                &got, &want,
                "op {} ({:?}) diverged at {} shards", i, op, shards
            );
        }
        // Terminal full-state check: a store-wide scan equals the oracle.
        let all = client.execute(vec![StoreOp::Scan { from: String::new(), to: "z".into() }]);
        let want: Vec<(String, u64)> =
            oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(&all[0], &StoreResp::Entries(want));
    }

    /// Batching transparency: splitting the same op stream into arbitrary
    /// batch boundaries yields exactly the responses of one-op-at-a-time
    /// execution.
    #[test]
    fn batching_is_response_transparent(
        encoded in proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 1..40),
        batch_seed in 0u64..1000,
    ) {
        let ops: Vec<StoreOp> =
            encoded.iter().map(|(k, key, v)| decode_op(*k, *key, *v)).collect();

        let run = |batches: Vec<Vec<StoreOp>>| -> Vec<StoreResp> {
            let store = StoreBuilder::new()
                .shards(2)
                .vip_capacity(1)
                .guest_ports(2)
                .guest_group_width(1)
                .build()
                .expect("valid sizing");
            let mut client = store.client(store.admit_vip().expect("first vip"));
            batches.into_iter().flat_map(|b| client.execute(b)).collect()
        };

        let singles = run(ops.iter().cloned().map(|op| vec![op]).collect());
        // Deterministic pseudo-random batch boundaries from the seed.
        let mut batches: Vec<Vec<StoreOp>> = Vec::new();
        let mut s = batch_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut it = ops.iter().cloned().peekable();
        while it.peek().is_some() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let take = 1 + (s % 5) as usize;
            batches.push(it.by_ref().take(take).collect());
        }
        let batched = run(batches);
        prop_assert_eq!(singles, batched);
    }

    /// Concurrent clients on disjoint key spaces: the final store equals
    /// the union of the per-client oracles (no lost or phantom writes
    /// across ports, shards, or progress classes).
    #[test]
    fn concurrent_disjoint_clients_match_union_oracle(
        encoded in proptest::collection::vec((0u8..5, 0u8..12, 0u64..16), 4..40),
        clients in 2usize..5,
    ) {
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(1)
            .guest_ports(3)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let tickets: Vec<_> = (0..clients)
            .map(|i| {
                if i == 0 {
                    store.admit_vip().expect("first vip")
                } else {
                    store.admit_guest()
                }
            })
            .collect();

        // Client c gets every c-th op, prefixed into its own key space.
        let streams: Vec<Vec<StoreOp>> = (0..clients)
            .map(|c| {
                encoded
                    .iter()
                    .skip(c)
                    .step_by(clients)
                    .map(|(kind, key, val)| {
                        // Only key-addressed ops (kinds 0..5 exclude scans).
                        match decode_op(*kind, *key, *val) {
                            StoreOp::Put(k, v) => StoreOp::Put(format!("c{c}/{k}"), v),
                            StoreOp::Get(k) => StoreOp::Get(format!("c{c}/{k}")),
                            StoreOp::Remove(k) => StoreOp::Remove(format!("c{c}/{k}")),
                            StoreOp::Cas { key, expect, new } => {
                                StoreOp::Cas { key: format!("c{c}/{key}"), expect, new }
                            }
                            scan => scan,
                        }
                    })
                    .filter(|op| !matches!(op, StoreOp::Scan { .. }))
                    .collect()
            })
            .collect();

        std::thread::scope(|s| {
            for (c, stream) in streams.iter().enumerate() {
                let store = &store;
                let ticket = tickets[c];
                s.spawn(move || {
                    let mut client = store.client(ticket);
                    for op in stream {
                        let _ = client.execute(vec![op.clone()]);
                    }
                });
            }
        });

        // Union oracle over the same disjoint streams.
        let mut oracle = BTreeMap::new();
        for stream in &streams {
            for op in stream {
                let _ = oracle_apply(&mut oracle, op);
            }
        }
        let mut auditor = store.client(store.admit_guest());
        let scanned = auditor.scan("", "z");
        let want: Vec<(String, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(scanned, want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Live splits are semantically invisible: random op sequences with
    /// random split points interleaved still match the oracle
    /// response-for-response, and the terminal scan equals the oracle.
    #[test]
    fn sequential_ops_match_oracle_across_splits(
        shards in 1usize..3,
        encoded in proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 8..60),
        split_points in proptest::collection::vec((0usize..60, 0usize..8), 1..4),
    ) {
        let store = StoreBuilder::new()
            .shards(shards)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let mut client = store.client(store.admit_vip().expect("first vip"));
        let mut oracle = BTreeMap::new();
        for (i, (kind, key, val)) in encoded.iter().enumerate() {
            for &(at, target) in &split_points {
                if at == i {
                    // Split an arbitrary existing shard mid-stream.
                    let victim = target % store.shards();
                    let child = store.split_shard(victim).expect("valid shard id");
                    prop_assert_eq!(child, store.shards() - 1, "splits append");
                }
            }
            let op = decode_op(*kind, *key, *val);
            let got = client.execute(vec![op.clone()]).pop().expect("one response");
            let want = oracle_apply(&mut oracle, &op);
            prop_assert_eq!(&got, &want, "op {} ({:?}) diverged post-split", i, op);
        }
        let all = client.execute(vec![StoreOp::Scan { from: String::new(), to: "z".into() }]);
        let want: Vec<(String, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(&all[0], &StoreResp::Entries(want));
        // Audit: per-shard stats cover exactly the oracle's keys.
        let entries: u64 = store.snapshot_stats().iter().map(|d| d.entries).sum();
        prop_assert_eq!(entries, oracle.len() as u64);
    }

    /// Topology churn is semantically invisible: random op sequences with
    /// random **splits and merges** interleaved still match the oracle
    /// response-for-response, and the terminal scan equals the oracle.
    /// Merge points pick any structurally eligible child at that moment
    /// (skipped when none exists), so long runs repeatedly grow and shrink
    /// the same subtrees.
    #[test]
    fn sequential_ops_match_oracle_across_splits_and_merges(
        shards in 1usize..3,
        encoded in proptest::collection::vec((0u8..6, 0u8..12, 0u64..16), 8..60),
        churn_points in proptest::collection::vec((0usize..60, 0usize..8, 0u8..2), 1..6),
    ) {
        let store = StoreBuilder::new()
            .shards(shards)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let mut client = store.client(store.admit_vip().expect("first vip"));
        let mut oracle = BTreeMap::new();
        let mut merges = 0usize;
        for (i, (kind, key, val)) in encoded.iter().enumerate() {
            for &(at, target, merge) in &churn_points {
                if at != i {
                    continue;
                }
                if merge == 1 {
                    // Merge any structurally eligible child, if one exists.
                    let topology = store.topology();
                    let candidates: Vec<usize> =
                        (0..topology.shards()).filter(|&s| topology.check_merge(s).is_ok()).collect();
                    if !candidates.is_empty() {
                        let victim = candidates[target % candidates.len()];
                        let parent = store.merge_shard(victim).expect("eligible candidate");
                        let after = store.topology();
                        prop_assert_eq!(after.node(victim).parent, Some(parent as u32));
                        merges += 1;
                    }
                } else {
                    // Split an arbitrary live shard mid-stream.
                    let topology = store.topology();
                    let live: Vec<usize> =
                        (0..topology.shards()).filter(|&s| topology.is_live(s)).collect();
                    let victim = live[target % live.len()];
                    let child = store.split_shard(victim).expect("live shard splits");
                    prop_assert_eq!(child, store.shards() - 1, "splits append");
                }
            }
            let op = decode_op(*kind, *key, *val);
            let got = client.execute(vec![op.clone()]).pop().expect("one response");
            let want = oracle_apply(&mut oracle, &op);
            prop_assert_eq!(&got, &want, "op {} ({:?}) diverged under churn", i, op);
        }
        let all = client.execute(vec![StoreOp::Scan { from: String::new(), to: "z".into() }]);
        let want: Vec<(String, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(&all[0], &StoreResp::Entries(want));
        // Audit: live-shard stats cover exactly the oracle's keys, and
        // retired shards drained to empty.
        let topology = store.topology();
        let stats = store.snapshot_stats();
        let entries: u64 = stats.iter().map(|d| d.entries).sum();
        prop_assert_eq!(entries, oracle.len() as u64);
        for (s, digest) in stats.iter().enumerate() {
            if !topology.is_live(s) {
                prop_assert_eq!(digest.entries, 0, "tombstone {} must be empty", s);
            }
        }
        let _ = merges;
    }

    /// The round-trip (minimal-disruption inverse) property: starting from
    /// any split history, split any live shard and immediately merge the
    /// child back — every key's placement is exactly what it was before
    /// the split, over the whole keyset.
    #[test]
    fn split_then_merge_restores_the_parents_placement(
        roots in 1usize..5,
        prior_splits in proptest::collection::vec(0usize..16, 0..5),
        victim_pick in 0usize..16,
        raw_keys in proptest::collection::vec((0u8..26, 0u64..4096), 16..64),
    ) {
        let keys: Vec<String> = raw_keys
            .iter()
            .map(|(prefix, n)| format!("{}/{n:04}", (b'a' + prefix) as char))
            .collect();
        let mut topology = ShardTopology::fresh(roots);
        for target in prior_splits {
            let (bumped, _) = topology.split(target % topology.shards());
            topology = bumped;
        }
        let live: Vec<usize> =
            (0..topology.shards()).filter(|&s| topology.is_live(s)).collect();
        let victim = live[victim_pick % live.len()];
        let before: Vec<usize> = keys.iter().map(|k| topology.shard_of(k)).collect();
        let (split_topo, child) = topology.split(victim);
        let (merged, parent) = split_topo.merge(child).expect("a fresh child is eligible");
        prop_assert_eq!(parent, victim);
        prop_assert_eq!(merged.live_shards(), topology.live_shards());
        for (key, &was) in keys.iter().zip(&before) {
            prop_assert_eq!(
                merged.shard_of(key), was,
                "{} must route exactly as before the split", key
            );
        }
        // And unwinding a whole stack restores the fresh roots exactly.
        let mut unwound = merged;
        loop {
            let candidate =
                (0..unwound.shards()).find(|&s| unwound.check_merge(s).is_ok());
            match candidate {
                Some(s) => unwound = unwound.merge(s).expect("eligible").0,
                None => break,
            }
        }
        prop_assert_eq!(unwound.live_shards(), roots, "every split unwinds");
        let fresh = ShardTopology::fresh(roots);
        for key in &keys {
            prop_assert_eq!(unwound.shard_of(key), fresh.shard_of(key));
        }
    }

    /// The minimal-disruption property of rendezvous routing: across any
    /// sequence of splits, a key's placement changes **only** at the split
    /// of its current shard, and it moves **only** to the freshly created
    /// shard. Every other placement is untouched.
    #[test]
    fn rendezvous_splits_are_minimally_disruptive(
        roots in 1usize..6,
        splits in proptest::collection::vec(0usize..16, 1..8),
        raw_keys in proptest::collection::vec((0u8..26, 0u64..4096), 16..64),
    ) {
        let keys: Vec<String> = raw_keys
            .iter()
            .map(|(prefix, n)| format!("{}/{n:04}", (b'a' + prefix) as char))
            .collect();
        let mut topology = ShardTopology::fresh(roots);
        for target in splits {
            let victim = target % topology.shards();
            let before: Vec<usize> = keys.iter().map(|k| topology.shard_of(k)).collect();
            let (bumped, child) = topology.split(victim);
            prop_assert_eq!(child, topology.shards(), "split ids are dense and appended");
            prop_assert_eq!(bumped.version(), topology.version() + 1);
            for (key, &was) in keys.iter().zip(&before) {
                let now = bumped.shard_of(key);
                if now != was {
                    prop_assert_eq!(now, child, "{} may only move to the new shard", key);
                    prop_assert_eq!(was, victim, "{} may only leave the split shard", key);
                }
            }
            topology = bumped;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The elastic driver's report under **concurrent** topology churn:
    /// guest committers keep the policy engine ticking while manual splits
    /// and merges race the driver's own reconfigurations. Afterwards the
    /// window counters, the live-shard view, and the wait-free scrape must
    /// tell one consistent story — every reconfiguration, whoever initiated
    /// it, is exactly one version bump, one event-counter bump, and (for a
    /// merge) one adoption.
    #[test]
    fn elastic_report_and_scrape_stay_consistent_under_churn(
        clients in 2usize..4,
        ops_per_client in 16usize..48,
        churn in proptest::collection::vec((0u8..2, 0usize..8), 1..5),
    ) {
        let store = StoreBuilder::new()
            .shards(4)
            .vip_capacity(1)
            .guest_ports(4)
            .guest_group_width(2)
            .elastic(ElasticityPolicy {
                evaluate_every: 4,
                min_window: 8,
                cooldown: 16,
                ..ElasticityPolicy::default()
            })
            .build()
            .expect("valid sizing");
        let tickets: Vec<_> = (0..clients).map(|_| store.admit_guest()).collect();
        let mut manual = 0u64;
        std::thread::scope(|s| {
            for (c, ticket) in tickets.iter().enumerate() {
                let store = &store;
                s.spawn(move || {
                    let mut client = store.client(*ticket);
                    for step in 0..ops_per_client {
                        client.put(&format!("c{c}/k{:02}", step % 8), step as u64);
                    }
                });
            }
            // Manual churn racing both the committers and the driver. A
            // candidate picked from a topology snapshot may be gone (the
            // driver got there first) — a rejected reconfig is fine, it
            // just must not be *miscounted*.
            for &(merge, target) in &churn {
                let topology = store.topology();
                if merge == 1 {
                    let candidates: Vec<usize> = (0..topology.shards())
                        .filter(|&sh| topology.check_merge(sh).is_ok())
                        .collect();
                    if let Some(&victim) = candidates.get(target % candidates.len().max(1)) {
                        if store.merge_shard(victim).is_ok() {
                            manual += 1;
                        }
                    }
                } else {
                    let live: Vec<usize> =
                        (0..topology.shards()).filter(|&sh| topology.is_live(sh)).collect();
                    if store.split_shard(live[target % live.len()]).is_ok() {
                        manual += 1;
                    }
                }
                std::thread::yield_now();
            }
        });

        let report = store.elastic_report().expect("driver configured");
        let topology = store.topology();
        let snap = store.scrape();

        // Every reconfiguration — manual or the driver's — bumped the
        // version exactly once and landed in the event counters.
        let splits = snap.value("store_reconfigs_total", &[("kind", "split")]).expect("series");
        let merges = snap.value("store_reconfigs_total", &[("kind", "merge")]).expect("series");
        let adopts = snap.value("store_reconfigs_total", &[("kind", "adopt")]).expect("series");
        prop_assert_eq!(splits + merges, topology.version(), "reconfig events == version bumps");
        prop_assert_eq!(adopts, merges, "every merge adopts the child's keys into the parent");
        prop_assert_eq!(
            manual + report.splits + report.merges,
            splits + merges,
            "every reconfiguration is either the churn thread's or the driver's"
        );
        prop_assert_eq!(snap.value("store_reconfig_last_version", &[]), Some(topology.version()));

        // Window counters: a driver decision implies an evaluation, and the
        // applied decisions in the scrape match the report exactly.
        prop_assert!(report.evaluations >= report.splits + report.merges);
        prop_assert_eq!(
            snap.value("store_elastic_applied_total", &[("decision", "split")]),
            Some(report.splits)
        );
        prop_assert_eq!(
            snap.value("store_elastic_applied_total", &[("decision", "merge")]),
            Some(report.merges)
        );

        // Live-shard set: the topology view, `Store::live_shards`, and the
        // scrape's gauges are all the same world.
        let live = (0..topology.shards()).filter(|&sh| topology.is_live(sh)).count();
        prop_assert_eq!(store.live_shards(), live);
        prop_assert_eq!(snap.value("store_shards_live", &[]), Some(live as u64));
        prop_assert_eq!(snap.value("store_shards_total", &[]), Some(topology.shards() as u64));

        // And the data survived the whole episode: every distinct key some
        // client wrote is scannable, and retired shards drained to empty.
        let mut auditor = store.client(store.admit_guest());
        prop_assert_eq!(auditor.scan("", "z").len(), clients * 8);
        for (sh, digest) in store.snapshot_stats().iter().enumerate() {
            if !topology.is_live(sh) {
                prop_assert_eq!(digest.entries, 0, "tombstone {} must be empty", sh);
            }
        }
    }
}

/// Router edge case: a 1-shard store serves point ops, batches, and scans
/// (broadcast degenerates to a single sub-batch).
#[test]
fn one_shard_store_serves_batches_and_scans() {
    let store = StoreBuilder::new()
        .shards(1)
        .vip_capacity(1)
        .guest_ports(2)
        .guest_group_width(1)
        .build()
        .expect("valid sizing");
    let mut c = store.client(store.admit_vip().expect("vip"));
    let resps = c.execute(vec![
        StoreOp::Put("a".into(), 1),
        StoreOp::Put("b".into(), 2),
        StoreOp::Scan { from: "".into(), to: "z".into() },
        StoreOp::Remove("a".into()),
        StoreOp::Scan { from: "".into(), to: "z".into() },
    ]);
    assert_eq!(resps.len(), 5);
    assert_eq!(
        resps[2],
        StoreResp::Entries(vec![("a".into(), 1), ("b".into(), 2)]),
        "mid-batch scan sees the same-batch puts"
    );
    assert_eq!(resps[4], StoreResp::Entries(vec![("b".into(), 2)]));
}

/// Router edge case: scans against an empty store return empty (no panic,
/// no phantom entries), on 1 shard and on many — and likewise after a
/// split of an empty store.
#[test]
fn empty_store_scans_are_empty() {
    for shards in [1usize, 4] {
        let store = StoreBuilder::new()
            .shards(shards)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .build()
            .expect("valid sizing");
        let mut c = store.client(store.admit_guest());
        assert_eq!(c.scan("", "\u{10ffff}"), vec![]);
        assert_eq!(c.scan("z", "a"), vec![], "inverted range is empty, not an error");
        store.split_shard(0).expect("splitting an empty shard is fine");
        assert_eq!(c.scan("", "\u{10ffff}"), vec![]);
        assert_eq!(store.shards(), shards + 1);
    }
}
