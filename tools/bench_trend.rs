//! `bench_trend` — the perf-trajectory CI gate.
//!
//! Diffs freshly recorded `BENCH_*.json` files (written by the criterion
//! shim when `BENCH_JSON` is set) against the committed baseline and
//! **fails on a >30% ops/s regression** in any series present in both.
//! New series (no baseline yet) and retired series are reported but never
//! fail the gate; the baseline is refreshed by committing a fresh file, so
//! the trajectory stays plottable straight from git history.
//!
//! ```text
//! cargo run -p apc-bench --bin bench_trend -- <baseline.json> <fresh.json>... \
//!     [--max-regression 0.30] [--skip <substring>]... [--emit <merged.json>]
//! ```
//!
//! Passing **several fresh files** (CI records three back-to-back runs)
//! gates on the per-series *best* of them: wall-clock noise on shared
//! runners is one-sided — a throttled run only ever looks slower — so a
//! genuine regression still fails every run while a noisy dip in one run
//! does not flap the gate.
//!
//! `--emit` writes the merged best-of-N series back out in the report
//! format (normalized to per-op terms; `ops_per_sec` — the only gated
//! field — is preserved exactly). CI uploads that file as the refreshed
//! baseline artifact, so a single throttled run can never ratchet the
//! committed baseline downward.
//!
//! `--skip` exempts series whose name contains the substring from the gate
//! (they are still printed): use it for series whose variance is dominated
//! by the environment rather than the code, e.g. fsync-bound disk writes on
//! shared CI runners.
//!
//! Exit code 0 = no gated regression, 1 = regression beyond the threshold,
//! 2 = usage/parse error. The parser is deliberately minimal: it reads
//! exactly the one-record-per-line JSON the criterion shim emits (no serde
//! in the offline workspace).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed benchmark series: name → ops/s.
type Series = BTreeMap<String, f64>;

/// Extracts the string value of `"key": "…"` from a JSON record line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `"key": 123.4` from a JSON record line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the criterion shim's report format: one `{"name": …}` record per
/// line inside the `"benchmarks"` array.
fn parse_report(path: &str) -> Result<Series, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut series = Series::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let (Some(name), Some(ops)) =
            (string_field(line, "name"), number_field(line, "ops_per_sec"))
        else {
            continue;
        };
        series.insert(name, ops);
    }
    if series.is_empty() {
        return Err(format!("{path} contains no benchmark records"));
    }
    Ok(series)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.30f64;
    let mut skips: Vec<String> = Vec::new();
    let mut emit: Option<String> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regression" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v < 1.0 => max_regression = v,
                _ => {
                    eprintln!("--max-regression needs a fraction in (0, 1)");
                    return ExitCode::from(2);
                }
            },
            "--skip" => match it.next() {
                Some(s) => skips.push(s.clone()),
                None => {
                    eprintln!("--skip needs a series-name substring");
                    return ExitCode::from(2);
                }
            },
            "--emit" => match it.next() {
                Some(p) => emit = Some(p.clone()),
                None => {
                    eprintln!("--emit needs an output path");
                    return ExitCode::from(2);
                }
            },
            _ => files.push(arg.clone()),
        }
    }
    let [baseline_path, fresh_paths @ ..] = files.as_slice() else {
        eprintln!(
            "usage: bench_trend <baseline.json> <fresh.json>... \
             [--max-regression 0.30] [--skip <substring>]... [--emit <merged.json>]"
        );
        return ExitCode::from(2);
    };
    if fresh_paths.is_empty() {
        eprintln!("bench_trend: need at least one fresh report after the baseline");
        return ExitCode::from(2);
    }
    let baseline = match parse_report(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::from(2);
        }
    };
    // Best-of-N across the fresh runs, per series.
    let mut fresh = Series::new();
    for path in fresh_paths {
        match parse_report(path) {
            Ok(run) => {
                for (name, ops) in run {
                    let best = fresh.entry(name).or_insert(ops);
                    *best = best.max(ops);
                }
            }
            Err(e) => {
                eprintln!("bench_trend: {e}");
                return ExitCode::from(2);
            }
        }
    }

    println!("{:<52} {:>14} {:>14} {:>8}", "series", "baseline ops/s", "fresh ops/s", "delta");
    let mut regressions = Vec::new();
    for (name, &fresh_ops) in &fresh {
        match baseline.get(name) {
            Some(&base_ops) if base_ops > 0.0 => {
                let delta = fresh_ops / base_ops - 1.0;
                let skipped = skips.iter().any(|s| name.contains(s.as_str()));
                let flag = if delta < -max_regression {
                    if skipped {
                        "  (regressed, skipped)"
                    } else {
                        "  << REGRESSION"
                    }
                } else {
                    ""
                };
                println!(
                    "{name:<52} {base_ops:>14.1} {fresh_ops:>14.1} {:>+7.1}%{flag}",
                    delta * 100.0
                );
                if delta < -max_regression && !skipped {
                    regressions.push((name.clone(), delta));
                }
            }
            _ => println!("{name:<52} {:>14} {fresh_ops:>14.1}      new", "-"),
        }
    }
    for name in baseline.keys().filter(|n| !fresh.contains_key(*n)) {
        println!("{name:<52} {:>14.1} {:>14}  retired", baseline[name], "-");
    }

    if let Some(path) = emit {
        // The merged best-of-N series, in the shim's report format: this is
        // what CI uploads (and what gets committed as the refreshed
        // baseline), so a single throttled run can never ratchet the
        // baseline downward.
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, (name, ops)) in fresh.iter().enumerate() {
            let ns_per_op = if *ops > 0.0 { 1e9 / ops } else { 0.0 };
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"ns_per_iter\": {}, \"elements_per_iter\": 1, \
                 \"ns_per_op\": {ns_per_op:.1}, \"ops_per_sec\": {ops:.1}}}{}\n",
                ns_per_op.round() as u64,
                if i + 1 == fresh.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("bench_trend: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("merged best-of-{} series written to {path}", fresh_paths.len());
    }

    if regressions.is_empty() {
        println!(
            "\nbench_trend: OK — no series regressed more than {:.0}%",
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nbench_trend: FAIL — {} series regressed more than {:.0}%:",
            regressions.len(),
            max_regression * 100.0
        );
        for (name, delta) in &regressions {
            eprintln!("  {name}: {:+.1}%", delta * 100.0);
        }
        ExitCode::FAILURE
    }
}
