//! `bench_trend` — the perf-trajectory CI gate **and trend reporter**.
//!
//! Diffs freshly recorded `BENCH_*.json` files (written by the criterion
//! shim when `BENCH_JSON` is set) against the committed baseline and
//! **fails on an ops/s regression beyond the gate** in any series present
//! in both. New series (no baseline yet) never fail the gate; baseline
//! series **missing** from every fresh run are warned about loudly, listed
//! in the emitted artifact, and fail the gate under `--deny-missing` —
//! a silently dropped bench must never pass as "no regression". The
//! baseline is refreshed by committing a fresh file, so the trajectory
//! stays plottable straight from git history — which is exactly what the
//! `report` subcommand does.
//!
//! ```text
//! cargo run -p apc-bench --bin bench_trend -- <baseline.json> <fresh.json>... \
//!     [--max-regression 0.30] [--skip <substring>]... [--emit <merged.json>] \
//!     [--deny-missing]
//!
//! cargo run -p apc-bench --bin bench_trend -- report \
//!     [--git <FILE>] [--dir <DIR>] [--out <report.html>] [extra.json...]
//! ```
//!
//! ## Gate mode
//!
//! Passing **several fresh files** (CI records three back-to-back runs)
//! gates on the per-series *best* of them: wall-clock noise on shared
//! runners is one-sided — a throttled run only ever looks slower — so a
//! genuine regression still fails every run while a noisy dip in one run
//! does not flap the gate.
//!
//! The fresh runs also yield a **per-series variance estimate**: the
//! relative standard deviation (coefficient of variation) of `ops_per_sec`
//! across the N runs. `--emit` records it as `ops_stddev` / `ops_cv` next
//! to each merged series, so the committed baseline carries how noisy each
//! series was when it was recorded. The gate then **tightens to 20%** for
//! any series whose *baseline* `ops_cv` is below 10% — a series that
//! historically barely moves between back-to-back runs does not get the
//! full 30% slack — while series with no recorded variance (old baselines)
//! or noisy ones keep the default threshold.
//!
//! `--emit` writes the merged best-of-N series back out in the report
//! format (normalized to per-op terms; `ops_per_sec` — the only gated
//! field — is preserved exactly), plus a top-level `missing_from_fresh`
//! list naming every baseline series no fresh run reported. CI uploads
//! that file as the refreshed baseline artifact, so a single throttled run
//! can never ratchet the committed baseline downward — and a dropped bench
//! is visible in the artifact itself.
//!
//! `--skip` exempts series whose name contains the substring from the gate
//! (they are still printed): use it for series whose variance is dominated
//! by the environment rather than the code, e.g. fsync-bound disk writes on
//! shared CI runners.
//!
//! ## Report mode
//!
//! `report` renders the perf *trajectory* — every series' ops/s across
//! PRs — as one self-contained HTML file with inline SVG charts (no
//! external assets, viewable straight from a CI artifact):
//!
//! * `--git BENCH_store.json` walks `git log --reverse` over the committed
//!   baseline and takes one point per commit that touched it (the stacked-
//!   PR history; unparsable or absent revisions are skipped with a note);
//! * `--dir DIR` takes one point per `*.json` artifact in `DIR`, in
//!   filename order (for archived artifact collections);
//! * trailing positional files are appended as the freshest points (CI
//!   passes the just-merged `BENCH_store.merged.json` so the report ends
//!   at "this build").
//!
//! Each chart draws the ops/s polyline with a shaded ±stddev band where
//! the artifact recorded `ops_cv`, and the summary table shows first/best/
//! last throughput and the last-over-first delta per series.
//!
//! Exit code 0 = no gated regression, 1 = regression beyond the threshold
//! (or a missing series under `--deny-missing`), 2 = usage/parse error.
//! The parser is deliberately minimal: it reads exactly the
//! one-record-per-line JSON the criterion shim emits (no serde in the
//! offline workspace) — which is also why the emitted `missing_from_fresh`
//! line is parser-safe: only lines *starting* with `{` are record
//! candidates.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

/// The gate tightens to this threshold for series whose baseline variance
/// is recorded below [`LOW_VARIANCE_CV`].
const TIGHT_REGRESSION: f64 = 0.20;

/// "Low variance" = relative stddev across the recorded runs under 10%.
const LOW_VARIANCE_CV: f64 = 0.10;

/// One parsed benchmark series.
#[derive(Copy, Clone, Debug, PartialEq)]
struct Record {
    /// Throughput (the gated field).
    ops_per_sec: f64,
    /// Relative stddev of `ops_per_sec` across the runs that produced the
    /// file, if recorded (absent in pre-variance baselines).
    ops_cv: Option<f64>,
}

/// All series of one report: name → record.
type Series = BTreeMap<String, Record>;

/// Extracts the string value of `"key": "…"` from a JSON record line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `"key": 123.4` from a JSON record line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the criterion shim's report format: one `{"name": …}` record per
/// line inside the `"benchmarks"` array.
fn parse_report_text(text: &str, what: &str) -> Result<Series, String> {
    let mut series = Series::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let (Some(name), Some(ops)) =
            (string_field(line, "name"), number_field(line, "ops_per_sec"))
        else {
            continue;
        };
        series.insert(name, Record { ops_per_sec: ops, ops_cv: number_field(line, "ops_cv") });
    }
    if series.is_empty() {
        return Err(format!("{what} contains no benchmark records"));
    }
    Ok(series)
}

fn parse_report(path: &str) -> Result<Series, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_report_text(&text, path)
}

/// Per-series best-of-N plus the cross-run variance estimate.
#[derive(Clone, Debug, PartialEq)]
struct Merged {
    best: f64,
    /// Mean across the runs (what the stddev is relative to).
    mean: f64,
    /// Relative stddev across the runs; `None` with fewer than 2 samples.
    cv: Option<f64>,
}

/// Folds N fresh runs into best-of-N per series, with the coefficient of
/// variation of each series across the runs that reported it.
fn merge_runs(runs: &[Series]) -> BTreeMap<String, Merged> {
    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for run in runs {
        for (name, rec) in run {
            samples.entry(name.clone()).or_default().push(rec.ops_per_sec);
        }
    }
    samples
        .into_iter()
        .map(|(name, xs)| {
            let best = xs.iter().copied().fold(f64::MIN, f64::max);
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let cv = (xs.len() >= 2 && mean > 0.0).then(|| {
                let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
                var.sqrt() / mean
            });
            (name, Merged { best, mean, cv })
        })
        .collect()
}

/// Baseline series that no fresh run reported — a dropped bench, not a
/// regression-free one.
fn missing_series(baseline: &Series, fresh: &BTreeMap<String, Merged>) -> Vec<String> {
    baseline.keys().filter(|n| !fresh.contains_key(*n)).cloned().collect()
}

/// The gate threshold for one series: tightened when the **baseline**
/// recorded that the series historically varies little between runs.
fn threshold_for(baseline_cv: Option<f64>, default_threshold: f64) -> f64 {
    match baseline_cv {
        Some(cv) if cv < LOW_VARIANCE_CV => default_threshold.min(TIGHT_REGRESSION),
        _ => default_threshold,
    }
}

/// Renders the merged series in the shim's report format, with the
/// variance columns (`ops_stddev`, `ops_cv`) appended when available and
/// the dropped-baseline-series list as a top-level `missing_from_fresh`
/// key (parser-safe: the line does not start with `{`, so a re-parse of
/// the artifact sees only the records).
fn render_emit(merged: &BTreeMap<String, Merged>, missing: &[String]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, m)) in merged.iter().enumerate() {
        let ops = m.best;
        let ns_per_op = if ops > 0.0 { 1e9 / ops } else { 0.0 };
        // The stddev is relative to the cross-run mean, not the emitted
        // best-of-N ops/s (best >= mean, so cv * best would overstate it).
        let variance = match m.cv {
            Some(cv) => {
                format!(", \"ops_stddev\": {:.1}, \"ops_cv\": {:.4}", cv * m.mean, cv)
            }
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {}, \"elements_per_iter\": 1, \
             \"ns_per_op\": {ns_per_op:.1}, \"ops_per_sec\": {ops:.1}{variance}}}{}\n",
            ns_per_op.round() as u64,
            if i + 1 == merged.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"missing_from_fresh\": [");
    for (i, name) in missing.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\""));
    }
    out.push_str("]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Report mode: the perf trajectory across PRs as self-contained SVG/HTML.
// ---------------------------------------------------------------------------

/// One historical point of the trajectory: where it came from (a git
/// revision or an artifact file name) and its parsed series.
struct TrendPoint {
    label: String,
    series: Series,
}

/// One point per commit that touched `file`, oldest first, read via
/// `git show <rev>:<file>` so the walk never touches the working tree.
fn collect_git_points(file: &str) -> Result<Vec<TrendPoint>, String> {
    let log = std::process::Command::new("git")
        .args(["log", "--reverse", "--format=%h", "--", file])
        .output()
        .map_err(|e| format!("cannot run git log: {e}"))?;
    if !log.status.success() {
        return Err(format!("git log failed: {}", String::from_utf8_lossy(&log.stderr).trim()));
    }
    let revs = String::from_utf8_lossy(&log.stdout);
    let mut points = Vec::new();
    for rev in revs.lines().map(str::trim).filter(|r| !r.is_empty()) {
        let show = std::process::Command::new("git")
            .args(["show", &format!("{rev}:{file}")])
            .output()
            .map_err(|e| format!("cannot run git show: {e}"))?;
        if !show.status.success() {
            // The commit touched the path without leaving a readable file
            // (e.g. a deletion); not a trajectory point.
            continue;
        }
        match parse_report_text(&String::from_utf8_lossy(&show.stdout), rev) {
            Ok(series) => points.push(TrendPoint { label: rev.to_string(), series }),
            Err(_) => eprintln!("bench_trend: note — {rev}:{file} is not a report, skipped"),
        }
    }
    Ok(points)
}

/// One point per `*.json` artifact in `dir`, in filename order (archive
/// the artifacts with sortable names — e.g. zero-padded PR numbers — and
/// the order is the trajectory).
fn collect_dir_points(dir: &str) -> Result<Vec<TrendPoint>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    let mut points = Vec::new();
    for name in names {
        let path = format!("{dir}/{name}");
        match parse_report(&path) {
            Ok(series) => points.push(TrendPoint { label: name, series }),
            Err(e) => eprintln!("bench_trend: note — {e}, skipped"),
        }
    }
    Ok(points)
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Shortens 1234567.0 to "1.23M" for axis labels.
fn human(ops: f64) -> String {
    if ops >= 1e6 {
        format!("{:.2}M", ops / 1e6)
    } else if ops >= 1e3 {
        format!("{:.1}k", ops / 1e3)
    } else {
        format!("{ops:.0}")
    }
}

/// One series' inline SVG: the ops/s polyline over the points (gaps where
/// a point lacks the series) with a shaded ±stddev band where recorded.
fn svg_for_series(name: &str, points: &[TrendPoint]) -> String {
    const W: f64 = 720.0;
    const H: f64 = 160.0;
    const PAD_L: f64 = 56.0;
    const PAD_R: f64 = 12.0;
    const PAD_T: f64 = 10.0;
    const PAD_B: f64 = 24.0;
    let values: Vec<Option<(f64, f64)>> = points
        .iter()
        .map(|p| {
            p.series.get(name).map(|r| (r.ops_per_sec, r.ops_cv.unwrap_or(0.0) * r.ops_per_sec))
        })
        .collect();
    let y_max =
        values.iter().flatten().map(|&(ops, sd)| ops + sd).fold(0.0_f64, f64::max).max(1.0) * 1.05;
    let x_of = |i: usize| {
        let n = values.len().max(2) - 1;
        PAD_L + (W - PAD_L - PAD_R) * i as f64 / n as f64
    };
    let y_of = |v: f64| H - PAD_B - (H - PAD_T - PAD_B) * (v / y_max);
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\n\
         <rect x=\"{PAD_L}\" y=\"{PAD_T}\" width=\"{}\" height=\"{}\" fill=\"#fafafa\" \
         stroke=\"#ddd\"/>\n\
         <text x=\"4\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\">{}</text>\n\
         <text x=\"4\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\">0</text>\n",
        W - PAD_L - PAD_R,
        H - PAD_T - PAD_B,
        PAD_T + 10.0,
        human(y_max),
        H - PAD_B,
    );
    // Contiguous runs of present points: band polygon + polyline each.
    let mut run: Vec<(usize, f64, f64)> = Vec::new();
    let flush = |run: &mut Vec<(usize, f64, f64)>, svg: &mut String| {
        if run.len() >= 2 {
            let band_top: Vec<String> = run
                .iter()
                .map(|&(i, ops, sd)| format!("{:.1},{:.1}", x_of(i), y_of(ops + sd)))
                .collect();
            let band_bot: Vec<String> = run
                .iter()
                .rev()
                .map(|&(i, ops, sd)| format!("{:.1},{:.1}", x_of(i), y_of((ops - sd).max(0.0))))
                .collect();
            svg.push_str(&format!(
                "<polygon points=\"{} {}\" fill=\"#4a90d9\" opacity=\"0.15\"/>\n",
                band_top.join(" "),
                band_bot.join(" "),
            ));
            let line: Vec<String> =
                run.iter().map(|&(i, ops, _)| format!("{:.1},{:.1}", x_of(i), y_of(ops))).collect();
            svg.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"#2a6fb0\" stroke-width=\"1.5\"/>\n",
                line.join(" "),
            ));
        }
        for &(i, ops, _) in run.iter() {
            svg.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#2a6fb0\"/>\n",
                x_of(i),
                y_of(ops),
            ));
        }
        run.clear();
    };
    for (i, v) in values.iter().enumerate() {
        match v {
            Some((ops, sd)) => run.push((i, *ops, *sd)),
            None => flush(&mut run, &mut svg),
        }
    }
    flush(&mut run, &mut svg);
    if let Some(first) = points.first() {
        svg.push_str(&format!(
            "<text x=\"{PAD_L}\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\">{}</text>\n",
            H - 8.0,
            html_escape(&first.label),
        ));
    }
    if let Some(last) = points.last() {
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\" \
             text-anchor=\"end\">{}</text>\n",
            W - PAD_R,
            H - 8.0,
            html_escape(&last.label),
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// The whole report: one chart per series (union across points) plus the
/// first/best/last summary table. Self-contained — inline SVG + inline
/// CSS, no scripts, no external assets.
fn render_report(points: &[TrendPoint]) -> String {
    let names: BTreeSet<&str> =
        points.iter().flat_map(|p| p.series.keys()).map(String::as_str).collect();
    let mut html = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>bench_trend perf trajectory</title>\n\
         <style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:780px;color:#222}\n\
         h2{font-size:1rem;margin:1.5rem 0 .25rem;font-family:ui-monospace,monospace}\n\
         table{border-collapse:collapse;width:100%;margin-top:1.5rem}\n\
         th,td{border:1px solid #ddd;padding:.3rem .5rem;text-align:right;\
         font-variant-numeric:tabular-nums}\n\
         th:first-child,td:first-child{text-align:left;font-family:ui-monospace,monospace}\n\
         .up{color:#1a7f37}.down{color:#b42318}\n\
         </style></head><body>\n<h1>Perf trajectory</h1>\n",
    );
    html.push_str(&format!(
        "<p>{} series over {} point(s). The shaded band is ±1 recorded stddev \
         (cross-run, where the artifact carries <code>ops_cv</code>).</p>\n",
        names.len(),
        points.len(),
    ));
    for name in &names {
        html.push_str(&format!("<h2>{}</h2>\n", html_escape(name)));
        html.push_str(&svg_for_series(name, points));
    }
    html.push_str(
        "<table><tr><th>series</th><th>points</th><th>first ops/s</th>\
         <th>best ops/s</th><th>last ops/s</th><th>last/first</th></tr>\n",
    );
    for name in &names {
        let vals: Vec<f64> =
            points.iter().filter_map(|p| p.series.get(*name)).map(|r| r.ops_per_sec).collect();
        let (Some(&first), Some(&last)) = (vals.first(), vals.last()) else { continue };
        let best = vals.iter().copied().fold(f64::MIN, f64::max);
        let delta = if first > 0.0 { last / first - 1.0 } else { 0.0 };
        let class = if delta >= 0.0 { "up" } else { "down" };
        html.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td class=\"{class}\">{:+.1}%</td></tr>\n",
            html_escape(name),
            vals.len(),
            human(first),
            human(best),
            human(last),
            delta * 100.0,
        ));
    }
    html.push_str("</table>\n</body></html>\n");
    html
}

fn report_main(args: &[String]) -> ExitCode {
    let mut git: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut out = String::from("bench_trend_report.html");
    let mut extra = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--git" => match it.next() {
                Some(f) => git = Some(f.clone()),
                None => {
                    eprintln!("--git needs a tracked report path");
                    return ExitCode::from(2);
                }
            },
            "--dir" => match it.next() {
                Some(d) => dir = Some(d.clone()),
                None => {
                    eprintln!("--dir needs a directory of report artifacts");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("--out needs an output path");
                    return ExitCode::from(2);
                }
            },
            _ => extra.push(arg.clone()),
        }
    }
    let mut points = Vec::new();
    if let Some(file) = &git {
        match collect_git_points(file) {
            Ok(mut p) => points.append(&mut p),
            Err(e) => {
                eprintln!("bench_trend: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(d) = &dir {
        match collect_dir_points(d) {
            Ok(mut p) => points.append(&mut p),
            Err(e) => {
                eprintln!("bench_trend: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for path in &extra {
        match parse_report(path) {
            Ok(series) => {
                let label = path.rsplit('/').next().unwrap_or(path).to_string();
                points.push(TrendPoint { label, series });
            }
            Err(e) => {
                eprintln!("bench_trend: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if points.is_empty() {
        eprintln!(
            "bench_trend: no trajectory points (need --git FILE, --dir DIR, or report files)"
        );
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::write(&out, render_report(&points)) {
        eprintln!("bench_trend: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!("bench_trend: trajectory report over {} point(s) written to {out}", points.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("report") {
        return report_main(&args[1..]);
    }
    let mut max_regression = 0.30f64;
    let mut skips: Vec<String> = Vec::new();
    let mut emit: Option<String> = None;
    let mut deny_missing = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regression" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v < 1.0 => max_regression = v,
                _ => {
                    eprintln!("--max-regression needs a fraction in (0, 1)");
                    return ExitCode::from(2);
                }
            },
            "--skip" => match it.next() {
                Some(s) => skips.push(s.clone()),
                None => {
                    eprintln!("--skip needs a series-name substring");
                    return ExitCode::from(2);
                }
            },
            "--emit" => match it.next() {
                Some(p) => emit = Some(p.clone()),
                None => {
                    eprintln!("--emit needs an output path");
                    return ExitCode::from(2);
                }
            },
            "--deny-missing" => deny_missing = true,
            _ => files.push(arg.clone()),
        }
    }
    let [baseline_path, fresh_paths @ ..] = files.as_slice() else {
        eprintln!(
            "usage: bench_trend <baseline.json> <fresh.json>... \
             [--max-regression 0.30] [--skip <substring>]... [--emit <merged.json>] \
             [--deny-missing]\n   or: bench_trend report [--git FILE] [--dir DIR] \
             [--out report.html] [extra.json...]"
        );
        return ExitCode::from(2);
    };
    if fresh_paths.is_empty() {
        eprintln!("bench_trend: need at least one fresh report after the baseline");
        return ExitCode::from(2);
    }
    let baseline = match parse_report(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::from(2);
        }
    };
    let mut runs = Vec::new();
    for path in fresh_paths {
        match parse_report(path) {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("bench_trend: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let fresh = merge_runs(&runs);
    let missing = missing_series(&baseline, &fresh);

    println!(
        "{:<52} {:>14} {:>14} {:>8} {:>6}",
        "series", "baseline ops/s", "fresh ops/s", "delta", "gate"
    );
    let mut regressions = Vec::new();
    for (name, merged) in &fresh {
        match baseline.get(name) {
            Some(base) if base.ops_per_sec > 0.0 => {
                let delta = merged.best / base.ops_per_sec - 1.0;
                let gate = threshold_for(base.ops_cv, max_regression);
                let skipped = skips.iter().any(|s| name.contains(s.as_str()));
                let flag = if delta < -gate {
                    if skipped {
                        "  (regressed, skipped)"
                    } else {
                        "  << REGRESSION"
                    }
                } else {
                    ""
                };
                println!(
                    "{name:<52} {:>14.1} {:>14.1} {:>+7.1}% {:>5.0}%{flag}",
                    base.ops_per_sec,
                    merged.best,
                    delta * 100.0,
                    gate * 100.0,
                );
                if delta < -gate && !skipped {
                    regressions.push((name.clone(), delta, gate));
                }
            }
            _ => println!("{name:<52} {:>14} {:>14.1}      new", "-", merged.best),
        }
    }
    for name in &missing {
        let base = baseline[name].ops_per_sec;
        println!("{name:<52} {base:>14.1} {:>14}  MISSING", "-");
    }
    if !missing.is_empty() {
        eprintln!(
            "\nbench_trend: WARNING — {} baseline series missing from every fresh run:",
            missing.len()
        );
        for name in &missing {
            eprintln!("  {name}");
        }
        eprintln!(
            "  a dropped bench cannot be gated; restore the bench (or deliberately retire \
             the series by refreshing the committed baseline){}",
            if deny_missing { " — failing (--deny-missing)" } else { "" },
        );
    }

    if let Some(path) = emit {
        // The merged best-of-N series with cross-run variance, in the
        // shim's report format: this is what CI uploads (and what gets
        // committed as the refreshed baseline), so a single throttled run
        // can never ratchet the baseline downward — and the recorded
        // variance is what lets the next gate tighten below the default.
        // The missing list rides along so a dropped bench is visible in
        // the artifact itself, not only in scrolled-away job logs.
        if let Err(e) = std::fs::write(&path, render_emit(&fresh, &missing)) {
            eprintln!("bench_trend: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("merged best-of-{} series written to {path}", fresh_paths.len());
    }

    if deny_missing && !missing.is_empty() {
        return ExitCode::FAILURE;
    }
    if regressions.is_empty() {
        println!(
            "\nbench_trend: OK — no series regressed beyond its gate (default {:.0}%, \
             tightened to {:.0}% where baseline cv < {:.0}%)",
            max_regression * 100.0,
            TIGHT_REGRESSION.min(max_regression) * 100.0,
            LOW_VARIANCE_CV * 100.0,
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nbench_trend: FAIL — {} series regressed beyond their gate:",
            regressions.len()
        );
        for (name, delta, gate) in &regressions {
            eprintln!("  {name}: {:+.1}% (gate {:.0}%)", delta * 100.0, gate * 100.0);
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_records_with_and_without_variance() {
        let text = r#"{
  "benchmarks": [
    {"name": "a/b", "ns_per_iter": 10, "elements_per_iter": 1, "ns_per_op": 10.0, "ops_per_sec": 100000.0},
    {"name": "c/d", "ns_per_iter": 20, "elements_per_iter": 1, "ns_per_op": 20.0, "ops_per_sec": 50000.0, "ops_stddev": 1000.0, "ops_cv": 0.0200}
  ]
}"#;
        let series = parse_report_text(text, "test").unwrap();
        assert_eq!(series["a/b"], Record { ops_per_sec: 100000.0, ops_cv: None });
        assert_eq!(series["c/d"], Record { ops_per_sec: 50000.0, ops_cv: Some(0.02) });
        assert!(parse_report_text("{}", "empty").is_err());
    }

    #[test]
    fn merge_takes_best_and_computes_cv() {
        let run = |ops: f64| {
            let mut s = Series::new();
            s.insert("x".into(), Record { ops_per_sec: ops, ops_cv: None });
            s
        };
        let merged = merge_runs(&[run(90.0), run(110.0), run(100.0)]);
        let m = &merged["x"];
        assert_eq!(m.best, 110.0);
        assert_eq!(m.mean, 100.0);
        // stddev of {90,110,100} (population) = sqrt(200/3) ≈ 8.165; mean 100.
        let cv = m.cv.expect("3 samples yield a cv");
        assert!((cv - 0.081_65).abs() < 1e-4, "cv was {cv}");
        // The emitted stddev column is cv × mean (the actual stddev), not
        // cv × best.
        let mut one = BTreeMap::new();
        one.insert("x".to_string(), m.clone());
        let emitted = render_emit(&one, &[]);
        let stddev =
            number_field(emitted.lines().find(|l| l.contains("\"x\"")).unwrap(), "ops_stddev")
                .unwrap();
        assert!((stddev - cv * 100.0).abs() < 0.1, "stddev was {stddev}");
    }

    #[test]
    fn single_run_records_no_variance() {
        let mut s = Series::new();
        s.insert("x".into(), Record { ops_per_sec: 100.0, ops_cv: None });
        let merged = merge_runs(&[s]);
        assert_eq!(merged["x"].cv, None, "one sample must not claim low variance");
    }

    #[test]
    fn gate_tightens_only_on_recorded_low_variance() {
        // No recorded variance: the default stands.
        assert_eq!(threshold_for(None, 0.30), 0.30);
        // Low recorded variance: tighten to 20%.
        assert_eq!(threshold_for(Some(0.05), 0.30), 0.20);
        // At or above the low-variance line: the default stands.
        assert_eq!(threshold_for(Some(0.10), 0.30), 0.30);
        assert_eq!(threshold_for(Some(0.25), 0.30), 0.30);
        // A user-tightened default is never loosened.
        assert_eq!(threshold_for(Some(0.05), 0.15), 0.15);
    }

    #[test]
    fn emit_roundtrips_through_the_parser() {
        let mut merged = BTreeMap::new();
        merged.insert(
            "s/one".to_string(),
            Merged { best: 250000.0, mean: 245000.0, cv: Some(0.034) },
        );
        merged.insert("s/two".to_string(), Merged { best: 1000.0, mean: 1000.0, cv: None });
        let text = render_emit(&merged, &[]);
        let parsed = parse_report_text(&text, "emitted").unwrap();
        assert_eq!(parsed["s/one"].ops_per_sec, 250000.0);
        assert_eq!(parsed["s/one"].ops_cv, Some(0.034));
        assert_eq!(parsed["s/two"], Record { ops_per_sec: 1000.0, ops_cv: None });
    }

    #[test]
    fn missing_series_are_detected_listed_and_parser_safe() {
        let mut baseline = Series::new();
        baseline.insert("kept".into(), Record { ops_per_sec: 100.0, ops_cv: None });
        baseline.insert("dropped/a".into(), Record { ops_per_sec: 200.0, ops_cv: None });
        baseline.insert("dropped/b".into(), Record { ops_per_sec: 300.0, ops_cv: None });
        let mut run = Series::new();
        run.insert("kept".into(), Record { ops_per_sec: 105.0, ops_cv: None });
        let fresh = merge_runs(&[run]);
        let missing = missing_series(&baseline, &fresh);
        assert_eq!(missing, ["dropped/a", "dropped/b"]);
        // The emitted artifact names them at the top level…
        let text = render_emit(&fresh, &missing);
        assert!(text.contains("\"missing_from_fresh\": [\"dropped/a\", \"dropped/b\"]"), "{text}");
        // …without polluting a re-parse of the artifact as a baseline.
        let reparsed = parse_report_text(&text, "emitted").unwrap();
        assert_eq!(reparsed.len(), 1);
        assert!(reparsed.contains_key("kept"));
    }

    fn point(label: &str, entries: &[(&str, f64, Option<f64>)]) -> TrendPoint {
        let mut series = Series::new();
        for (name, ops, cv) in entries {
            series.insert(name.to_string(), Record { ops_per_sec: *ops, ops_cv: *cv });
        }
        TrendPoint { label: label.to_string(), series }
    }

    #[test]
    fn report_charts_every_series_with_bands_and_summary() {
        let points = vec![
            point("aaa1111", &[("s/x", 100.0, Some(0.05)), ("s/y", 10.0, None)]),
            point("bbb2222", &[("s/x", 120.0, Some(0.04))]),
            point("ccc3333", &[("s/x", 150.0, None), ("s/y", 12.0, None)]),
        ];
        let html = render_report(&points);
        assert!(html.contains("<h2>s/x</h2>"), "one chart per series");
        assert!(html.contains("<h2>s/y</h2>"));
        assert_eq!(html.matches("<svg ").count(), 2);
        assert!(html.contains("<polyline"), "ops/s polyline drawn");
        assert!(html.contains("<polygon"), "variance band drawn where cv is recorded");
        assert!(html.contains("aaa1111") && html.contains("ccc3333"), "first/last labels");
        assert!(html.contains("+50.0%"), "s/x last/first delta in the summary table");
        assert!(html.contains("+20.0%"), "s/y last/first delta in the summary table");
        assert!(!html.contains("<script"), "self-contained: no scripts");
    }

    #[test]
    fn report_series_gaps_break_the_polyline_not_the_chart() {
        // s/g exists at points 0 and 2 only: two isolated dots, no line
        // bridging the gap (a bridged gap would fake continuity).
        let points = vec![
            point("p0", &[("s/g", 100.0, None)]),
            point("p1", &[("other", 1.0, None)]),
            point("p2", &[("s/g", 90.0, None)]),
        ];
        let html = render_report(&points);
        let chart = html.split("<h2>s/g</h2>").nth(1).unwrap().split("</svg>").next().unwrap();
        assert!(!chart.contains("<polyline"), "no line across the gap");
        assert_eq!(chart.matches("<circle").count(), 2, "both real points drawn");
    }

    #[test]
    fn dir_points_are_sorted_and_skip_non_reports() {
        let dir = std::env::temp_dir().join(format!("bench-trend-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| std::fs::write(dir.join(name), body).unwrap();
        write(
            "02-later.json",
            "{\n  \"benchmarks\": [\n    {\"name\": \"s\", \"ops_per_sec\": 200.0}\n  ]\n}\n",
        );
        write(
            "01-earlier.json",
            "{\n  \"benchmarks\": [\n    {\"name\": \"s\", \"ops_per_sec\": 100.0}\n  ]\n}\n",
        );
        write("not-a-report.json", "{}");
        write("ignored.txt", "nope");
        let points = collect_dir_points(dir.to_str().unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["01-earlier.json", "02-later.json"], "filename order = trajectory");
        assert_eq!(points[0].series["s"].ops_per_sec, 100.0);
        assert_eq!(points[1].series["s"].ops_per_sec, 200.0);
    }

    #[test]
    fn human_axis_labels() {
        assert_eq!(human(1_234_567.0), "1.23M");
        assert_eq!(human(45_600.0), "45.6k");
        assert_eq!(human(250.0), "250");
    }
}
