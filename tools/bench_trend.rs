//! `bench_trend` — the perf-trajectory CI gate.
//!
//! Diffs freshly recorded `BENCH_*.json` files (written by the criterion
//! shim when `BENCH_JSON` is set) against the committed baseline and
//! **fails on an ops/s regression beyond the gate** in any series present
//! in both. New series (no baseline yet) and retired series are reported
//! but never fail the gate; the baseline is refreshed by committing a
//! fresh file, so the trajectory stays plottable straight from git
//! history.
//!
//! ```text
//! cargo run -p apc-bench --bin bench_trend -- <baseline.json> <fresh.json>... \
//!     [--max-regression 0.30] [--skip <substring>]... [--emit <merged.json>]
//! ```
//!
//! Passing **several fresh files** (CI records three back-to-back runs)
//! gates on the per-series *best* of them: wall-clock noise on shared
//! runners is one-sided — a throttled run only ever looks slower — so a
//! genuine regression still fails every run while a noisy dip in one run
//! does not flap the gate.
//!
//! ## Per-series variance and the tightened gate
//!
//! The fresh runs also yield a **per-series variance estimate**: the
//! relative standard deviation (coefficient of variation) of `ops_per_sec`
//! across the N runs. `--emit` records it as `ops_stddev` / `ops_cv` next
//! to each merged series, so the committed baseline carries how noisy each
//! series was when it was recorded. The gate then **tightens to 20%** for
//! any series whose *baseline* `ops_cv` is below 10% — a series that
//! historically barely moves between back-to-back runs does not get the
//! full 30% slack — while series with no recorded variance (old baselines)
//! or noisy ones keep the default threshold.
//!
//! `--emit` writes the merged best-of-N series back out in the report
//! format (normalized to per-op terms; `ops_per_sec` — the only gated
//! field — is preserved exactly). CI uploads that file as the refreshed
//! baseline artifact, so a single throttled run can never ratchet the
//! committed baseline downward.
//!
//! `--skip` exempts series whose name contains the substring from the gate
//! (they are still printed): use it for series whose variance is dominated
//! by the environment rather than the code, e.g. fsync-bound disk writes on
//! shared CI runners.
//!
//! Exit code 0 = no gated regression, 1 = regression beyond the threshold,
//! 2 = usage/parse error. The parser is deliberately minimal: it reads
//! exactly the one-record-per-line JSON the criterion shim emits (no serde
//! in the offline workspace).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The gate tightens to this threshold for series whose baseline variance
/// is recorded below [`LOW_VARIANCE_CV`].
const TIGHT_REGRESSION: f64 = 0.20;

/// "Low variance" = relative stddev across the recorded runs under 10%.
const LOW_VARIANCE_CV: f64 = 0.10;

/// One parsed benchmark series.
#[derive(Copy, Clone, Debug, PartialEq)]
struct Record {
    /// Throughput (the gated field).
    ops_per_sec: f64,
    /// Relative stddev of `ops_per_sec` across the runs that produced the
    /// file, if recorded (absent in pre-variance baselines).
    ops_cv: Option<f64>,
}

/// All series of one report: name → record.
type Series = BTreeMap<String, Record>;

/// Extracts the string value of `"key": "…"` from a JSON record line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `"key": 123.4` from a JSON record line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the criterion shim's report format: one `{"name": …}` record per
/// line inside the `"benchmarks"` array.
fn parse_report_text(text: &str, what: &str) -> Result<Series, String> {
    let mut series = Series::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let (Some(name), Some(ops)) =
            (string_field(line, "name"), number_field(line, "ops_per_sec"))
        else {
            continue;
        };
        series.insert(name, Record { ops_per_sec: ops, ops_cv: number_field(line, "ops_cv") });
    }
    if series.is_empty() {
        return Err(format!("{what} contains no benchmark records"));
    }
    Ok(series)
}

fn parse_report(path: &str) -> Result<Series, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_report_text(&text, path)
}

/// Per-series best-of-N plus the cross-run variance estimate.
#[derive(Clone, Debug, PartialEq)]
struct Merged {
    best: f64,
    /// Mean across the runs (what the stddev is relative to).
    mean: f64,
    /// Relative stddev across the runs; `None` with fewer than 2 samples.
    cv: Option<f64>,
}

/// Folds N fresh runs into best-of-N per series, with the coefficient of
/// variation of each series across the runs that reported it.
fn merge_runs(runs: &[Series]) -> BTreeMap<String, Merged> {
    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for run in runs {
        for (name, rec) in run {
            samples.entry(name.clone()).or_default().push(rec.ops_per_sec);
        }
    }
    samples
        .into_iter()
        .map(|(name, xs)| {
            let best = xs.iter().copied().fold(f64::MIN, f64::max);
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let cv = (xs.len() >= 2 && mean > 0.0).then(|| {
                let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
                var.sqrt() / mean
            });
            (name, Merged { best, mean, cv })
        })
        .collect()
}

/// The gate threshold for one series: tightened when the **baseline**
/// recorded that the series historically varies little between runs.
fn threshold_for(baseline_cv: Option<f64>, default_threshold: f64) -> f64 {
    match baseline_cv {
        Some(cv) if cv < LOW_VARIANCE_CV => default_threshold.min(TIGHT_REGRESSION),
        _ => default_threshold,
    }
}

/// Renders the merged series in the shim's report format, with the
/// variance columns (`ops_stddev`, `ops_cv`) appended when available.
fn render_emit(merged: &BTreeMap<String, Merged>) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, m)) in merged.iter().enumerate() {
        let ops = m.best;
        let ns_per_op = if ops > 0.0 { 1e9 / ops } else { 0.0 };
        // The stddev is relative to the cross-run mean, not the emitted
        // best-of-N ops/s (best >= mean, so cv * best would overstate it).
        let variance = match m.cv {
            Some(cv) => {
                format!(", \"ops_stddev\": {:.1}, \"ops_cv\": {:.4}", cv * m.mean, cv)
            }
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {}, \"elements_per_iter\": 1, \
             \"ns_per_op\": {ns_per_op:.1}, \"ops_per_sec\": {ops:.1}{variance}}}{}\n",
            ns_per_op.round() as u64,
            if i + 1 == merged.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.30f64;
    let mut skips: Vec<String> = Vec::new();
    let mut emit: Option<String> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regression" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v < 1.0 => max_regression = v,
                _ => {
                    eprintln!("--max-regression needs a fraction in (0, 1)");
                    return ExitCode::from(2);
                }
            },
            "--skip" => match it.next() {
                Some(s) => skips.push(s.clone()),
                None => {
                    eprintln!("--skip needs a series-name substring");
                    return ExitCode::from(2);
                }
            },
            "--emit" => match it.next() {
                Some(p) => emit = Some(p.clone()),
                None => {
                    eprintln!("--emit needs an output path");
                    return ExitCode::from(2);
                }
            },
            _ => files.push(arg.clone()),
        }
    }
    let [baseline_path, fresh_paths @ ..] = files.as_slice() else {
        eprintln!(
            "usage: bench_trend <baseline.json> <fresh.json>... \
             [--max-regression 0.30] [--skip <substring>]... [--emit <merged.json>]"
        );
        return ExitCode::from(2);
    };
    if fresh_paths.is_empty() {
        eprintln!("bench_trend: need at least one fresh report after the baseline");
        return ExitCode::from(2);
    }
    let baseline = match parse_report(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::from(2);
        }
    };
    let mut runs = Vec::new();
    for path in fresh_paths {
        match parse_report(path) {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("bench_trend: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let fresh = merge_runs(&runs);

    println!(
        "{:<52} {:>14} {:>14} {:>8} {:>6}",
        "series", "baseline ops/s", "fresh ops/s", "delta", "gate"
    );
    let mut regressions = Vec::new();
    for (name, merged) in &fresh {
        match baseline.get(name) {
            Some(base) if base.ops_per_sec > 0.0 => {
                let delta = merged.best / base.ops_per_sec - 1.0;
                let gate = threshold_for(base.ops_cv, max_regression);
                let skipped = skips.iter().any(|s| name.contains(s.as_str()));
                let flag = if delta < -gate {
                    if skipped {
                        "  (regressed, skipped)"
                    } else {
                        "  << REGRESSION"
                    }
                } else {
                    ""
                };
                println!(
                    "{name:<52} {:>14.1} {:>14.1} {:>+7.1}% {:>5.0}%{flag}",
                    base.ops_per_sec,
                    merged.best,
                    delta * 100.0,
                    gate * 100.0,
                );
                if delta < -gate && !skipped {
                    regressions.push((name.clone(), delta, gate));
                }
            }
            _ => println!("{name:<52} {:>14} {:>14.1}      new", "-", merged.best),
        }
    }
    for (name, base) in baseline.iter().filter(|(n, _)| !fresh.contains_key(*n)) {
        println!("{name:<52} {:>14.1} {:>14}  retired", base.ops_per_sec, "-");
    }

    if let Some(path) = emit {
        // The merged best-of-N series with cross-run variance, in the
        // shim's report format: this is what CI uploads (and what gets
        // committed as the refreshed baseline), so a single throttled run
        // can never ratchet the baseline downward — and the recorded
        // variance is what lets the next gate tighten below the default.
        if let Err(e) = std::fs::write(&path, render_emit(&fresh)) {
            eprintln!("bench_trend: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("merged best-of-{} series written to {path}", fresh_paths.len());
    }

    if regressions.is_empty() {
        println!(
            "\nbench_trend: OK — no series regressed beyond its gate (default {:.0}%, \
             tightened to {:.0}% where baseline cv < {:.0}%)",
            max_regression * 100.0,
            TIGHT_REGRESSION.min(max_regression) * 100.0,
            LOW_VARIANCE_CV * 100.0,
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nbench_trend: FAIL — {} series regressed beyond their gate:",
            regressions.len()
        );
        for (name, delta, gate) in &regressions {
            eprintln!("  {name}: {:+.1}% (gate {:.0}%)", delta * 100.0, gate * 100.0);
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_records_with_and_without_variance() {
        let text = r#"{
  "benchmarks": [
    {"name": "a/b", "ns_per_iter": 10, "elements_per_iter": 1, "ns_per_op": 10.0, "ops_per_sec": 100000.0},
    {"name": "c/d", "ns_per_iter": 20, "elements_per_iter": 1, "ns_per_op": 20.0, "ops_per_sec": 50000.0, "ops_stddev": 1000.0, "ops_cv": 0.0200}
  ]
}"#;
        let series = parse_report_text(text, "test").unwrap();
        assert_eq!(series["a/b"], Record { ops_per_sec: 100000.0, ops_cv: None });
        assert_eq!(series["c/d"], Record { ops_per_sec: 50000.0, ops_cv: Some(0.02) });
        assert!(parse_report_text("{}", "empty").is_err());
    }

    #[test]
    fn merge_takes_best_and_computes_cv() {
        let run = |ops: f64| {
            let mut s = Series::new();
            s.insert("x".into(), Record { ops_per_sec: ops, ops_cv: None });
            s
        };
        let merged = merge_runs(&[run(90.0), run(110.0), run(100.0)]);
        let m = &merged["x"];
        assert_eq!(m.best, 110.0);
        assert_eq!(m.mean, 100.0);
        // stddev of {90,110,100} (population) = sqrt(200/3) ≈ 8.165; mean 100.
        let cv = m.cv.expect("3 samples yield a cv");
        assert!((cv - 0.081_65).abs() < 1e-4, "cv was {cv}");
        // The emitted stddev column is cv × mean (the actual stddev), not
        // cv × best.
        let mut one = BTreeMap::new();
        one.insert("x".to_string(), m.clone());
        let emitted = render_emit(&one);
        let stddev =
            number_field(emitted.lines().find(|l| l.contains("\"x\"")).unwrap(), "ops_stddev")
                .unwrap();
        assert!((stddev - cv * 100.0).abs() < 0.1, "stddev was {stddev}");
    }

    #[test]
    fn single_run_records_no_variance() {
        let mut s = Series::new();
        s.insert("x".into(), Record { ops_per_sec: 100.0, ops_cv: None });
        let merged = merge_runs(&[s]);
        assert_eq!(merged["x"].cv, None, "one sample must not claim low variance");
    }

    #[test]
    fn gate_tightens_only_on_recorded_low_variance() {
        // No recorded variance: the default stands.
        assert_eq!(threshold_for(None, 0.30), 0.30);
        // Low recorded variance: tighten to 20%.
        assert_eq!(threshold_for(Some(0.05), 0.30), 0.20);
        // At or above the low-variance line: the default stands.
        assert_eq!(threshold_for(Some(0.10), 0.30), 0.30);
        assert_eq!(threshold_for(Some(0.25), 0.30), 0.30);
        // A user-tightened default is never loosened.
        assert_eq!(threshold_for(Some(0.05), 0.15), 0.15);
    }

    #[test]
    fn emit_roundtrips_through_the_parser() {
        let mut merged = BTreeMap::new();
        merged.insert(
            "s/one".to_string(),
            Merged { best: 250000.0, mean: 245000.0, cv: Some(0.034) },
        );
        merged.insert("s/two".to_string(), Merged { best: 1000.0, mean: 1000.0, cv: None });
        let text = render_emit(&merged);
        let parsed = parse_report_text(&text, "emitted").unwrap();
        assert_eq!(parsed["s/one"].ops_per_sec, 250000.0);
        assert_eq!(parsed["s/one"].ops_cv, Some(0.034));
        assert_eq!(parsed["s/two"], Record { ops_per_sec: 1000.0, ops_cv: None });
    }
}
