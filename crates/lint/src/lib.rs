//! # `apc-lint` — progress-condition static analysis
//!
//! Enforces the paper's asymmetric progress guarantees at the source level.
//! Functions declare their progress class with the inert
//! `#[progress(wait_free | bounded_wait_free | lock_free | obstruction_free
//! | blocking)]` attribute from `apc-progress-macros`; this crate lexes the
//! workspace, extracts functions and call sites, builds a name-resolved
//! call graph, and checks:
//!
//! * **R1 `progress`** — no strong-class fn transitively reaches a blocking
//!   primitive (`Mutex::lock`, channel `recv`, `thread::sleep`/`park`,
//!   `File::sync_*`, condvar waits) or a weak-annotated callee, except
//!   through `try_*` probes or an explicit waiver.
//! * **R2 `safety`** — every `unsafe` site carries `// SAFETY:` (or a
//!   `# Safety` doc section on `unsafe fn`).
//! * **R3 `relaxed`** — every `Ordering::Relaxed` carries `// RELAXED:`.
//! * **R4 `panic`** — no `unwrap`/`expect`/`panic!` in strong-class bodies.
//! * **R5 `reconfig`** — the PR-5 invariant: no reconfiguration-install
//!   operation reachable from a (bounded-)wait-free fn.
//!
//! Waive a finding in place with `// APC-LINT: allow(<rule>): <reason>`.
//!
//! Run it with `cargo run -p apc-lint -- --deny` (CI does).

pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use graph::Workspace;
use report::{CrateCoverage, Report};

/// Source roots scanned relative to the workspace root.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tools", "shims"];

/// Path components that mark non-production code.
const EXCLUDE_COMPONENTS: [&str; 4] = ["tests", "benches", "examples", "fixtures"];

/// Collects every production `.rs` file under the workspace root, sorted.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if EXCLUDE_COMPONENTS.contains(&name) || name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses and checks the workspace rooted at `root`.
///
/// Paths in the report are relative to `root`.
pub fn analyze(root: &Path) -> std::io::Result<(Workspace, Report)> {
    let files = collect_workspace_files(root)?;
    analyze_files(root, &files)
}

/// Parses and checks an explicit file list (used by fixture tests).
pub fn analyze_files(root: &Path, files: &[PathBuf]) -> std::io::Result<(Workspace, Report)> {
    let mut asts = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        asts.push(parse::parse_file(rel, &src));
    }
    let ws = Workspace::build(asts);
    let mut report = Report {
        findings: rules::run(&ws),
        files_scanned: ws.files.len(),
        fns_total: ws.files.iter().map(|f| f.fns.len()).sum(),
        fns_annotated: ws.files.iter().flat_map(|f| &f.fns).filter(|f| f.class.is_some()).count(),
        coverage: coverage_by_crate(&ws),
    };
    report.finish();
    Ok((ws, report))
}

/// Aggregates `annotated/total` function counts per crate — the
/// observability twin of the `--deny` gate: coverage is *surfaced* (in the
/// text report, the JSON artifact, and the CI step summary) so annotation
/// erosion is visible long before it becomes a reachability finding.
fn coverage_by_crate(ws: &Workspace) -> Vec<CrateCoverage> {
    let mut by_crate: std::collections::BTreeMap<String, (usize, usize)> =
        std::collections::BTreeMap::new();
    for file in &ws.files {
        let entry = by_crate.entry(crate_of(&file.path)).or_default();
        entry.0 += file.fns.len();
        entry.1 += file.fns.iter().filter(|f| f.class.is_some()).count();
    }
    by_crate
        .into_iter()
        .map(|(name, (fns_total, fns_annotated))| CrateCoverage { name, fns_total, fns_annotated })
        .collect()
}

/// The crate component of a repo-relative path: `crates/<name>` and
/// `shims/<name>` keep their second component, anything else (`src`,
/// `tools`, a fixture file handed in directly) is grouped by its first.
fn crate_of(rel: &Path) -> String {
    let mut comps = rel.components().filter_map(|c| c.as_os_str().to_str());
    match (comps.next(), comps.next()) {
        (Some(top @ ("crates" | "shims")), Some(name)) => format!("{top}/{name}"),
        (Some(top), _) => top.to_string(),
        (None, _) => String::from("(unknown)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_own_sources_excluding_tests() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_workspace_files(&root).unwrap();
        assert!(files.iter().any(|p| p.ends_with("crates/lint/src/lib.rs")));
        assert!(!files.iter().any(|p| {
            p.components()
                .any(|c| matches!(c.as_os_str().to_str(), Some("tests" | "benches" | "fixtures")))
        }));
    }
}
