//! The five rules, plus annotation validation and waiver checking.
//!
//! * `progress` (R1) — no strong-class fn (`wait_free`, `bounded_wait_free`,
//!   `lock_free`) transitively reaches a blocking primitive or a callee
//!   annotated `obstruction_free`/`blocking`. Traversal trusts strong
//!   annotations (each is verified as its own source) and cuts at `try_*`
//!   callees.
//! * `safety` (R2) — every `unsafe` site carries a `SAFETY` comment (or a
//!   `# Safety` doc section for `unsafe fn`).
//! * `relaxed` (R3) — every `Ordering::Relaxed` carries a `RELAXED:`
//!   justification comment.
//! * `panic` (R4) — no `unwrap`/`expect`/`panic!`-family in any
//!   *non-blocking* function body — strong classes and `obstruction_free`
//!   alike. A panicking guest aborts its thread, which is strictly worse
//!   than the unbounded-but-live retrying it promised; only `blocking`
//!   fns, which never promised liveness, may panic. (Plain asserts are
//!   allowed: they signal broken invariants, not environmental failure.)
//! * `reconfig` (R5) — the PR-5 invariant: no reconfiguration-install
//!   operation (`split_locked`, `merge_locked`, `elastic_tick`,
//!   `install_view`) is reachable from a (bounded-)wait-free fn.
//!
//! Any rule can be waived at a call/finding site with
//! `// APC-LINT: allow(<rule>): <reason>` on the line or up to two lines
//! above; the reason is mandatory and malformed waivers are themselves
//! findings (`waiver`).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::graph::{Call, CallKind, FnId, Workspace};
use crate::parse::{Class, FileAst};
use crate::report::Finding;

/// Rule ids a waiver may name.
const RULES: [&str; 5] = ["progress", "safety", "relaxed", "panic", "reconfig"];

/// Reconfiguration-install sinks for R5.
const RECONFIG_SINKS: [&str; 4] = ["split_locked", "merge_locked", "elastic_tick", "install_view"];

/// Method names that panic on failure (R4).
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that always panic (R4).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Is the given rule waived at `line` (or up to two lines above)?
fn waived(file: &FileAst, line: u32, rule: &str) -> bool {
    (line.saturating_sub(2)..=line).any(|l| {
        file.lexed
            .plain_comment(l)
            .and_then(parse_waiver)
            .is_some_and(|(r, reason)| r == rule && !reason.is_empty())
    })
}

/// Parses `.. APC-LINT: allow(<rule>): <reason>` out of a comment line.
/// Returns `(rule, reason)` when the shape is right, `None` otherwise.
fn parse_waiver(comment: &str) -> Option<(&str, &str)> {
    let rest = comment.split("APC-LINT").nth(1)?;
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix("allow")?.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    let reason = rest[close + 1..].strip_prefix(':')?.trim();
    Some((rule, reason))
}

/// Runs every rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_waiver_syntax(ws, &mut findings);
    check_annotations(ws, &mut findings);
    check_reachability(ws, &mut findings);
    run_reconfig(ws, &mut findings);
    check_safety(ws, &mut findings);
    check_relaxed(ws, &mut findings);
    check_panic(ws, &mut findings);
    findings
}

fn file_name(ws: &Workspace, file: usize) -> String {
    ws.files[file].path.display().to_string()
}

/// `waiver`: every comment mentioning APC-LINT must be a well-formed waiver
/// naming a known rule with a non-empty reason.
fn check_waiver_syntax(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        let mut lines: Vec<&u32> = file.lexed.plain.keys().collect();
        lines.sort();
        for &line in lines {
            let comment = &file.lexed.plain[&line];
            if !comment.contains("APC-LINT") {
                continue;
            }
            match parse_waiver(comment) {
                Some((rule, reason)) if RULES.contains(&rule) && !reason.is_empty() => {}
                Some((rule, reason)) if RULES.contains(&rule) && reason.is_empty() => {
                    findings.push(Finding {
                        rule: "waiver",
                        file: file_name(ws, fi),
                        line,
                        message: format!("waiver for `{rule}` is missing its reason"),
                        path: Vec::new(),
                    });
                }
                Some((rule, _)) => findings.push(Finding {
                    rule: "waiver",
                    file: file_name(ws, fi),
                    line,
                    message: format!(
                        "waiver names unknown rule `{rule}`; expected one of: {}",
                        RULES.join(", ")
                    ),
                    path: Vec::new(),
                }),
                None => findings.push(Finding {
                    rule: "waiver",
                    file: file_name(ws, fi),
                    line,
                    message: "malformed waiver; expected `APC-LINT: allow(<rule>): <reason>`"
                        .into(),
                    path: Vec::new(),
                }),
            }
        }
    }
}

/// `annotation`: `#[progress(..)]` with an unknown class (the proc macro
/// rejects these at compile time; this covers un-compiled fixtures too).
fn check_annotations(ws: &Workspace, findings: &mut Vec<Finding>) {
    for id in ws.all_fns() {
        let f = ws.fn_info(id);
        if let Some(bad) = &f.unknown_class {
            findings.push(Finding {
                rule: "annotation",
                file: file_name(ws, id.file),
                line: f.line,
                message: format!("fn `{}` declares unknown progress class `{bad}`", f.qualified()),
                path: Vec::new(),
            });
        }
    }
}

/// Shared BFS over the call graph from `source`, invoking `visit` for every
/// reachable call site with its owning function. Traversal trusts
/// strong-annotated callees and skips test functions; `cut_rule` waivers cut
/// edges entirely.
fn bfs_calls(
    ws: &Workspace,
    source: FnId,
    cut_rule: &str,
    mut visit: impl FnMut(FnId, &Call, &[String]),
) {
    let mut queue = VecDeque::new();
    let mut seen = HashSet::new();
    // Chain of qualified names from the source to (and including) each
    // enqueued fn.
    let mut chains: HashMap<FnId, Vec<String>> = HashMap::new();
    queue.push_back(source);
    seen.insert(source);
    chains.insert(source, vec![ws.fn_info(source).qualified()]);
    while let Some(cur) = queue.pop_front() {
        let chain = chains[&cur].clone();
        for call in ws.calls_of(cur) {
            if waived(&ws.files[cur.file], call.line, cut_rule) {
                continue;
            }
            visit(cur, call, &chain);
            for target in ws.resolve(cur, call) {
                let tf = ws.fn_info(target);
                if tf.is_test || tf.class.is_some_and(Class::is_strong) {
                    continue; // trusted boundary / not live code
                }
                if tf.class.is_some() {
                    continue; // weak-annotated: reported by visit, not entered
                }
                if seen.insert(target) {
                    let mut c = chain.clone();
                    c.push(tf.qualified());
                    chains.insert(target, c);
                    queue.push_back(target);
                }
            }
        }
    }
}

/// `progress` (R1): strong fns must not reach blocking primitives or
/// weak-annotated callees.
fn check_reachability(ws: &Workspace, findings: &mut Vec<Finding>) {
    for source in ws.all_fns() {
        let sf = ws.fn_info(source);
        if sf.is_test || !sf.class.is_some_and(Class::is_strong) {
            continue;
        }
        let class = sf.class.expect("checked above").name();
        let src_name = sf.qualified();
        let mut reported = HashSet::new();
        bfs_calls(ws, source, "progress", |owner, call, chain| {
            let site = (owner.file, call.line, call.name.clone());
            if ws.is_blocking_primitive(owner.file, call) {
                if reported.insert(site) {
                    let mut path = chain.to_vec();
                    path.push(format!(
                        "{} @ {}:{}",
                        call.name,
                        file_name(ws, owner.file),
                        call.line
                    ));
                    findings.push(Finding {
                        rule: "progress",
                        file: file_name(ws, owner.file),
                        line: call.line,
                        message: format!(
                            "{class} fn `{src_name}` reaches blocking primitive `{}`",
                            call.name
                        ),
                        path,
                    });
                }
                return;
            }
            for target in ws.resolve(owner, call) {
                let tf = ws.fn_info(target);
                if tf.is_test {
                    continue;
                }
                if let Some(tc) = tf.class {
                    if !tc.is_strong() {
                        let site = (owner.file, call.line, tf.qualified());
                        if reported.insert(site) {
                            let mut path = chain.to_vec();
                            path.push(format!(
                                "{} [{}] @ {}:{}",
                                tf.qualified(),
                                tc.name(),
                                file_name(ws, owner.file),
                                call.line
                            ));
                            findings.push(Finding {
                                rule: "progress",
                                file: file_name(ws, owner.file),
                                line: call.line,
                                message: format!(
                                    "{class} fn `{src_name}` calls `{}` which is only {}",
                                    tf.qualified(),
                                    tc.name()
                                ),
                                path,
                            });
                        }
                    }
                }
            }
        });
    }
}

/// `reconfig` (R5): no reconfiguration-install operation reachable from a
/// (bounded-)wait-free fn.
fn check_reconfig(
    ws: &Workspace,
    source: FnId,
    findings: &mut Vec<Finding>,
    reported: &mut HashSet<(usize, u32, String)>,
) {
    let src_name = ws.fn_info(source).qualified();
    let class = ws.fn_info(source).class.expect("source is annotated").name();
    bfs_calls(ws, source, "reconfig", |owner, call, chain| {
        if RECONFIG_SINKS.contains(&call.name.as_str()) {
            let site = (owner.file, call.line, call.name.clone());
            if reported.insert(site) {
                let mut path = chain.to_vec();
                path.push(format!("{} @ {}:{}", call.name, file_name(ws, owner.file), call.line));
                findings.push(Finding {
                    rule: "reconfig",
                    file: file_name(ws, owner.file),
                    line: call.line,
                    message: format!(
                        "{class} fn `{src_name}` reaches reconfiguration-install \
                         operation `{}`",
                        call.name
                    ),
                    path,
                });
            }
        }
    });
}

/// `safety` (R2): every `unsafe` site needs a SAFETY comment; `unsafe fn`
/// may instead carry a `# Safety` doc section.
fn check_safety(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        for site in &file.unsafes {
            if file.is_test_line(site.line) {
                continue;
            }
            let ok = match site.kind {
                "fn" | "trait" | "impl" => {
                    file.lexed.comment_near(site.line, 15, "SAFETY")
                        || file.lexed.comment_near(site.line, 15, "# Safety")
                }
                // 5-line lookback: a multi-line SAFETY comment above a
                // wrapped statement keeps its marker a few lines up.
                _ => file.lexed.comment_near(site.line, 5, "SAFETY"),
            };
            if !ok && !waived(file, site.line, "safety") {
                findings.push(Finding {
                    rule: "safety",
                    file: file_name(ws, fi),
                    line: site.line,
                    message: format!(
                        "unsafe {} without a `// SAFETY:` comment{}",
                        site.kind,
                        if site.kind == "fn" { " or `# Safety` doc section" } else { "" }
                    ),
                    path: Vec::new(),
                });
            }
        }
    }
}

/// `relaxed` (R3): every `Ordering::Relaxed` needs a `RELAXED:` comment.
fn check_relaxed(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        for &line in &file.relaxed {
            if file.is_test_line(line) {
                continue;
            }
            if !file.lexed.comment_near(line, 3, "RELAXED") && !waived(file, line, "relaxed") {
                findings.push(Finding {
                    rule: "relaxed",
                    file: file_name(ws, fi),
                    line,
                    message: "Ordering::Relaxed without a `// RELAXED:` justification".into(),
                    path: Vec::new(),
                });
            }
        }
    }
}

/// `panic` (R4): non-blocking bodies must not unwrap/expect or panic.
/// Covers the strong classes *and* `obstruction_free`: the guest tier's
/// promise is weak but real, and a panic forfeits it entirely.
fn check_panic(ws: &Workspace, findings: &mut Vec<Finding>) {
    for id in ws.all_fns() {
        let f = ws.fn_info(id);
        if f.is_test || !f.class.is_some_and(Class::is_nonblocking) {
            continue;
        }
        let class = f.class.expect("checked above").name();
        let qualified = f.qualified();
        for call in ws.calls_of(id) {
            let hit = match &call.kind {
                CallKind::Method(_) => PANIC_METHODS.contains(&call.name.as_str()),
                CallKind::Macro => PANIC_MACROS.contains(&call.name.as_str()),
                _ => false,
            };
            if hit && !waived(&ws.files[id.file], call.line, "panic") {
                let spelled = match call.kind {
                    CallKind::Macro => format!("{}!", call.name),
                    _ => call.name.clone(),
                };
                findings.push(Finding {
                    rule: "panic",
                    file: file_name(ws, id.file),
                    line: call.line,
                    message: format!(
                        "{class} fn `{qualified}` uses `{spelled}` in its commit path"
                    ),
                    path: Vec::new(),
                });
            }
        }
    }
}

/// R5 across all sources (separate from the R1 loop so waivers stay
/// per-rule).
fn run_reconfig(ws: &Workspace, findings: &mut Vec<Finding>) {
    let mut reported = HashSet::new();
    for source in ws.all_fns() {
        let f = ws.fn_info(source);
        if f.is_test || !matches!(f.class, Some(Class::WaitFree) | Some(Class::BoundedWaitFree)) {
            continue;
        }
        check_reconfig(ws, source, findings, &mut reported);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use std::path::PathBuf;

    fn analyze(srcs: &[&str]) -> Vec<Finding> {
        let ws = Workspace::build(
            srcs.iter()
                .enumerate()
                .map(|(i, s)| parse_file(PathBuf::from(format!("f{i}.rs")), s))
                .collect(),
        );
        run(&ws)
    }

    #[test]
    fn waiver_parsing() {
        assert_eq!(
            parse_waiver(" APC-LINT: allow(progress): ports are exclusively owned"),
            Some(("progress", "ports are exclusively owned"))
        );
        assert_eq!(parse_waiver(" APC-LINT: allow(progress):"), Some(("progress", "")));
        assert_eq!(parse_waiver(" APC-LINT: allow progress"), None);
    }

    #[test]
    fn direct_blocking_call_flagged() {
        let f = analyze(&[
            "struct S; impl S {\n#[progress(wait_free)]\nfn f(&self) { self.m.lock(); }\n}",
        ]);
        assert_eq!(f.iter().filter(|x| x.rule == "progress").count(), 1);
        assert!(f[0].message.contains("blocking primitive `lock`"));
    }

    #[test]
    fn two_hop_transitive_blocking_flagged_with_path() {
        let f = analyze(&[
            "#[progress(wait_free)]\nfn a() { b(); }\nfn b() { c(); }\nfn c() { std::thread::sleep(d); }",
        ]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "progress").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, vec!["a", "b", "c", "sleep @ f0.rs:4"]);
    }

    #[test]
    fn weak_annotated_callee_flagged() {
        let f = analyze(&[
            "struct S; impl S {\n#[progress(lock_free)]\nfn f(&self) { self.spin(); }\n\
             #[progress(blocking)]\nfn spin(&self) { loop {} }\n}",
        ]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "progress").collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("only blocking"));
    }

    #[test]
    fn strong_annotated_callee_is_trusted_boundary() {
        // `g` is lock_free and internally waives its own lock; `f` calling
        // `g` must not re-traverse into it.
        let f = analyze(&[
            "struct S; impl S {\n#[progress(wait_free)]\nfn f(&self) { self.g(); }\n\
             #[progress(lock_free)]\nfn g(&self) {\n// APC-LINT: allow(progress): benign\nself.m.lock(); }\n}",
        ]);
        assert_eq!(f.iter().filter(|x| x.rule == "progress").count(), 0);
    }

    #[test]
    fn waiver_cuts_edge_and_requires_reason() {
        let ok = analyze(&[
            "#[progress(wait_free)]\nfn f() {\n// APC-LINT: allow(progress): uncontended by design\nm.lock(); }",
        ]);
        assert_eq!(ok.iter().filter(|x| x.rule == "progress").count(), 0);
        let bad = analyze(&[
            "#[progress(wait_free)]\nfn f() {\n// APC-LINT: allow(progress):\nm.lock(); }",
        ]);
        assert_eq!(bad.iter().filter(|x| x.rule == "progress").count(), 1);
        assert_eq!(bad.iter().filter(|x| x.rule == "waiver").count(), 1);
    }

    #[test]
    fn unknown_rule_waiver_flagged() {
        let f = analyze(&["// APC-LINT: allow(speed): gotta go fast\nfn f() {}"]);
        assert_eq!(f.iter().filter(|x| x.rule == "waiver").count(), 1);
    }

    #[test]
    fn safety_comment_required() {
        let f = analyze(&[
            "fn f() { unsafe { g() } }\n// SAFETY: checked above\nfn h() { unsafe { g() } }",
        ]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "safety").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc() {
        let f = analyze(&["/// # Safety\n/// ptr must be valid\npub unsafe fn g(p: *const u8) {}"]);
        assert_eq!(f.iter().filter(|x| x.rule == "safety").count(), 0);
    }

    #[test]
    fn relaxed_needs_justification() {
        let f = analyze(&[
            "fn f(a: &AtomicU64) {\n// RELAXED: monotonic counter, no ordering needed\na.load(Ordering::Relaxed);\na.store(1, Ordering::Relaxed);\n}",
        ]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "relaxed").collect();
        // Line 3 is covered by the comment's 3-line lookback... and so is
        // line 4 (lookback reaches line 2). Move the second Relaxed further.
        assert_eq!(hits.len(), 0);
        let far = analyze(&[
            "fn f(a: &AtomicU64) {\n// RELAXED: counter\na.load(Ordering::Relaxed);\nlet x = 1;\nlet y = 2;\nlet z = 3;\na.store(1, Ordering::Relaxed);\n}",
        ]);
        assert_eq!(far.iter().filter(|x| x.rule == "relaxed").count(), 1);
    }

    #[test]
    fn relaxed_in_tests_ignored() {
        let f = analyze(&[
            "#[cfg(test)]\nmod tests {\nfn t(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}",
        ]);
        assert_eq!(f.iter().filter(|x| x.rule == "relaxed").count(), 0);
    }

    #[test]
    fn panic_in_strong_fn_flagged() {
        let f = analyze(&[
            "struct S; impl S {\n#[progress(wait_free)]\nfn f(&self) { self.x.load().unwrap(); }\n\
             #[progress(blocking)]\nfn g(&self) { self.x.load().unwrap(); }\n}",
        ]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "panic").collect();
        assert_eq!(hits.len(), 1); // only the wait_free one
        assert!(hits[0].message.contains("`unwrap`"));
    }

    #[test]
    fn panic_in_obstruction_free_fn_flagged() {
        // The guest tier promised unbounded-but-live retrying; an abort
        // forfeits that, so R4 covers obstruction_free too. Only
        // `blocking` — which never promised liveness — may panic.
        let f = analyze(&[
            "struct S; impl S {\n#[progress(obstruction_free)]\nfn g(&self) { self.slot.take().expect(\"occupied\"); }\n\
             #[progress(blocking)]\nfn b(&self) { self.slot.take().expect(\"occupied\"); }\n}",
        ]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "panic").collect();
        assert_eq!(hits.len(), 1); // only the obstruction_free one
        assert!(hits[0].message.contains("obstruction_free fn `S::g`"));
    }

    #[test]
    fn panic_macro_flagged_assert_allowed() {
        let f =
            analyze(&["#[progress(wait_free)]\nfn f() { assert_ne!(1, 2); panic!(\"boom\"); }"]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "panic").collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("panic!"));
    }

    #[test]
    fn reconfig_sink_reachable_from_wait_free() {
        let f = analyze(&[
            "struct S; impl S {\n#[progress(bounded_wait_free)]\nfn commit(&self) { self.step(); }\n\
             fn step(&self) { self.engine.elastic_tick(); }\n}",
        ]);
        let hits: Vec<_> = f.iter().filter(|x| x.rule == "reconfig").collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("elastic_tick"));
        // lock_free sources are NOT subject to R5.
        let lf = analyze(&[
            "struct S; impl S {\n#[progress(lock_free)]\nfn maint(&self) { self.engine.elastic_tick(); }\n}",
        ]);
        assert_eq!(lf.iter().filter(|x| x.rule == "reconfig").count(), 0);
    }

    #[test]
    fn unknown_class_flagged() {
        let f = analyze(&["#[progress(sometimes_fast)]\nfn f() {}"]);
        assert_eq!(f.iter().filter(|x| x.rule == "annotation").count(), 1);
    }

    #[test]
    fn try_call_is_allowlisted() {
        let f = analyze(&[
            "struct S; impl S {\n#[progress(wait_free)]\nfn f(&self) { self.try_admit(); }\n\
             fn try_admit(&self) { self.m.lock(); }\n}",
        ]);
        assert_eq!(f.iter().filter(|x| x.rule == "progress").count(), 0);
    }
}
