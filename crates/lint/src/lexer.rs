//! A hand-rolled Rust lexer: just enough to drive item extraction and
//! call-site scanning.
//!
//! The lexer produces a flat token stream with line numbers and a separate
//! per-line comment table (rules consult comments for `// SAFETY:`,
//! `// RELAXED:` and `// APC-LINT:` markers). String, char and numeric
//! literal *contents* are discarded — nothing inside a literal can be a call
//! site — and nested block comments, raw strings and the `'a` lifetime vs
//! `'a'` char ambiguity are handled so brace matching never desynchronizes.

use std::collections::HashMap;

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token kind (with identifier text inline).
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Kinds of token the analyzer distinguishes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A lifetime or loop label (`'a`), argument text dropped.
    Lifetime,
    /// Any literal (string, raw string, char, byte, number); contents dropped.
    Literal,
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// `(`, `[` or `{`.
    Open(Delim),
    /// `)`, `]` or `}`.
    Close(Delim),
}

/// Bracket delimiters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Lexer output: the token stream plus the comment text seen on each line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Tok>,
    /// Comment text per 1-based line (all comments on a line concatenated;
    /// multi-line block comments contribute to every line they span).
    pub comments: HashMap<u32, String>,
    /// Plain (non-doc) comment text per line — the only place waiver
    /// directives are honored, so documentation may mention their syntax.
    pub plain: HashMap<u32, String>,
}

impl Lexed {
    /// Returns true if any comment on `line` contains `needle`.
    pub fn comment_contains(&self, line: u32, needle: &str) -> bool {
        self.comments.get(&line).is_some_and(|c| c.contains(needle))
    }

    /// Returns true if a comment containing `needle` appears on `line` or on
    /// one of the `lookback` lines directly above it.
    pub fn comment_near(&self, line: u32, lookback: u32, needle: &str) -> bool {
        (line.saturating_sub(lookback)..=line).any(|l| self.comment_contains(l, needle))
    }

    /// The plain (non-doc) comment text on `line`, if any.
    pub fn plain_comment(&self, line: u32) -> Option<&str> {
        self.plain.get(&line).map(String::as_str)
    }
}

/// Is this comment text a doc comment (`///`, `//!`, `/**`, `/*!`)?
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
        || text.starts_with("/*!")
}

/// Tokenizes `src`. Never fails: unterminated constructs consume to EOF.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (including /// and //! doc comments).
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                out.comments.entry(line).or_default().push_str(text);
                if !is_doc_comment(text) {
                    out.plain.entry(line).or_default().push_str(text);
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested; contributes to every line
                // it spans.
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text = &src[start..i];
                for l in start_line..=line {
                    out.comments.entry(l).or_default().push_str(text);
                    if !is_doc_comment(text) {
                        out.plain.entry(l).or_default().push_str(text);
                    }
                }
            }
            b'"' => {
                let consumed = scan_string(&bytes[i..]);
                bump_lines!(&bytes[i..i + consumed]);
                out.tokens.push(Tok { kind: TokKind::Literal, line });
                i += consumed;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let consumed = scan_raw_or_byte(bytes, i);
                out.tokens.push(Tok { kind: TokKind::Literal, line });
                bump_lines!(&bytes[i..i + consumed]);
                i += consumed;
            }
            b'\'' => {
                let (consumed, kind) = scan_quote(bytes, i);
                out.tokens.push(Tok { kind, line });
                i += consumed;
            }
            b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        i += 1;
                    } else if c == b'.'
                        && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        && bytes.get(i.wrapping_sub(1)) != Some(&b'.')
                    {
                        // `1.5` continues the number; `1..2` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                let _ = start;
                out.tokens.push(Tok { kind: TokKind::Literal, line });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Tok { kind: TokKind::Ident(src[start..i].to_string()), line });
            }
            b'(' => {
                out.tokens.push(Tok { kind: TokKind::Open(Delim::Paren), line });
                i += 1;
            }
            b')' => {
                out.tokens.push(Tok { kind: TokKind::Close(Delim::Paren), line });
                i += 1;
            }
            b'[' => {
                out.tokens.push(Tok { kind: TokKind::Open(Delim::Bracket), line });
                i += 1;
            }
            b']' => {
                out.tokens.push(Tok { kind: TokKind::Close(Delim::Bracket), line });
                i += 1;
            }
            b'{' => {
                out.tokens.push(Tok { kind: TokKind::Open(Delim::Brace), line });
                i += 1;
            }
            b'}' => {
                out.tokens.push(Tok { kind: TokKind::Close(Delim::Brace), line });
                i += 1;
            }
            c => {
                out.tokens.push(Tok { kind: TokKind::Punct(c as char), line });
                i += 1;
            }
        }
    }
    out
}

/// Length of a `"..."` string starting at offset 0 (which must be `"`).
fn scan_string(bytes: &[u8]) -> usize {
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Does `r"`, `r#"`, `br"`, `b"`, `b'`... start a raw/byte string here?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
        return j < bytes.len() && bytes[j] == b'"';
    }
    // b"..." or b'x'
    bytes[i] == b'b' && j < bytes.len() && (bytes[j] == b'"' || bytes[j] == b'\'')
}

/// Length of the raw/byte string starting at `i`.
fn scan_raw_or_byte(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        let mut hashes = 0;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
                // Scan for `"` followed by `hashes` `#`s.
        while j < bytes.len() {
            if bytes[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0;
                while seen < hashes && k < bytes.len() && bytes[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k - i;
                }
            }
            j += 1;
        }
        return j - i;
    }
    if bytes[j] == b'"' {
        return j - i + scan_string(&bytes[j..]);
    }
    // b'x' byte char
    let (len, _) = scan_quote(bytes, j);
    j - i + len
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) starting at a `'`.
fn scan_quote(bytes: &[u8], i: usize) -> (usize, TokKind) {
    let next = bytes.get(i + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: consume to closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return (j - i + 1, TokKind::Literal),
                    _ => j += 1,
                }
            }
            (j - i, TokKind::Literal)
        }
        Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
            // Identifier-ish: lifetime unless a closing quote follows the
            // single character (`'a'`).
            let mut j = i + 2;
            while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if j == i + 2 && bytes.get(j) == Some(&b'\'') {
                (3, TokKind::Literal)
            } else {
                (j - i, TokKind::Lifetime)
            }
        }
        Some(_) => {
            // Some other char literal like '+' or '0'.
            let mut j = i + 1;
            while j < bytes.len() {
                if bytes[j] == b'\'' {
                    return (j - i + 1, TokKind::Literal);
                }
                if bytes[j] == b'\n' {
                    break;
                }
                j += 1;
            }
            (j - i, TokKind::Literal)
        }
        None => (1, TokKind::Punct('\'')),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn a() {\n  b();\n}");
        assert_eq!(l.tokens[0].kind, TokKind::Ident("fn".into()));
        let b = l.tokens.iter().find(|t| t.kind == TokKind::Ident("b".into())).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        assert_eq!(
            idents(r#"let x = "call(me)"; let c = '('; let s = 'a';"#),
            vec!["let", "x", "let", "c", "let", "s"]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(!l.tokens.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let x = r#"embedded "quote" and } brace"#; let y = 1;"###);
        let closes =
            l.tokens.iter().filter(|t| matches!(t.kind, TokKind::Close(Delim::Brace))).count();
        assert_eq!(closes, 0);
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Ident("y".into())));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(idents("/* outer /* inner */ still */ fn f() {}"), vec!["fn", "f"]);
        assert!(l.comments.get(&1).unwrap().contains("inner"));
    }

    #[test]
    fn comment_table_records_markers() {
        let l = lex("// SAFETY: fine\nunsafe { x() }\n");
        assert!(l.comment_near(2, 3, "SAFETY"));
        assert!(!l.comment_near(1, 0, "RELAXED"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let l = lex("/* SAFETY:\n   spans\n*/\nunsafe {}\n");
        assert!(l.comment_near(4, 3, "SAFETY"));
    }

    #[test]
    fn numeric_ranges_do_not_eat_dots() {
        let l = lex("for i in 0..10 { }");
        let dots = l.tokens.iter().filter(|t| t.kind == TokKind::Punct('.')).count();
        assert_eq!(dots, 2);
    }
}
