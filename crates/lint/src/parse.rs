//! Item extraction: functions, impl blocks, struct fields, `unsafe` and
//! `Ordering::Relaxed` sites, with `#[cfg(test)]` scoping.
//!
//! This is not a full parser — it is a structural walk of the token stream
//! that recovers exactly what the rules need: every function (qualified by
//! its impl/trait type) with its attribute-declared progress class and body
//! token range, plus the line spans of test-only code so rules can skip it.

use std::collections::HashMap;
use std::path::PathBuf;

use crate::lexer::{lex, Delim, Lexed, Tok, TokKind};

/// The five progress classes of `#[progress(..)]`, weakest first (so `Ord`
/// compares strength).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// May wait on other processes indefinitely (by design).
    Blocking,
    /// Terminates when run long enough in isolation.
    ObstructionFree,
    /// Some concurrent caller always makes progress.
    LockFree,
    /// Wait-free with an a-priori step bound.
    BoundedWaitFree,
    /// Terminates in a finite number of the caller's own steps.
    WaitFree,
}

impl Class {
    /// Parses a class identifier as written in the attribute.
    pub fn parse(name: &str) -> Option<Class> {
        Some(match name {
            "wait_free" => Class::WaitFree,
            "bounded_wait_free" => Class::BoundedWaitFree,
            "lock_free" => Class::LockFree,
            "obstruction_free" => Class::ObstructionFree,
            "blocking" => Class::Blocking,
            _ => return None,
        })
    }

    /// The attribute spelling.
    pub fn name(self) -> &'static str {
        match self {
            Class::WaitFree => "wait_free",
            Class::BoundedWaitFree => "bounded_wait_free",
            Class::LockFree => "lock_free",
            Class::ObstructionFree => "obstruction_free",
            Class::Blocking => "blocking",
        }
    }

    /// Classes whose promises the analyzer enforces transitively.
    pub fn is_strong(self) -> bool {
        matches!(self, Class::WaitFree | Class::BoundedWaitFree | Class::LockFree)
    }

    /// Classes that promise *some* liveness — everything above `blocking`.
    /// R4 holds these to a no-panic standard: even the obstruction-free
    /// tier promised to keep retrying, and an abort is strictly worse
    /// than waiting.
    pub fn is_nonblocking(self) -> bool {
        self != Class::Blocking
    }
}

/// One extracted function.
#[derive(Debug)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// Impl or trait type the function is associated with, if any.
    pub self_type: Option<String>,
    /// 1-based line of the function name.
    pub line: u32,
    /// True when the function is test-only (`#[cfg(test)]`, `#[test]`, or
    /// inside a test module).
    pub is_test: bool,
    /// Declared progress class, if annotated.
    pub class: Option<Class>,
    /// An unknown class name written in `#[progress(..)]`, if any.
    pub unknown_class: Option<String>,
    /// Token index range of the body (exclusive of the braces), if present.
    pub body: Option<(usize, usize)>,
}

impl FnInfo {
    /// `Type::name` or `name`.
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An `unsafe` occurrence.
#[derive(Debug)]
pub struct UnsafeSite {
    /// 1-based line.
    pub line: u32,
    /// "block", "fn", "impl" or "trait".
    pub kind: &'static str,
}

/// Everything extracted from one file.
#[derive(Debug)]
pub struct FileAst {
    /// Path as given to [`parse_file`].
    pub path: PathBuf,
    /// Lexer output (token stream + comment table).
    pub lexed: Lexed,
    /// All functions, in source order.
    pub fns: Vec<FnInfo>,
    /// All `unsafe` sites.
    pub unsafes: Vec<UnsafeSite>,
    /// Lines with an `.. :: Relaxed` token sequence.
    pub relaxed: Vec<u32>,
    /// Struct field name → base type name (empty string = ambiguous).
    pub fields: HashMap<String, String>,
    /// Whether the file mentions `RwLock` (gates the `read`/`write` rule).
    pub has_rwlock: bool,
    /// Line spans (inclusive) of test-only items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileAst {
    /// Is `line` inside test-only code?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Mutable accumulator threaded through the item walk (kept separate from
/// the token stream so the walk borrows tokens immutably).
#[derive(Default)]
struct Extract {
    fns: Vec<FnInfo>,
    fields: HashMap<String, String>,
    test_ranges: Vec<(u32, u32)>,
}

/// Attributes collected in front of an item.
#[derive(Default)]
struct Attrs {
    cfg_test: bool,
    is_test_fn: bool,
    class: Option<Class>,
    unknown_class: Option<String>,
}

/// Parses one file's source text.
pub fn parse_file(path: PathBuf, src: &str) -> FileAst {
    let lexed = lex(src);
    let has_rwlock =
        lexed.tokens.iter().any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "RwLock"));
    let mut st = Extract::default();
    let mut i = 0usize;
    parse_items(&lexed.tokens, &mut i, None, false, &mut st);
    let (unsafes, relaxed) = scan_unsafe_and_relaxed(&lexed.tokens);
    FileAst {
        path,
        lexed,
        fns: st.fns,
        unsafes,
        relaxed,
        fields: st.fields,
        has_rwlock,
        test_ranges: st.test_ranges,
    }
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

fn is_open(toks: &[Tok], i: usize, d: Delim) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Open(k)) if *k == d)
}

/// Advances past a balanced delimiter group whose opener is at `*i`.
fn skip_group(toks: &[Tok], i: &mut usize) {
    let mut depth = 0usize;
    while *i < toks.len() {
        match toks[*i].kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return;
                }
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Advances past a balanced `<...>` group whose `<` is at `*i`, treating the
/// `->` arrow as opaque (so `Fn() -> T` inside bounds does not unbalance).
pub(crate) fn skip_angles(toks: &[Tok], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match toks[*i].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                let arrow = *i > 0 && matches!(toks[*i - 1].kind, TokKind::Punct('-'));
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        return;
                    }
                }
            }
            TokKind::Open(_) => {
                skip_group(toks, i);
                continue;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Collects `#[...]` / `#![...]` attributes starting at `*i`.
fn collect_attrs(toks: &[Tok], i: &mut usize) -> Attrs {
    let mut attrs = Attrs::default();
    while is_punct(toks, *i, '#') {
        let mut j = *i + 1;
        if is_punct(toks, j, '!') {
            j += 1;
        }
        if !is_open(toks, j, Delim::Bracket) {
            break;
        }
        let start = j;
        let mut end = j;
        skip_group(toks, &mut end);
        let content: Vec<&str> = (start..end).filter_map(|k| ident_at(toks, k)).collect();
        if content.contains(&"cfg") && content.contains(&"test") && !content.contains(&"not") {
            attrs.cfg_test = true;
        }
        if content == ["test"] || content.first() == Some(&"should_panic") {
            attrs.is_test_fn = true;
        }
        if let Some(pos) = content.iter().position(|s| *s == "progress") {
            match content.get(pos + 1) {
                Some(class_name) => match Class::parse(class_name) {
                    Some(c) => attrs.class = Some(c),
                    None => attrs.unknown_class = Some((*class_name).to_string()),
                },
                None => attrs.unknown_class = Some(String::new()),
            }
        }
        *i = end;
    }
    attrs
}

/// Scans to the next `{` at bracket depth 0, skipping angle groups (used for
/// trait bounds / where clauses before a body).
fn scan_to_body(toks: &[Tok], i: &mut usize) {
    while *i < toks.len() && !is_open(toks, *i, Delim::Brace) {
        if is_punct(toks, *i, '<') {
            skip_angles(toks, i);
        } else if matches!(toks[*i].kind, TokKind::Open(_)) {
            skip_group(toks, i);
        } else {
            *i += 1;
        }
    }
}

/// Parses items until the end of the enclosing brace group (or EOF).
fn parse_items(
    toks: &[Tok],
    i: &mut usize,
    self_type: Option<&str>,
    in_test: bool,
    st: &mut Extract,
) {
    loop {
        if *i >= toks.len() || matches!(toks[*i].kind, TokKind::Close(_)) {
            if *i < toks.len() {
                *i += 1; // consume the closing brace
            }
            return;
        }
        let attrs = collect_attrs(toks, i);
        let item_test = in_test || attrs.cfg_test || attrs.is_test_fn;
        let start_line = toks.get(*i).map(|t| t.line).unwrap_or(0);

        // Modifiers before the item keyword.
        loop {
            match ident_at(toks, *i) {
                Some("pub") => {
                    *i += 1;
                    if is_open(toks, *i, Delim::Paren) {
                        skip_group(toks, i);
                    }
                }
                Some("unsafe") => *i += 1, // recorded by the global scan
                Some("const") if ident_at(toks, *i + 1) == Some("fn") => *i += 1,
                Some("async" | "default") => *i += 1,
                Some("extern")
                    if matches!(toks.get(*i + 1).map(|t| &t.kind), Some(TokKind::Literal))
                        && ident_at(toks, *i + 2) == Some("fn") =>
                {
                    *i += 2;
                }
                _ => break,
            }
        }

        match ident_at(toks, *i) {
            Some("fn") => {
                *i += 1;
                let name = ident_at(toks, *i).unwrap_or("").to_string();
                let line = toks.get(*i).map(|t| t.line).unwrap_or(start_line);
                *i += 1;
                if is_punct(toks, *i, '<') {
                    skip_angles(toks, i);
                }
                if is_open(toks, *i, Delim::Paren) {
                    skip_group(toks, i);
                }
                // Return type / where clause: scan to body `{` or `;`.
                let mut body = None;
                while *i < toks.len() {
                    match &toks[*i].kind {
                        TokKind::Punct(';') => {
                            *i += 1;
                            break;
                        }
                        TokKind::Punct('<') => skip_angles(toks, i),
                        TokKind::Open(Delim::Brace) => {
                            let open = *i;
                            skip_group(toks, i);
                            body = Some((open + 1, *i - 1));
                            break;
                        }
                        TokKind::Open(_) => skip_group(toks, i),
                        _ => *i += 1,
                    }
                }
                if item_test && !in_test {
                    let end_line = toks.get(i.saturating_sub(1)).map(|t| t.line).unwrap_or(line);
                    st.test_ranges.push((start_line, end_line));
                }
                st.fns.push(FnInfo {
                    name,
                    self_type: self_type.map(str::to_string),
                    line,
                    is_test: item_test,
                    class: attrs.class,
                    unknown_class: attrs.unknown_class,
                    body,
                });
            }
            Some("mod") => {
                *i += 2; // `mod` + name
                if is_punct(toks, *i, ';') {
                    *i += 1;
                } else if is_open(toks, *i, Delim::Brace) {
                    *i += 1;
                    parse_items(toks, i, None, item_test, st);
                    if item_test && !in_test {
                        let end_line =
                            toks.get(i.saturating_sub(1)).map(|t| t.line).unwrap_or(start_line);
                        st.test_ranges.push((start_line, end_line));
                    }
                }
            }
            Some("impl") => {
                *i += 1;
                if is_punct(toks, *i, '<') {
                    skip_angles(toks, i);
                }
                // Collect path idents; the impl type is the last path
                // segment after `for` (trait impl) or overall (inherent).
                let mut head: Vec<String> = Vec::new();
                let mut tail: Vec<String> = Vec::new();
                let mut for_seen = false;
                while *i < toks.len() && !is_open(toks, *i, Delim::Brace) {
                    match &toks[*i].kind {
                        TokKind::Ident(s) if s == "for" => {
                            for_seen = true;
                            *i += 1;
                        }
                        TokKind::Ident(s) if s == "where" => scan_to_body(toks, i),
                        TokKind::Ident(s) => {
                            if for_seen {
                                tail.push(s.clone());
                            } else {
                                head.push(s.clone());
                            }
                            *i += 1;
                        }
                        TokKind::Punct('<') => skip_angles(toks, i),
                        TokKind::Open(_) => skip_group(toks, i),
                        _ => *i += 1,
                    }
                }
                let ty = if for_seen { tail.last().cloned() } else { head.last().cloned() };
                if is_open(toks, *i, Delim::Brace) {
                    *i += 1;
                    parse_items(toks, i, ty.as_deref(), item_test, st);
                    if item_test && !in_test {
                        let end_line =
                            toks.get(i.saturating_sub(1)).map(|t| t.line).unwrap_or(start_line);
                        st.test_ranges.push((start_line, end_line));
                    }
                }
            }
            Some("trait") => {
                *i += 1;
                let name = ident_at(toks, *i).map(str::to_string);
                *i += 1;
                scan_to_body(toks, i);
                if is_open(toks, *i, Delim::Brace) {
                    *i += 1;
                    parse_items(toks, i, name.as_deref(), item_test, st);
                }
            }
            Some("struct") => {
                *i += 2; // `struct` + name
                if is_punct(toks, *i, '<') {
                    skip_angles(toks, i);
                }
                if ident_at(toks, *i) == Some("where") {
                    // `struct S<..> where ..: .. { .. }` — scan the clause
                    // up to the field body (or the `;` of a unit struct).
                    scan_to_body(toks, i);
                }
                if is_open(toks, *i, Delim::Brace) {
                    let body_start = *i + 1;
                    skip_group(toks, i);
                    extract_fields(toks, body_start, *i - 1, &mut st.fields);
                } else {
                    // Tuple or unit struct: skip to `;`.
                    while *i < toks.len() && !is_punct(toks, *i, ';') {
                        if matches!(toks[*i].kind, TokKind::Open(_)) {
                            skip_group(toks, i);
                        } else {
                            *i += 1;
                        }
                    }
                    *i += 1;
                }
                if item_test && !in_test {
                    let end_line =
                        toks.get(i.saturating_sub(1)).map(|t| t.line).unwrap_or(start_line);
                    st.test_ranges.push((start_line, end_line));
                }
            }
            Some("enum" | "union") => {
                *i += 1;
                scan_to_body(toks, i);
                if *i < toks.len() {
                    skip_group(toks, i);
                }
                if item_test && !in_test {
                    let end_line =
                        toks.get(i.saturating_sub(1)).map(|t| t.line).unwrap_or(start_line);
                    st.test_ranges.push((start_line, end_line));
                }
            }
            Some("macro_rules") => {
                *i += 1;
                if is_punct(toks, *i, '!') {
                    *i += 1;
                }
                *i += 1; // macro name
                if *i < toks.len() && matches!(toks[*i].kind, TokKind::Open(_)) {
                    skip_group(toks, i);
                }
            }
            Some("use" | "type" | "static" | "const") => {
                while *i < toks.len() && !is_punct(toks, *i, ';') {
                    if matches!(toks[*i].kind, TokKind::Open(_)) {
                        skip_group(toks, i);
                    } else {
                        *i += 1;
                    }
                }
                *i += 1;
                if item_test && !in_test {
                    let end_line =
                        toks.get(i.saturating_sub(1)).map(|t| t.line).unwrap_or(start_line);
                    st.test_ranges.push((start_line, end_line));
                }
            }
            Some("extern") => {
                *i += 1;
                while *i < toks.len()
                    && !is_open(toks, *i, Delim::Brace)
                    && !is_punct(toks, *i, ';')
                {
                    *i += 1;
                }
                if *i < toks.len() && is_open(toks, *i, Delim::Brace) {
                    skip_group(toks, i);
                } else {
                    *i += 1;
                }
            }
            _ => {
                // Unknown construct: advance one token (or skip a stray
                // balanced group) so parsing always terminates.
                if *i < toks.len() && matches!(toks[*i].kind, TokKind::Open(_)) {
                    skip_group(toks, i);
                } else {
                    *i += 1;
                }
            }
        }
    }
}

/// Extracts `field: Type` pairs from a struct body token range (global map;
/// conflicting types for the same field name poison the entry).
fn extract_fields(toks: &[Tok], start: usize, end: usize, fields: &mut HashMap<String, String>) {
    let mut i = start;
    while i < end {
        // Skip attributes and visibility.
        while is_punct(toks, i, '#') {
            i += 1;
            if matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Open(_))) {
                skip_group(toks, &mut i);
            }
        }
        if ident_at(toks, i) == Some("pub") {
            i += 1;
            if is_open(toks, i, Delim::Paren) {
                skip_group(toks, &mut i);
            }
        }
        let field = match ident_at(toks, i) {
            Some(s) => s.to_string(),
            None => {
                i += 1;
                continue;
            }
        };
        i += 1;
        if !is_punct(toks, i, ':') {
            continue;
        }
        i += 1;
        // Base type: the first path's last segment before `<`, skipping
        // `&`, lifetimes, `mut`, `dyn`.
        let mut base: Option<String> = None;
        let mut depth = 0i32;
        while i < end {
            match &toks[i].kind {
                TokKind::Punct(',') if depth == 0 => {
                    i += 1;
                    break;
                }
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    let arrow = i > 0 && matches!(toks[i - 1].kind, TokKind::Punct('-'));
                    if !arrow {
                        depth -= 1;
                    }
                }
                TokKind::Open(_) => {
                    skip_group(toks, &mut i);
                    continue;
                }
                TokKind::Ident(s) if depth == 0 && base.is_none() && s != "mut" && s != "dyn" => {
                    let mut last = s.clone();
                    let mut j = i + 1;
                    while is_punct(toks, j, ':') && is_punct(toks, j + 1, ':') {
                        if let Some(seg) = ident_at(toks, j + 2) {
                            last = seg.to_string();
                            j += 3;
                        } else {
                            break;
                        }
                    }
                    base = Some(last);
                    i = j;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        if let Some(ty) = base {
            use std::collections::hash_map::Entry;
            match fields.entry(field) {
                Entry::Vacant(v) => {
                    v.insert(ty);
                }
                Entry::Occupied(mut o) => {
                    if o.get() != &ty {
                        o.insert(String::new());
                    }
                }
            }
        }
    }
}

/// Global pass recording `unsafe` sites and `:: Relaxed` lines.
fn scan_unsafe_and_relaxed(toks: &[Tok]) -> (Vec<UnsafeSite>, Vec<u32>) {
    let mut unsafes = Vec::new();
    let mut relaxed = Vec::new();
    for i in 0..toks.len() {
        match &toks[i].kind {
            TokKind::Ident(s) if s == "unsafe" => {
                // `unsafe fn(..)` in type position (field, param, generic
                // argument) is a pointer type, not an unsafe site.
                let type_position = ident_at(toks, i + 1) == Some("fn")
                    && i > 0
                    && matches!(
                        toks[i - 1].kind,
                        TokKind::Punct(':' | '<' | ',' | '=') | TokKind::Open(_)
                    );
                if type_position {
                    continue;
                }
                let kind = match toks.get(i + 1).map(|t| &t.kind) {
                    Some(TokKind::Open(Delim::Brace)) => "block",
                    Some(TokKind::Ident(k)) if k == "fn" => "fn",
                    Some(TokKind::Ident(k)) if k == "impl" => "impl",
                    Some(TokKind::Ident(k)) if k == "trait" => "trait",
                    // `unsafe extern "C" fn`, etc. — look further for `fn`.
                    _ => {
                        if ident_at(toks, i + 2) == Some("fn")
                            || ident_at(toks, i + 3) == Some("fn")
                        {
                            "fn"
                        } else {
                            "block"
                        }
                    }
                };
                unsafes.push(UnsafeSite { line: toks[i].line, kind });
            }
            // One finding per line, even with several Relaxed on it.
            TokKind::Ident(s)
                if s == "Relaxed"
                    && i >= 2
                    && matches!(toks[i - 1].kind, TokKind::Punct(':'))
                    && matches!(toks[i - 2].kind, TokKind::Punct(':'))
                    && relaxed.last() != Some(&toks[i].line) =>
            {
                relaxed.push(toks[i].line);
            }
            _ => {}
        }
    }
    (unsafes, relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileAst {
        parse_file(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn extracts_free_and_method_fns() {
        let ast = parse(
            "fn free_one() {}\n\
             struct S;\n\
             impl S { fn method(&self) {} }\n\
             impl std::fmt::Debug for S { fn fmt(&self) {} }\n",
        );
        let names: Vec<String> = ast.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free_one", "S::method", "S::fmt"]);
    }

    #[test]
    fn generic_impl_resolves_type() {
        let ast = parse(
            "impl<T: Clone + Send> Cell<T> where T: Eq { fn load(&self) -> Option<T> { None } }",
        );
        assert_eq!(ast.fns[0].qualified(), "Cell::load");
        assert!(ast.fns[0].body.is_some());
    }

    #[test]
    fn progress_attr_parsed() {
        let ast = parse("#[progress(wait_free)]\nfn f() {}\n#[progress(bogus)]\nfn g() {}\n");
        assert_eq!(ast.fns[0].class, Some(Class::WaitFree));
        assert_eq!(ast.fns[1].class, None);
        assert_eq!(ast.fns[1].unknown_class.as_deref(), Some("bogus"));
    }

    #[test]
    fn cfg_test_mod_ranges() {
        let ast = parse(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n",
        );
        assert!(!ast.fns[0].is_test);
        assert!(ast.fns[1].is_test);
        assert!(ast.is_test_line(4));
        assert!(!ast.is_test_line(1));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let ast = parse("#[cfg(not(test))]\nfn live() {}\n");
        assert!(!ast.fns[0].is_test);
    }

    #[test]
    fn unsafe_and_relaxed_sites() {
        let ast = parse(
            "fn f() { let x = unsafe { g() }; }\n\
             unsafe fn g() {}\n\
             fn h() { a.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(ast.unsafes.len(), 2);
        assert_eq!(ast.unsafes[0].kind, "block");
        assert_eq!(ast.unsafes[1].kind, "fn");
        assert_eq!(ast.relaxed, vec![3]);
    }

    #[test]
    fn struct_fields_mapped() {
        let ast = parse(
            "pub struct Shard { pub stats: SwmrSnapshot<Digest>, ports: Vec<Mutex<Handle>> }",
        );
        assert_eq!(ast.fields.get("stats").map(String::as_str), Some("SwmrSnapshot"));
        assert_eq!(ast.fields.get("ports").map(String::as_str), Some("Vec"));
    }

    #[test]
    fn trait_methods_get_trait_type() {
        let ast = parse("trait Consensus<T> { fn propose(&self) -> T; fn peek(&self); }");
        assert_eq!(ast.fns[0].qualified(), "Consensus::propose");
        assert!(ast.fns[0].body.is_none());
    }

    #[test]
    fn fn_returning_impl_fn_arrow_in_generics() {
        let ast = parse("fn f<F: Fn() -> Option<u8>>(g: F) -> impl Fn() -> u8 { move || 1 }");
        assert_eq!(ast.fns.len(), 1);
        assert!(ast.fns[0].body.is_some());
    }

    #[test]
    fn braced_struct_with_where_clause_does_not_swallow_rest_of_file() {
        let ast = parse(
            "pub struct U<S, F>\n\
             where\n\
                 S: Spec,\n\
                 F: Factory<RecordOf<S>>,\n\
             {\n\
                 spec: S,\n\
             }\n\
             impl<S, F> U<S, F>\n\
             where\n\
                 S: Spec,\n\
             {\n\
                 #[progress(wait_free)]\n\
                 fn anchor(&self) -> u64 { 0 }\n\
             }\n",
        );
        assert_eq!(ast.fields.get("spec").map(String::as_str), Some("S"));
        assert_eq!(ast.fns.len(), 1, "the impl after the struct must be parsed");
        assert_eq!(ast.fns[0].qualified(), "U::anchor");
        assert_eq!(ast.fns[0].class, Some(Class::WaitFree));
    }
}
