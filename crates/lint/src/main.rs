//! `apc-lint` CLI.
//!
//! ```text
//! cargo run -p apc-lint -- [--deny] [--json PATH] [--root PATH]
//! ```
//!
//! Exit codes: 0 clean (always, without `--deny`), 1 findings under
//! `--deny`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: PathBuf::from("."), deny: false, json: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => {
                opts.json = Some(PathBuf::from(args.next().ok_or("--json needs a path argument")?));
            }
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path argument")?);
            }
            "--help" | "-h" => {
                return Err("usage: apc-lint [--deny] [--json PATH] [--root PATH]".into());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("apc-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let (_ws, report) = match apc_lint::analyze(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("apc-lint: failed to scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("apc-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    ExitCode::from(report.exit_code(opts.deny) as u8)
}
