//! Call-site extraction and name resolution over the workspace.
//!
//! Resolution is deliberately conservative-by-name: a method call resolves
//! to every workspace function that could plausibly be its target, narrowed
//! by receiver when the receiver is `self` or a struct field with a known
//! type. Calls into non-workspace types produce no edges — only the
//! denylist of blocking *primitives* catches those.

use std::collections::HashMap;

use crate::lexer::{Delim, Tok, TokKind};
use crate::parse::FileAst;

/// How a call site spells its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(..)`.
    Method(Recv),
    /// `Qual::name(..)` — the last path qualifier segment.
    Path(String),
    /// `name(..)` with no qualifier.
    Free,
    /// `name!(..)`.
    Macro,
}

/// The receiver of a method call, as far as tokens reveal it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.name(..)`.
    SelfRecv,
    /// `ident.name(..)` — a field or local.
    Ident(String),
    /// Anything else (chained call, index expression, ...).
    Opaque,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: u32,
}

/// Identifies a function in the workspace: (file index, fn index).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `fns`.
    pub idx: usize,
}

/// Method names that are blocking primitives wherever they appear.
const METHOD_DENY: [&str; 12] = [
    "lock",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "park",
    "park_timeout",
    "sleep",
    "sync_all",
    "sync_data",
];

/// Free / path-qualified names that are blocking primitives.
const FREE_DENY: [&str; 5] = ["sleep", "park", "park_timeout", "spin_loop", "yield_now"];

/// Keywords and value constructors that look like calls but are not.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "let"
            | "move"
            | "ref"
            | "as"
            | "where"
            | "impl"
            | "fn"
            | "use"
            | "pub"
            | "mut"
            | "Some"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
            | "assert"
    )
}

/// Extracts every call site in the token range `[start, end)`.
///
/// Arguments of calls and macro bodies are scanned too (the walk never skips
/// into-group), so `format!("{}", m.lock())` still yields the `lock` call.
pub fn extract_calls(toks: &[Tok], start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let name = match &toks[i].kind {
            TokKind::Ident(s) => s.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        if is_call_keyword(&name) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Look past a turbofish `::<..>` between the name and its argument
        // list.
        let mut j = i + 1;
        if j + 2 < end
            && matches!(toks[j].kind, TokKind::Punct(':'))
            && matches!(toks[j + 1].kind, TokKind::Punct(':'))
            && matches!(toks[j + 2].kind, TokKind::Punct('<'))
        {
            let mut k = j + 2;
            crate::parse::skip_angles(toks, &mut k);
            j = k;
        }
        let is_macro = matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('!')))
            && matches!(toks.get(j + 1).map(|t| &t.kind), Some(TokKind::Open(_)));
        let is_paren = matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Open(Delim::Paren)));
        if !is_macro && !is_paren {
            i += 1;
            continue;
        }
        // A nested `fn name(..)` declaration is not a call.
        if i >= 1 && matches!(&toks[i - 1].kind, TokKind::Ident(k) if k == "fn") {
            i += 1;
            continue;
        }
        let kind = if is_macro {
            CallKind::Macro
        } else if i >= 1 && matches!(toks[i - 1].kind, TokKind::Punct('.')) {
            let recv = if i >= 2 {
                match &toks[i - 2].kind {
                    TokKind::Ident(r) if r == "self" => Recv::SelfRecv,
                    TokKind::Ident(r) => Recv::Ident(r.clone()),
                    _ => Recv::Opaque,
                }
            } else {
                Recv::Opaque
            };
            CallKind::Method(recv)
        } else if i >= 2
            && matches!(toks[i - 1].kind, TokKind::Punct(':'))
            && matches!(toks[i - 2].kind, TokKind::Punct(':'))
        {
            match (i >= 3).then(|| &toks[i - 3].kind) {
                Some(TokKind::Ident(q)) => CallKind::Path(q.clone()),
                // `::<T>::name(..)` or leading `::` — treat as opaque path.
                _ => CallKind::Path(String::new()),
            }
        } else {
            CallKind::Free
        };
        out.push(Call { name, kind, line });
        i += 1; // scan inside the argument list / macro body too
    }
    out
}

/// The parsed workspace with per-function call caches and name indices.
pub struct Workspace {
    /// All parsed files.
    pub files: Vec<FileAst>,
    /// `calls[file][fn_idx]` — call sites per function body.
    calls: Vec<Vec<Vec<Call>>>,
    /// Function name → every [`FnId`] bearing it.
    by_name: HashMap<String, Vec<FnId>>,
    /// Self types that exist anywhere in the workspace.
    known_types: std::collections::HashSet<String>,
}

impl Workspace {
    /// Indexes the parsed files.
    pub fn build(files: Vec<FileAst>) -> Self {
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut known_types = std::collections::HashSet::new();
        let mut calls = Vec::with_capacity(files.len());
        for (fi, file) in files.iter().enumerate() {
            let mut file_calls = Vec::with_capacity(file.fns.len());
            for (xi, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push(FnId { file: fi, idx: xi });
                if let Some(t) = &f.self_type {
                    known_types.insert(t.clone());
                }
                file_calls.push(match f.body {
                    Some((a, b)) => extract_calls(&file.lexed.tokens, a, b),
                    None => Vec::new(),
                });
            }
            calls.push(file_calls);
        }
        Workspace { files, calls, by_name, known_types }
    }

    /// The function behind an id.
    pub fn fn_info(&self, id: FnId) -> &crate::parse::FnInfo {
        &self.files[id.file].fns[id.idx]
    }

    /// Call sites inside a function's body.
    pub fn calls_of(&self, id: FnId) -> &[Call] {
        &self.calls[id.file][id.idx]
    }

    /// Every function id, in deterministic order.
    pub fn all_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, file)| (0..file.fns.len()).map(move |xi| FnId { file: fi, idx: xi }))
    }

    /// Is this call a blocking primitive (denylist), given the calling file?
    pub fn is_blocking_primitive(&self, caller_file: usize, call: &Call) -> bool {
        match &call.kind {
            CallKind::Method(_) => {
                METHOD_DENY.contains(&call.name.as_str())
                    || ((call.name == "read" || call.name == "write")
                        && self.files[caller_file].has_rwlock)
            }
            CallKind::Path(_) | CallKind::Free => FREE_DENY.contains(&call.name.as_str()),
            CallKind::Macro => false,
        }
    }

    /// Resolves a call site to candidate workspace functions.
    ///
    /// `try_*`-named callees resolve to nothing: by convention they are the
    /// non-blocking probes of otherwise-blocking operations.
    pub fn resolve(&self, caller: FnId, call: &Call) -> Vec<FnId> {
        if call.name.starts_with("try_") {
            return Vec::new();
        }
        let candidates = match self.by_name.get(&call.name) {
            Some(c) => c,
            None => return Vec::new(),
        };
        let caller_type = self.fn_info(caller).self_type.clone();
        match &call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Method(Recv::SelfRecv) => {
                // `self.name(..)`: methods of the caller's own type.
                match &caller_type {
                    Some(t) => self.with_type(candidates, t),
                    None => self.any_method(candidates, None),
                }
            }
            CallKind::Method(Recv::Ident(recv)) => {
                // Field-type narrowing when the receiver is a known field.
                match self.files[caller.file].fields.get(recv) {
                    Some(ty) if !ty.is_empty() => {
                        if self.known_types.contains(ty) {
                            self.with_type(candidates, ty)
                        } else {
                            // External type: primitives-only coverage.
                            Vec::new()
                        }
                    }
                    // Poisoned or unknown receiver: widen, minus own type.
                    _ => self.any_method(candidates, caller_type.as_deref()),
                }
            }
            CallKind::Method(Recv::Opaque) => self.any_method(candidates, caller_type.as_deref()),
            CallKind::Path(qual) => {
                let starts_upper = qual.chars().next().is_some_and(char::is_uppercase);
                if starts_upper && self.known_types.contains(qual) {
                    self.with_type(candidates, qual)
                } else if starts_upper {
                    // External type: no workspace edges.
                    Vec::new()
                } else {
                    // Module-qualified free function.
                    candidates
                        .iter()
                        .copied()
                        .filter(|id| self.fn_info(*id).self_type.is_none())
                        .collect()
                }
            }
            CallKind::Free => candidates
                .iter()
                .copied()
                .filter(|id| self.fn_info(*id).self_type.is_none())
                .collect(),
        }
    }

    fn with_type(&self, candidates: &[FnId], ty: &str) -> Vec<FnId> {
        candidates
            .iter()
            .copied()
            .filter(|id| self.fn_info(*id).self_type.as_deref() == Some(ty))
            .collect()
    }

    /// Same-name methods on any type except `exclude` (the caller's own type
    /// is already covered by the `self.` case; excluding it here avoids
    /// spurious self-loops through opaque receivers).
    fn any_method(&self, candidates: &[FnId], exclude: Option<&str>) -> Vec<FnId> {
        candidates
            .iter()
            .copied()
            .filter(|id| {
                let st = self.fn_info(*id).self_type.as_deref();
                st.is_some() && st != exclude
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use std::path::PathBuf;

    fn ws(srcs: &[&str]) -> Workspace {
        Workspace::build(
            srcs.iter()
                .enumerate()
                .map(|(i, s)| parse_file(PathBuf::from(format!("f{i}.rs")), s))
                .collect(),
        )
    }

    fn find(ws: &Workspace, qualified: &str) -> FnId {
        ws.all_fns().find(|id| ws.fn_info(*id).qualified() == qualified).unwrap()
    }

    #[test]
    fn method_and_path_calls_extracted() {
        let w = ws(&["struct A; impl A { fn f(&self) { self.g(); helper(); B::make(); } \
                      fn g(&self) {} }\nfn helper() {}"]);
        let f = find(&w, "A::f");
        let calls = w.calls_of(f);
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[0].kind, CallKind::Method(Recv::SelfRecv));
        assert_eq!(calls[1].kind, CallKind::Free);
        assert_eq!(calls[2].kind, CallKind::Path("B".into()));
    }

    #[test]
    fn self_call_resolves_to_own_type() {
        let w = ws(&[
            "struct A; impl A { fn f(&self) { self.step(); } fn step(&self) {} }",
            "struct B; impl B { fn step(&self) {} }",
        ]);
        let f = find(&w, "A::f");
        let targets = w.resolve(f, &w.calls_of(f)[0]);
        assert_eq!(targets.len(), 1);
        assert_eq!(w.fn_info(targets[0]).qualified(), "A::step");
    }

    #[test]
    fn field_type_narrowing() {
        let w = ws(&[
            "struct Store { stats: Snap } impl Store { fn f(&self) { self.stats.scan(); } }",
            "struct Snap; impl Snap { fn scan(&self) {} }\nstruct Other; impl Other { fn scan(&self) {} }",
        ]);
        let f = find(&w, "Store::f");
        let scan = w.calls_of(f).iter().find(|c| c.name == "scan").unwrap().clone();
        let targets = w.resolve(f, &scan);
        assert_eq!(targets.len(), 1);
        assert_eq!(w.fn_info(targets[0]).qualified(), "Snap::scan");
    }

    #[test]
    fn external_field_type_yields_no_edges() {
        let w = ws(&["struct S { m: Mutex } impl S { fn f(&self) { self.m.poke(); } }\n\
             struct T; impl T { fn poke(&self) {} }"]);
        let f = find(&w, "S::f");
        let poke = w.calls_of(f).iter().find(|c| c.name == "poke").unwrap().clone();
        assert!(w.resolve(f, &poke).is_empty());
    }

    #[test]
    fn try_prefix_cuts_edges() {
        let w =
            ws(&["struct A; impl A { fn f(&self) { self.try_grab(); } fn try_grab(&self) {} }"]);
        let f = find(&w, "A::f");
        assert!(w.resolve(f, &w.calls_of(f)[0]).is_empty());
    }

    #[test]
    fn blocking_primitives_detected() {
        let w = ws(&["struct S; impl S { fn f(&self) { self.port.lock(); thread::sleep(d); } }"]);
        let f = find(&w, "S::f");
        let calls = w.calls_of(f);
        let lock = calls.iter().find(|c| c.name == "lock").unwrap();
        let sleep = calls.iter().find(|c| c.name == "sleep").unwrap();
        assert!(w.is_blocking_primitive(f.file, lock));
        assert!(w.is_blocking_primitive(f.file, sleep));
    }

    #[test]
    fn rwlock_gates_read_write() {
        let no_rw = ws(&["struct S; impl S { fn f(&self) { self.file.read(); } }"]);
        let f = find(&no_rw, "S::f");
        let read = no_rw.calls_of(f).iter().find(|c| c.name == "read").unwrap().clone();
        assert!(!no_rw.is_blocking_primitive(f.file, &read));

        let rw =
            ws(&["use std::sync::RwLock;\nstruct S; impl S { fn f(&self) { self.l.read(); } }"]);
        let f = find(&rw, "S::f");
        let read = rw.calls_of(f).iter().find(|c| c.name == "read").unwrap().clone();
        assert!(rw.is_blocking_primitive(f.file, &read));
    }

    #[test]
    fn macro_calls_recorded_and_args_scanned() {
        let w =
            ws(&["struct S; impl S { fn f(&self) { panic!(\"{}\", self.g()); } fn g(&self) {} }"]);
        let f = find(&w, "S::f");
        let calls = w.calls_of(f);
        assert!(calls.iter().any(|c| c.name == "panic" && c.kind == CallKind::Macro));
        assert!(calls.iter().any(|c| c.name == "g"));
    }

    #[test]
    fn turbofish_method_call() {
        let w = ws(&["struct S; impl S { fn f(&self) { self.get::<u64>(); } fn get(&self) {} }"]);
        let f = find(&w, "S::f");
        assert_eq!(w.calls_of(f)[0].name, "get");
    }
}
