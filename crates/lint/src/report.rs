//! Findings, the aggregate report, and its text / JSON renderings.

use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id: `progress`, `safety`, `relaxed`, `panic`, `reconfig`,
    /// `annotation`, or `waiver`.
    pub rule: &'static str,
    /// Repo-relative path of the file the finding anchors to.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Call chain for reachability findings (source first, sink last);
    /// empty for local findings.
    pub path: Vec<String>,
}

/// `#[progress(..)]` annotation coverage for one crate (one top-level
/// source component: `crates/<name>`, `shims/<name>`, `src`, `tools`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateCoverage {
    /// Crate path relative to the workspace root, e.g. `crates/store`.
    pub name: String,
    /// Total functions extracted from the crate.
    pub fns_total: usize,
    /// Functions carrying a `#[progress(..)]` class.
    pub fns_annotated: usize,
}

/// The analyzer's aggregate output.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total functions extracted.
    pub fns_total: usize,
    /// Functions carrying a `#[progress(..)]` class.
    pub fns_annotated: usize,
    /// Per-crate annotation coverage, sorted by crate name.
    pub coverage: Vec<CrateCoverage>,
}

impl Report {
    /// Sorts findings into the canonical order.
    pub fn finish(&mut self) {
        self.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Process exit code: 0 clean (or warn-only mode), 1 findings under
    /// `--deny`.
    pub fn exit_code(&self, deny: bool) -> i32 {
        if deny && !self.findings.is_empty() {
            1
        } else {
            0
        }
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}: {}:{}: {}", f.rule, f.file, f.line, f.message);
            for (i, hop) in f.path.iter().enumerate() {
                let _ = writeln!(out, "    {}{}", "  ".repeat(i), hop);
            }
        }
        if !self.coverage.is_empty() {
            let _ = writeln!(out, "annotation coverage (annotated/total fns):");
            for c in &self.coverage {
                let _ = writeln!(out, "  {}: {}/{}", c.name, c.fns_annotated, c.fns_total);
            }
        }
        let _ = writeln!(
            out,
            "apc-lint: {} finding(s) across {} file(s); {} fn(s), {} annotated",
            self.findings.len(),
            self.files_scanned,
            self.fns_total,
            self.fns_annotated,
        );
        out
    }

    /// Renders the machine-readable report (`apc-lint/2` schema; v2 added
    /// the per-crate `coverage` block).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"apc-lint/2\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"fns_total\": {},", self.fns_total);
        let _ = writeln!(out, "  \"fns_annotated\": {},", self.fns_annotated);
        out.push_str("  \"coverage\": [");
        for (i, c) in self.coverage.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"crate\": {}, \"fns_total\": {}, \"fns_annotated\": {}}}",
                json_str(&c.name),
                c.fns_total,
                c.fns_annotated,
            );
        }
        if !self.coverage.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"finding_count\": {},", self.findings.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
            );
            if !f.path.is_empty() {
                out.push_str(", \"path\": [");
                for (j, hop) in f.path.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_str(hop));
                }
                out.push(']');
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_schema() {
        let mut r = Report {
            findings: vec![Finding {
                rule: "progress",
                file: "a \"b\".rs".into(),
                line: 3,
                message: "bad\nthing".into(),
                path: vec!["X::f".into(), "lock @ a.rs:3".into()],
            }],
            files_scanned: 1,
            fns_total: 2,
            fns_annotated: 1,
            coverage: vec![],
        };
        r.finish();
        let j = r.render_json();
        assert!(j.contains("\"schema\": \"apc-lint/2\""));
        assert!(j.contains("\\\"b\\\""));
        assert!(j.contains("bad\\nthing"));
        assert!(j.contains("\"path\": [\"X::f\", \"lock @ a.rs:3\"]"));
        assert_eq!(r.exit_code(true), 1);
        assert_eq!(r.exit_code(false), 0);
    }

    #[test]
    fn coverage_block_renders_in_text_and_json() {
        let r = Report {
            findings: vec![],
            files_scanned: 3,
            fns_total: 10,
            fns_annotated: 4,
            coverage: vec![
                CrateCoverage { name: "crates/obs".into(), fns_total: 6, fns_annotated: 4 },
                CrateCoverage { name: "tools".into(), fns_total: 4, fns_annotated: 0 },
            ],
        };
        let t = r.render_text();
        assert!(t.contains("annotation coverage (annotated/total fns):"), "{t}");
        assert!(t.contains("  crates/obs: 4/6"), "{t}");
        assert!(t.contains("  tools: 0/4"), "{t}");
        let j = r.render_json();
        assert!(
            j.contains("{\"crate\": \"crates/obs\", \"fns_total\": 6, \"fns_annotated\": 4}"),
            "{j}"
        );
        assert!(j.contains("\"coverage\": ["), "{j}");
    }

    #[test]
    fn clean_report_exits_zero() {
        let r = Report::default();
        assert_eq!(r.exit_code(true), 0);
        assert!(r.render_text().contains("0 finding(s)"));
    }
}
