//! Fixture-driven end-to-end tests for the analyzer, plus the live
//! workspace self-check: the repository this crate lives in must itself be
//! lint-clean, always.

use std::path::{Path, PathBuf};

use apc_lint::{analyze, analyze_files};

fn fixture(name: &str) -> (PathBuf, Vec<PathBuf>) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let file = root.join(name);
    (root, vec![file])
}

#[test]
fn known_bad_fires_every_rule_exactly_once() {
    let (root, files) = fixture("known_bad.rs");
    let (_ws, report) = analyze_files(&root, &files).unwrap();
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        ["panic", "progress", "reconfig", "relaxed", "safety"],
        "one finding per rule, nothing else:\n{}",
        report.render_text(),
    );
    assert_eq!(report.exit_code(true), 1, "--deny must fail on findings");
    assert_eq!(report.exit_code(false), 0, "warn-only mode never fails");
}

#[test]
fn blocking_call_two_hops_deep_reports_the_full_chain() {
    let (root, files) = fixture("known_bad.rs");
    let (_ws, report) = analyze_files(&root, &files).unwrap();
    let f =
        report.findings.iter().find(|f| f.rule == "progress").expect("the deep lock must be found");
    assert!(
        f.path.len() >= 3,
        "the chain must cross both intermediate hops (entry → mid → deep): {:?}",
        f.path,
    );
    assert!(f.path[0].contains("entry"), "chain starts at the annotated source: {:?}", f.path);
    assert!(
        f.path.last().unwrap().contains("lock"),
        "chain ends at the blocking primitive: {:?}",
        f.path,
    );
}

#[test]
fn reconfig_finding_names_the_sink() {
    let (root, files) = fixture("known_bad.rs");
    let (_ws, report) = analyze_files(&root, &files).unwrap();
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "reconfig")
        .expect("the reconfig sink must be found");
    assert!(f.message.contains("split_locked"), "message: {}", f.message);
}

/// Pins the PR-7 observability contract mechanically: a scrape annotated
/// wait-free that reaches a blocking primitive (here, the engine mutex one
/// hop down) MUST fail the lint — so the real `Store::scrape` can only
/// stay green by actually staying off every lock and consensus path.
#[test]
fn blocking_scrape_fails_the_progress_rule() {
    let (root, files) = fixture("blocking_scrape.rs");
    let (_ws, report) = analyze_files(&root, &files).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        ["progress"],
        "exactly the blocking-scrape finding:\n{}",
        report.render_text()
    );
    let f = &report.findings[0];
    assert!(f.message.contains("scrape"), "names the scrape entry point: {}", f.message);
    assert!(
        f.path.first().is_some_and(|hop| hop.contains("scrape")),
        "chain starts at the scrape: {:?}",
        f.path,
    );
    assert!(
        f.path.last().is_some_and(|hop| hop.contains("lock")),
        "chain ends at the blocking primitive: {:?}",
        f.path,
    );
    assert_eq!(report.exit_code(true), 1, "--deny rejects a blocking scrape");
}

/// Pins the PR-9 wire contract mechanically: a reactor VIP dispatch
/// annotated bounded-wait-free that reaches a blocking primitive (here, a
/// shared queue mutex one hop down) MUST fail the lint — so the real
/// `StoreServer::dispatch_vip` can only stay green by actually keeping
/// the whole VIP serve path off every lock and unbounded wait.
#[test]
fn blocking_vip_dispatch_fails_the_progress_rule() {
    let (root, files) = fixture("blocking_vip_dispatch.rs");
    let (_ws, report) = analyze_files(&root, &files).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        ["progress"],
        "exactly the blocking-dispatch finding:\n{}",
        report.render_text()
    );
    let f = &report.findings[0];
    assert!(f.message.contains("dispatch_vip"), "names the dispatch entry point: {}", f.message);
    assert!(
        f.path.first().is_some_and(|hop| hop.contains("dispatch_vip")),
        "chain starts at the dispatch: {:?}",
        f.path,
    );
    assert!(
        f.path.last().is_some_and(|hop| hop.contains("lock")),
        "chain ends at the blocking primitive: {:?}",
        f.path,
    );
    assert_eq!(report.exit_code(true), 1, "--deny rejects a blocking VIP dispatch");
}

/// Pins the PR-10 batching contract mechanically: per-shard coalescing of
/// guest envelopes must never sit on the VIP serve path. A VIP dispatch
/// that reaches the batch accumulator's lock MUST fail the lint — so the
/// real reactor can only stay green by batching strictly after the VIP
/// phase, on its own obstruction-free arm.
#[test]
fn batching_on_the_vip_path_fails_the_progress_rule() {
    let (root, files) = fixture("batching_blocks_vip.rs");
    let (_ws, report) = analyze_files(&root, &files).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        ["progress"],
        "exactly the batching-blocks-VIP finding:\n{}",
        report.render_text()
    );
    let f = &report.findings[0];
    assert!(f.message.contains("dispatch_vip"), "names the dispatch entry point: {}", f.message);
    assert!(
        f.path.first().is_some_and(|hop| hop.contains("dispatch_vip")),
        "chain starts at the VIP dispatch: {:?}",
        f.path,
    );
    assert!(
        f.path.iter().any(|hop| hop.contains("join_batch")),
        "chain crosses the coalescer: {:?}",
        f.path,
    );
    assert!(
        f.path.last().is_some_and(|hop| hop.contains("lock")),
        "chain ends at the accumulator lock: {:?}",
        f.path,
    );
    assert_eq!(report.exit_code(true), 1, "--deny rejects batching on the VIP path");
}

#[test]
fn known_good_is_clean() {
    let (root, files) = fixture("known_good.rs");
    let (_ws, report) = analyze_files(&root, &files).unwrap();
    assert!(report.findings.is_empty(), "{}", report.render_text());
    assert!(report.fns_annotated >= 3, "fixture annotations must be parsed");
    assert_eq!(report.exit_code(true), 0);
}

/// The self-check: running the analyzer over this very workspace must come
/// back clean. This is the test-suite twin of the CI `--deny` gate — a
/// change that introduces an unjustified blocking call, `Relaxed`, panic,
/// or reconfiguration edge fails `cargo test` too, not just CI.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (ws, report) = analyze(&root).unwrap();
    assert!(
        report.findings.is_empty(),
        "the workspace must stay apc-lint-clean:\n{}",
        report.render_text(),
    );
    assert!(
        report.fns_annotated >= 60,
        "progress-annotation coverage regressed: only {} annotated fns",
        report.fns_annotated,
    );
    // The coverage block must break the workspace down by crate, and the
    // observability crate's record/read surface must stay fully swept.
    let obs = report
        .coverage
        .iter()
        .find(|c| c.name == "crates/obs")
        .expect("coverage reports crates/obs");
    assert!(
        obs.fns_annotated >= 8,
        "apc-obs scrape/record annotations regressed: {}/{}",
        obs.fns_annotated,
        obs.fns_total,
    );
    let total: usize = report.coverage.iter().map(|c| c.fns_total).sum();
    assert_eq!(total, report.fns_total, "coverage partitions every scanned fn");
    // The wire front-end must be swept too, and the reactor's VIP serve
    // path must keep its bounded-wait-free annotation: weakening (or
    // dropping) it would silently exempt the whole wire VIP path from the
    // progress sweep. The finding-free assertion above is what proves the
    // annotation *holds*; this pins that it stays *claimed*.
    let net = report
        .coverage
        .iter()
        .find(|c| c.name == "crates/net")
        .expect("coverage reports crates/net");
    assert!(
        net.fns_annotated >= 15,
        "apc-net annotations regressed: {}/{}",
        net.fns_annotated,
        net.fns_total
    );
    let dispatch = ws
        .all_fns()
        .map(|id| ws.fn_info(id))
        .find(|f| f.name == "dispatch_vip" && f.self_type.as_deref() == Some("StoreServer"))
        .expect("the reactor must keep a StoreServer::dispatch_vip fn");
    assert_eq!(
        dispatch.class,
        Some(apc_lint::parse::Class::BoundedWaitFree),
        "StoreServer::dispatch_vip must stay annotated bounded_wait_free",
    );
    // The batching arm introduced in PR 10 must stay *claimed* at the
    // guest tier's class — dropping the annotation would exempt the
    // coalesced path from the sweep, and upgrading it would be a lie the
    // finding-free assertion can't catch.
    let batch = ws
        .all_fns()
        .map(|id| ws.fn_info(id))
        .find(|f| f.name == "dispatch_guest_batch" && f.self_type.as_deref() == Some("StoreServer"))
        .expect("the reactor must keep a StoreServer::dispatch_guest_batch fn");
    assert_eq!(
        batch.class,
        Some(apc_lint::parse::Class::ObstructionFree),
        "StoreServer::dispatch_guest_batch must stay annotated obstruction_free",
    );
}
