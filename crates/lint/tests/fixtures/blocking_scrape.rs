//! Fixture: an intentionally **blocking scrape path** — the observability
//! anti-pattern PR 7's metrics layer is designed (and lint-gated) to
//! exclude. A `#[progress(wait_free)]` scrape reaches a mutex lock one
//! call hop down: a dashboard poller on this path would queue behind the
//! engine lock and steal progress from the clients it is watching.
//!
//! Never compiled — consumed by `tests/fixtures.rs` through
//! [`apc_lint::analyze_files`]. Expected findings: exactly one `progress`
//! violation (`scrape → read_engine → lock`).

use std::sync::Mutex;

pub struct BadObservability {
    engine: Mutex<u64>,
}

impl BadObservability {
    #[apc_progress_macros::progress(wait_free)]
    pub fn scrape(&self) -> u64 {
        self.read_engine()
    }

    fn read_engine(&self) -> u64 {
        match self.engine.lock() {
            Ok(v) => *v,
            Err(_) => 0,
        }
    }
}
