//! Fixture: an intentionally **blocking VIP dispatch path** — the wire
//! anti-pattern PR 9's reactor is designed (and lint-gated) to exclude. A
//! `#[progress(bounded_wait_free)]` dispatch reaches a mutex lock one call
//! hop down: a reactor on this path would let one slow guest connection
//! stall every VIP request behind the shared queue lock, flattening the
//! asymmetric tiers the wire front-end exists to preserve.
//!
//! Never compiled — consumed by `tests/fixtures.rs` through
//! [`apc_lint::analyze_files`]. Expected findings: exactly one `progress`
//! violation (`dispatch_vip → pop_shared_queue → lock`).

use std::collections::VecDeque;
use std::sync::Mutex;

pub struct BadReactor {
    shared_queue: Mutex<VecDeque<u64>>,
}

impl BadReactor {
    #[apc_progress_macros::progress(bounded_wait_free)]
    pub fn dispatch_vip(&self) -> Option<u64> {
        self.pop_shared_queue()
    }

    fn pop_shared_queue(&self) -> Option<u64> {
        match self.shared_queue.lock() {
            Ok(mut q) => q.pop_front(),
            Err(_) => None,
        }
    }
}
