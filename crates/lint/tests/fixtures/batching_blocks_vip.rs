//! Fixture: a **batch coalescer on the VIP dispatch path** — the exact
//! anti-pattern PR 10's per-shard batching must not introduce. Coalescing
//! guest envelopes behind a shared accumulator is fine *in the guest
//! phase*; here a `#[progress(bounded_wait_free)]` VIP dispatch routes
//! through the coalescer's mutex one hop down, which would let a slow
//! guest batch stall every VIP frame behind the accumulator lock. The
//! real reactor batches strictly after the VIP phase, on its own
//! obstruction-free arm; this fixture proves the lint catches the design
//! the moment batching leaks into VIP dispatch.
//!
//! Never compiled — consumed by `tests/fixtures.rs` through
//! [`apc_lint::analyze_files`]. Expected findings: exactly one `progress`
//! violation (`dispatch_vip → join_batch → lock`).

use std::sync::Mutex;

pub struct BatchingReactor {
    pending_batch: Mutex<Vec<u64>>,
}

impl BatchingReactor {
    #[apc_progress_macros::progress(bounded_wait_free)]
    pub fn dispatch_vip(&self, frame: u64) -> usize {
        // Wrong: a VIP frame must never wait for the guest coalescer.
        self.join_batch(frame)
    }

    fn join_batch(&self, frame: u64) -> usize {
        match self.pending_batch.lock() {
            Ok(mut batch) => {
                batch.push(frame);
                batch.len()
            }
            Err(_) => 0,
        }
    }
}
