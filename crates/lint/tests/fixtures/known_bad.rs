//! Known-bad fixture: one deliberate violation per rule.
//!
//! Never compiled — consumed by `tests/fixtures.rs` through
//! [`apc_lint::analyze_files`]. Expected findings:
//!
//! * `progress` — `entry` (wait-free) reaches `Mutex::lock` two call hops
//!   down (`entry → mid → deep`);
//! * `relaxed` — `Ordering::Relaxed` without a `// RELAXED:` justification;
//! * `panic` — `.unwrap()` in a strong-class (`lock_free`) body;
//! * `reconfig` — a reconfiguration sink reachable from a
//!   `bounded_wait_free` fn;
//! * `safety` — an `unsafe` block without a `// SAFETY:` comment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Bad {
    mu: Mutex<u64>,
    n: AtomicU64,
}

impl Bad {
    #[apc_progress_macros::progress(wait_free)]
    pub fn entry(&self) -> u64 {
        self.mid()
    }

    fn mid(&self) -> u64 {
        self.deep()
    }

    fn deep(&self) -> u64 {
        *self.mu.lock().unwrap()
    }

    #[apc_progress_macros::progress(wait_free)]
    pub fn relaxed_unjustified(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }

    #[apc_progress_macros::progress(lock_free)]
    pub fn panicky(&self) -> u64 {
        self.try_value().unwrap()
    }

    fn try_value(&self) -> Option<u64> {
        Some(1)
    }

    #[apc_progress_macros::progress(bounded_wait_free)]
    pub fn reconfigures(&self) {
        self.split_locked();
    }

    fn split_locked(&self) {}
}

pub fn read_raw(p: *const u64) -> u64 {
    unsafe { *p }
}
