//! Known-good fixture: the same shapes as `known_bad.rs`, but annotated,
//! justified, or waived the way the production workspace is — the analyzer
//! must report nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Good {
    mu: Mutex<u64>,
    n: AtomicU64,
}

impl Good {
    #[apc_progress_macros::progress(wait_free)]
    pub fn entry(&self) -> u64 {
        // APC-LINT: allow(progress): fixture — the lock below is uncontended by construction
        self.deep()
    }

    fn deep(&self) -> u64 {
        self.mu.lock().map(|g| *g).unwrap_or(0)
    }

    #[apc_progress_macros::progress(wait_free)]
    pub fn relaxed_justified(&self) -> u64 {
        // RELAXED: diagnostic counter; stale reads are fine, nothing ordered.
        self.n.load(Ordering::Relaxed)
    }

    #[apc_progress_macros::progress(blocking)]
    pub fn slow(&self) -> u64 {
        *self.mu.lock().expect("fixture")
    }
}

pub fn read_raw(p: *const u64) -> u64 {
    // SAFETY: fixture — the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
