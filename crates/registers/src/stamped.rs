//! Registers holding `(stamp, value)` pairs swung atomically.

use std::fmt;

use crate::atomic_cell::AtomicCell;

/// A value together with a monotone round/sequence stamp.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Stamped<T> {
    /// The round or sequence number.
    pub stamp: u64,
    /// The payload.
    pub value: T,
}

impl<T> Stamped<T> {
    /// Pairs a value with a stamp.
    pub fn new(stamp: u64, value: T) -> Self {
        Stamped { stamp, value }
    }
}

impl<T: fmt::Display> fmt::Display for Stamped<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.stamp, self.value)
    }
}

/// An atomic register whose content is a `(stamp, value)` pair, written as a
/// unit — the per-process register of round-based protocols (each process
/// publishes its current round and estimate in one atomic event).
///
/// # Examples
///
/// ```
/// use apc_registers::{Stamped, StampedCell};
/// let cell: StampedCell<u32> = StampedCell::new();
/// cell.store(Stamped::new(1, 40));
/// assert_eq!(cell.load(), Some(Stamped::new(1, 40)));
/// ```
pub struct StampedCell<T> {
    inner: AtomicCell<Stamped<T>>,
}

impl<T> StampedCell<T> {
    /// Creates an empty cell (`⊥`, conceptually stamp `-∞`).
    pub fn new() -> Self {
        StampedCell { inner: AtomicCell::new() }
    }

    /// Stores a stamped value (single atomic event).
    pub fn store(&self, stamped: Stamped<T>) {
        self.inner.store(stamped);
    }
}

impl<T: Clone> StampedCell<T> {
    /// Reads the current stamped value, or `None` if never written.
    pub fn load(&self) -> Option<Stamped<T>> {
        self.inner.load()
    }

    /// Reads the current stamp (`None` if never written).
    pub fn stamp(&self) -> Option<u64> {
        self.load().map(|s| s.stamp)
    }
}

impl<T> Default for StampedCell<T> {
    fn default() -> Self {
        StampedCell::new()
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for StampedCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("StampedCell").field(&self.load()).finish()
    }
}

/// Returns the entry with the highest stamp among `cells`, if any is set.
///
/// Ties are broken toward the earliest cell, which suffices for protocols
/// that only need *a* maximally-stamped value.
pub fn max_stamped<T: Clone>(cells: &[StampedCell<T>]) -> Option<Stamped<T>> {
    let mut best: Option<Stamped<T>> = None;
    for cell in cells {
        if let Some(current) = cell.load() {
            let better = match &best {
                Some(b) => current.stamp > b.stamp,
                None => true,
            };
            if better {
                best = Some(current);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let c: StampedCell<u32> = StampedCell::new();
        assert_eq!(c.load(), None);
        assert_eq!(c.stamp(), None);
    }

    #[test]
    fn store_load_pair_atomically() {
        let c = StampedCell::new();
        c.store(Stamped::new(3, "x"));
        let got = c.load().unwrap();
        assert_eq!(got.stamp, 3);
        assert_eq!(got.value, "x");
    }

    #[test]
    fn max_stamped_picks_highest() {
        let cells: Vec<StampedCell<u32>> = (0..3).map(|_| StampedCell::new()).collect();
        assert_eq!(max_stamped(&cells), None);
        cells[0].store(Stamped::new(1, 10));
        cells[2].store(Stamped::new(5, 50));
        cells[1].store(Stamped::new(3, 30));
        assert_eq!(max_stamped(&cells), Some(Stamped::new(5, 50)));
    }

    #[test]
    fn max_stamped_tie_prefers_first() {
        let cells: Vec<StampedCell<u32>> = (0..2).map(|_| StampedCell::new()).collect();
        cells[0].store(Stamped::new(2, 11));
        cells[1].store(Stamped::new(2, 22));
        assert_eq!(max_stamped(&cells), Some(Stamped::new(2, 11)));
    }

    #[test]
    fn display_renders_pair() {
        assert_eq!(Stamped::new(2, 7).to_string(), "⟨2, 7⟩");
    }

    #[test]
    fn concurrent_stores_keep_pairs_intact() {
        // Stamp and value are written together: readers never see a torn pair.
        let cell = std::sync::Arc::new(StampedCell::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cell = std::sync::Arc::clone(&cell);
                s.spawn(move || {
                    for i in 0..500 {
                        cell.store(Stamped::new(t, t * 1000 + i % 7));
                    }
                });
            }
            let reader = std::sync::Arc::clone(&cell);
            s.spawn(move || {
                for _ in 0..2000 {
                    if let Some(st) = reader.load() {
                        assert_eq!(st.value / 1000, st.stamp, "pair torn: {st:?}");
                    }
                }
            });
        });
    }
}
