//! # `apc-registers` — lock-free atomic register substrate
//!
//! The real-thread counterpart of the paper's "atomic read/write registers":
//! linearizable multi-writer multi-reader registers for arbitrary Rust
//! values, built on `AtomicPtr` with
//! [crossbeam-epoch](https://docs.rs/crossbeam-epoch) deferred reclamation,
//! plus classic register-based constructions used as substrates by the
//! consensus algorithms:
//!
//! * [`AtomicCell`] — an MWMR atomic register over `Option<T>` (a null
//!   pointer is the paper's `⊥`), with `load`/`store`/`swap` and the
//!   decision-slot primitive `set_if_bot` (compare-and-swap from `⊥`).
//! * [`PackedRegister`] — an allocation-free register for small values
//!   (`u64` minus one sentinel), for hot paths.
//! * [`StampedCell`] — a register holding `(stamp, value)` pairs swung
//!   atomically, the building block of round-based protocols.
//! * [`snapshot::SwmrSnapshot`] — the wait-free single-writer atomic
//!   snapshot of Afek et al., with embedded scans.
//! * [`collect::StoreCollect`] — a store/collect array (regular collect),
//!   the substrate of adopt-commit.
//!
//! All `unsafe` is confined to [`AtomicCell`]'s pointer management; every
//! other type builds on it or on std atomics.

#![warn(missing_docs)]

mod atomic_cell;
mod packed;
mod stamped;

pub mod collect;
pub mod snapshot;

pub use atomic_cell::AtomicCell;
pub use packed::PackedRegister;
pub use stamped::{max_stamped, Stamped, StampedCell};
