//! Wait-free single-writer atomic snapshot (Afek, Attiya, Dolev, Gafni,
//! Merritt, Shavit 1993).
//!
//! An *atomic snapshot* object has `n` components; process `i` updates
//! component `i` and any process can `scan()` all components **atomically**
//! despite concurrency. This is the canonical example of a non-trivial
//! object that registers *can* implement wait-free — the paper's possibility
//! baseline (`(n,n)`-liveness is achievable from registers for snapshots,
//! while consensus needs stronger objects).
//!
//! The construction is the classic one with **embedded scans**: every update
//! first performs a scan and publishes it next to the new value. A scanner
//! performs repeated double collects; if it sees a component change twice,
//! that component's writer performed a complete update inside the scan's
//! interval, so its embedded snapshot is a valid result.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use apc_progress_macros::progress;

use crate::atomic_cell::AtomicCell;

#[derive(Clone, Debug)]
struct SnapEntry<T> {
    seq: u64,
    value: T,
    embedded: Vec<T>,
}

/// A wait-free `n`-component single-writer atomic snapshot object.
///
/// Component `i` must be updated by one designated process at a time (the
/// single-writer discipline of the original construction); scans may run
/// from any thread concurrently.
///
/// # Examples
///
/// ```
/// use apc_registers::snapshot::SwmrSnapshot;
/// let snap = SwmrSnapshot::new(3, 0u64);
/// snap.update(1, 11);
/// assert_eq!(snap.scan(), vec![0, 11, 0]);
/// ```
pub struct SwmrSnapshot<T> {
    slots: Vec<AtomicCell<SnapEntry<T>>>,
    init: T,
    scans: AtomicU64,
    borrowed: AtomicU64,
}

impl<T: Clone> SwmrSnapshot<T> {
    /// Creates a snapshot object with `n` components initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, init: T) -> Self {
        assert!(n > 0, "snapshot needs at least one component");
        SwmrSnapshot {
            slots: (0..n).map(|_| AtomicCell::new()).collect(),
            init,
            scans: AtomicU64::new(0),
            borrowed: AtomicU64::new(0),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false (at least one component).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn read_slot(&self, i: usize) -> (u64, T) {
        match self.slots[i].load() {
            Some(entry) => (entry.seq, entry.value),
            None => (0, self.init.clone()),
        }
    }

    fn collect_seqs(&self) -> Vec<(u64, T)> {
        (0..self.len()).map(|i| self.read_slot(i)).collect()
    }

    /// Updates component `i` to `value`.
    ///
    /// Performs an embedded [`scan`](Self::scan) first, making concurrent
    /// scans wait-free.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[progress(wait_free)]
    pub fn update(&self, i: usize, value: T) {
        let embedded = self.scan();
        let seq = self.read_slot(i).0 + 1;
        self.slots[i].store(SnapEntry { seq, value, embedded });
    }

    /// Returns an atomic snapshot of all components.
    ///
    /// Wait-free: after at most `n` observed interferences the scan borrows
    /// an embedded snapshot written entirely inside its own interval.
    #[progress(wait_free)]
    pub fn scan(&self) -> Vec<T> {
        // RELAXED: diagnostic counter; snapshot correctness rests on the
        // double collect below, not on this increment's ordering.
        self.scans.fetch_add(1, Ordering::Relaxed);
        let n = self.len();
        let mut moved = vec![0u32; n];
        let mut previous = self.collect_seqs();
        loop {
            let current = self.collect_seqs();
            let clean =
                previous.iter().zip(current.iter()).all(|((seq_a, _), (seq_b, _))| seq_a == seq_b);
            if clean {
                // Successful double collect: the values coexisted.
                return current.into_iter().map(|(_, v)| v).collect();
            }
            for i in 0..n {
                if previous[i].0 != current[i].0 {
                    moved[i] += 1;
                    if moved[i] >= 2 {
                        // Component i's writer performed a complete update
                        // inside this scan: borrow its embedded snapshot.
                        // RELAXED: diagnostic counter only.
                        self.borrowed.fetch_add(1, Ordering::Relaxed);
                        if let Some(entry) = self.slots[i].load() {
                            return entry.embedded;
                        }
                    }
                }
            }
            previous = current;
        }
    }

    /// Reads a single component (a plain register read, not a snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[progress(wait_free)]
    pub fn read(&self, i: usize) -> T {
        self.read_slot(i).1
    }

    /// Diagnostic: `(total scans started, scans resolved by borrowing)`.
    pub fn scan_stats(&self) -> (u64, u64) {
        // RELAXED: diagnostic counters; stale reads are fine.
        (self.scans.load(Ordering::Relaxed), self.borrowed.load(Ordering::Relaxed))
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for SwmrSnapshot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrSnapshot").field("components", &self.scan()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn initial_scan_is_all_init() {
        let snap = SwmrSnapshot::new(4, 9u32);
        assert_eq!(snap.scan(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn update_visible_in_scan_and_read() {
        let snap = SwmrSnapshot::new(2, 0u32);
        snap.update(0, 5);
        assert_eq!(snap.read(0), 5);
        assert_eq!(snap.read(1), 0);
        assert_eq!(snap.scan(), vec![5, 0]);
    }

    #[test]
    fn sequential_updates_monotone() {
        let snap = SwmrSnapshot::new(1, 0u32);
        for v in 1..=10 {
            snap.update(0, v);
            assert_eq!(snap.scan(), vec![v]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_components_rejected() {
        let _ = SwmrSnapshot::new(0, 0u8);
    }

    #[test]
    fn concurrent_scans_see_monotone_counters() {
        // Each writer increments its own component; snapshots must be
        // component-wise monotone over time for a fixed scanner (a standard
        // atomicity consequence for monotone writers).
        let n = 4;
        let snap = Arc::new(SwmrSnapshot::new(n, 0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for i in 0..n {
                let snap = Arc::clone(&snap);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut v = 0;
                    while !stop.load(Ordering::Relaxed) {
                        v += 1;
                        snap.update(i, v);
                    }
                });
            }
            let scanner = Arc::clone(&snap);
            let stopper = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = vec![0u64; n];
                for _ in 0..2000 {
                    let now = scanner.scan();
                    for i in 0..n {
                        assert!(
                            now[i] >= last[i],
                            "component {i} went backwards: {:?} -> {:?}",
                            last,
                            now
                        );
                    }
                    last = now;
                }
                stopper.store(true, Ordering::Relaxed);
            });
        });
    }

    #[test]
    fn scan_stats_track_borrowing() {
        let snap = SwmrSnapshot::new(2, 0u8);
        let _ = snap.scan();
        let (scans, borrowed) = snap.scan_stats();
        assert!(scans >= 1);
        assert_eq!(borrowed, 0, "no contention, no borrowing");
    }
}
