//! Allocation-free atomic register for small values.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use apc_progress_macros::progress;

/// The sentinel encoding `⊥` inside the packed word.
const BOT: u64 = u64::MAX;

/// A lock-free, allocation-free MWMR register holding `Option<u64>` values
/// in `0 ..= u64::MAX - 1` (one sentinel value encodes `⊥`).
///
/// Functionally a [`crate::AtomicCell<u64>`] without allocation — useful in
/// hot paths and benchmark baselines.
///
/// # Examples
///
/// ```
/// use apc_registers::PackedRegister;
/// let r = PackedRegister::new();
/// assert_eq!(r.load(), None);
/// r.store(7);
/// assert_eq!(r.load(), Some(7));
/// ```
pub struct PackedRegister {
    word: AtomicU64,
}

impl PackedRegister {
    /// Creates an empty (`⊥`) register.
    pub fn new() -> Self {
        PackedRegister { word: AtomicU64::new(BOT) }
    }

    /// Creates a register holding `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for `⊥`).
    pub fn with_value(value: u64) -> Self {
        assert_ne!(value, BOT, "u64::MAX is reserved for ⊥");
        PackedRegister { word: AtomicU64::new(value) }
    }

    /// Reads the register.
    #[progress(wait_free)]
    pub fn load(&self) -> Option<u64> {
        decode(self.word.load(Ordering::Acquire))
    }

    /// Writes the register.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for `⊥`).
    #[progress(wait_free)]
    pub fn store(&self, value: u64) {
        assert_ne!(value, BOT, "u64::MAX is reserved for ⊥");
        self.word.store(value, Ordering::Release);
    }

    /// Resets the register to `⊥`.
    #[progress(wait_free)]
    pub fn clear(&self) {
        self.word.store(BOT, Ordering::Release);
    }

    /// Sets the register to `value` only if it is `⊥`; returns whether this
    /// call installed the value.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for `⊥`).
    #[progress(wait_free)]
    pub fn set_if_bot(&self, value: u64) -> bool {
        assert_ne!(value, BOT, "u64::MAX is reserved for ⊥");
        self.word.compare_exchange(BOT, value, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Busy-waits until the register is non-`⊥` and returns its value,
    /// yielding to the OS scheduler between attempts.
    ///
    /// This is the paper's `wait(R ≠ ⊥)` statement. It blocks by design —
    /// callers use it exactly where the paper's algorithms wait (e.g. the
    /// guest branch of the arbiter, line 04 of Figure 4).
    #[progress(blocking)]
    pub fn await_value(&self) -> u64 {
        loop {
            if let Some(v) = self.load() {
                return v;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
}

fn decode(word: u64) -> Option<u64> {
    if word == BOT {
        None
    } else {
        Some(word)
    }
}

impl Default for PackedRegister {
    fn default() -> Self {
        PackedRegister::new()
    }
}

impl fmt::Debug for PackedRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.load() {
            Some(v) => f.debug_tuple("PackedRegister").field(&v).finish(),
            None => f.debug_tuple("PackedRegister").field(&"⊥").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_bot() {
        assert_eq!(PackedRegister::new().load(), None);
    }

    #[test]
    fn store_load() {
        let r = PackedRegister::new();
        r.store(0);
        assert_eq!(r.load(), Some(0));
        r.store(123);
        assert_eq!(r.load(), Some(123));
    }

    #[test]
    fn clear_works() {
        let r = PackedRegister::with_value(5);
        r.clear();
        assert_eq!(r.load(), None);
    }

    #[test]
    #[should_panic(expected = "reserved for ⊥")]
    fn max_value_rejected() {
        PackedRegister::new().store(u64::MAX);
    }

    #[test]
    fn set_if_bot_single_winner() {
        let r = Arc::new(PackedRegister::new());
        let mut winners = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let r = Arc::clone(&r);
                    s.spawn(move || r.set_if_bot(t))
                })
                .collect();
            for h in handles {
                if h.join().unwrap() {
                    winners += 1;
                }
            }
        });
        assert_eq!(winners, 1);
    }

    #[test]
    fn await_value_sees_late_write() {
        let r = Arc::new(PackedRegister::new());
        let waiter = Arc::clone(&r);
        std::thread::scope(|s| {
            let h = s.spawn(move || waiter.await_value());
            std::thread::sleep(std::time::Duration::from_millis(10));
            r.store(77);
            assert_eq!(h.join().unwrap(), 77);
        });
    }

    #[test]
    fn debug_formats() {
        let r = PackedRegister::new();
        assert!(format!("{r:?}").contains("⊥"));
    }
}
