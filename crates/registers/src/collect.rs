//! Store/collect: the one-round communication primitive over registers.
//!
//! A *store-collect* object is an array of single-writer registers, one per
//! process, with `store(i, v)` writing process `i`'s register and
//! `collect()` reading all of them one by one. A collect is *regular*, not
//! atomic — the values read may never have coexisted — which is exactly the
//! guarantee adopt-commit and round-based consensus are designed around.

use std::fmt;

use apc_progress_macros::progress;

use crate::atomic_cell::AtomicCell;

/// A store/collect array over `n` processes.
///
/// # Examples
///
/// ```
/// use apc_registers::collect::StoreCollect;
/// let sc: StoreCollect<u32> = StoreCollect::new(3);
/// sc.store(1, 11);
/// let view = sc.collect();
/// assert_eq!(view, vec![None, Some(11), None]);
/// ```
pub struct StoreCollect<T> {
    slots: Vec<AtomicCell<T>>,
}

impl<T> StoreCollect<T> {
    /// Creates an array for `n` processes, all slots `⊥`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "store-collect needs at least one slot");
        StoreCollect { slots: (0..n).map(|_| AtomicCell::new()).collect() }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false (the array has at least one slot).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Writes process `i`'s slot (one register write).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[progress(wait_free)]
    pub fn store(&self, i: usize, value: T) {
        self.slots[i].store(value);
    }
}

impl<T: Clone> StoreCollect<T> {
    /// Reads every slot, one register read per slot, in index order.
    ///
    /// The result is a *regular* collect: it need not correspond to any
    /// single instant.
    #[progress(wait_free)]
    pub fn collect(&self) -> Vec<Option<T>> {
        self.slots.iter().map(|s| s.load()).collect()
    }

    /// Reads process `i`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[progress(wait_free)]
    pub fn load(&self, i: usize) -> Option<T> {
        self.slots[i].load()
    }

    /// Collects and returns only the set values (with their slot indices).
    #[progress(wait_free)]
    pub fn collect_set(&self) -> Vec<(usize, T)> {
        self.collect().into_iter().enumerate().filter_map(|(i, v)| v.map(|v| (i, v))).collect()
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for StoreCollect<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.collect()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collect_is_all_bot() {
        let sc: StoreCollect<u8> = StoreCollect::new(4);
        assert_eq!(sc.collect(), vec![None; 4]);
        assert_eq!(sc.collect_set(), vec![]);
        assert_eq!(sc.len(), 4);
        assert!(!sc.is_empty());
    }

    #[test]
    fn store_shows_up_in_collect() {
        let sc = StoreCollect::new(3);
        sc.store(0, 'a');
        sc.store(2, 'c');
        assert_eq!(sc.collect(), vec![Some('a'), None, Some('c')]);
        assert_eq!(sc.collect_set(), vec![(0, 'a'), (2, 'c')]);
    }

    #[test]
    fn later_store_overwrites() {
        let sc = StoreCollect::new(1);
        sc.store(0, 1);
        sc.store(0, 2);
        assert_eq!(sc.load(0), Some(2));
    }

    #[test]
    #[should_panic]
    fn out_of_range_store_panics() {
        let sc: StoreCollect<u8> = StoreCollect::new(2);
        sc.store(2, 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _: StoreCollect<u8> = StoreCollect::new(0);
    }

    #[test]
    fn concurrent_stores_are_all_visible_eventually() {
        let sc = std::sync::Arc::new(StoreCollect::new(8));
        std::thread::scope(|s| {
            for i in 0..8 {
                let sc = std::sync::Arc::clone(&sc);
                s.spawn(move || sc.store(i, i as u32 * 10));
            }
        });
        let view = sc.collect();
        for (i, v) in view.into_iter().enumerate() {
            assert_eq!(v, Some(i as u32 * 10));
        }
    }
}
