//! An epoch-reclaimed MWMR atomic register over `Option<T>`.

use std::fmt;
use std::sync::atomic::Ordering;

use apc_progress_macros::progress;
use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};

/// A linearizable multi-writer multi-reader atomic register holding an
/// `Option<T>` — the real-thread analogue of the paper's atomic registers,
/// with a null pointer playing the role of `⊥`.
///
/// Readers clone the stored value under an epoch guard; writers swing an
/// `AtomicPtr` and defer destruction of the previous value to
/// crossbeam-epoch. All operations are lock-free; none blocks.
///
/// The extra primitive [`AtomicCell::set_if_bot`] (compare-and-swap from
/// `⊥`) is the *decision slot* idiom used by wait-free consensus: the first
/// writer wins and every process can read the winner. Note that a CAS-backed
/// register is strictly stronger than a read/write register — the
/// implementations in `apc-core` are explicit about which primitive each
/// algorithm needs, because the whole point of the paper is that this
/// difference matters.
///
/// # Examples
///
/// ```
/// use apc_registers::AtomicCell;
///
/// let cell: AtomicCell<String> = AtomicCell::new();
/// assert_eq!(cell.load(), None);
/// cell.store("hello".to_owned());
/// assert_eq!(cell.load().as_deref(), Some("hello"));
/// ```
pub struct AtomicCell<T> {
    inner: Atomic<T>,
}

impl<T> AtomicCell<T> {
    /// Creates an empty (`⊥`) cell.
    pub fn new() -> Self {
        AtomicCell { inner: Atomic::null() }
    }

    /// Creates a cell holding `value`.
    pub fn with_value(value: T) -> Self {
        AtomicCell { inner: Atomic::new(value) }
    }

    /// Whether the cell currently holds `⊥`.
    #[progress(wait_free)]
    pub fn is_bot(&self) -> bool {
        let guard = epoch::pin();
        self.inner.load(Ordering::Acquire, &guard).is_null()
    }

    /// Stores a value, discarding the previous one.
    #[progress(wait_free)]
    pub fn store(&self, value: T) {
        let guard = epoch::pin();
        let old = self.inner.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: `old` was produced by this cell and is no longer reachable
        // through it; epoch reclamation defers destruction until no thread
        // holds a guard that could still reference it.
        unsafe { defer_destroy(old, &guard) };
    }

    /// Clears the cell back to `⊥`.
    #[progress(wait_free)]
    pub fn clear(&self) {
        let guard = epoch::pin();
        let old = self.inner.swap(Shared::null(), Ordering::AcqRel, &guard);
        // SAFETY: as in `store`.
        unsafe { defer_destroy(old, &guard) };
    }

    /// Moves the value out of the cell (leaving `⊥`), bypassing epoch
    /// deferral.
    ///
    /// Requires `&mut self`: exclusive access guarantees no concurrent
    /// reader can hold a reference into the cell, so the value can be
    /// reclaimed immediately. This is the building block for *iterative*
    /// teardown of linked structures whose recursive `Drop` would otherwise
    /// overflow the stack on long chains.
    #[progress(wait_free)]
    pub fn take_mut(&mut self) -> Option<T> {
        // SAFETY: `&mut self` excludes all concurrent access; an unprotected
        // guard is sound because nothing can race the swap or still read the
        // displaced value.
        // RELAXED: same exclusivity — no observers to synchronize with.
        let old =
            unsafe { self.inner.swap(Shared::null(), Ordering::Relaxed, epoch::unprotected()) };
        if old.is_null() {
            None
        } else {
            // SAFETY: `old` was just detached under exclusive access and is
            // owned solely by us.
            Some(*unsafe { old.into_owned() }.into_box())
        }
    }

    /// Sets the cell to `value` only if it is currently `⊥`.
    ///
    /// This is the wait-free decision-slot primitive: exactly one concurrent
    /// `set_if_bot` succeeds on an empty cell.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` (giving the value back) if the cell was already
    /// set.
    #[progress(wait_free)]
    pub fn set_if_bot(&self, value: T) -> Result<(), T> {
        let guard = epoch::pin();
        let new = Owned::new(value);
        match self.inner.compare_exchange(
            Shared::null(),
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
            &guard,
        ) {
            Ok(_) => Ok(()),
            Err(failure) => Err(*failure.new.into_box()),
        }
    }
}

impl<T: Clone> AtomicCell<T> {
    /// Reads the current value (cloning it), or `None` if the cell is `⊥`.
    #[progress(wait_free)]
    pub fn load(&self) -> Option<T> {
        let guard = epoch::pin();
        let shared = self.inner.load(Ordering::Acquire, &guard);
        // SAFETY: `shared` is protected by `guard`: it cannot be reclaimed
        // while the guard is live, so the reference is valid for the clone.
        unsafe { shared.as_ref() }.cloned()
    }

    /// Swaps in `value`, returning the previous value.
    #[progress(wait_free)]
    pub fn swap(&self, value: T) -> Option<T> {
        let guard = epoch::pin();
        let old = self.inner.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: protected by `guard` for the clone; destruction deferred.
        let previous = unsafe { old.as_ref() }.cloned();
        unsafe { defer_destroy(old, &guard) };
        previous
    }

    /// *Decides* the cell: installs `value` if the cell is `⊥` and returns
    /// whatever value the cell holds afterwards (the winner's).
    ///
    /// This is the total, panic-free form of the decision-slot idiom used by
    /// every consensus object in `apc-core`: one CAS, one read, and a
    /// fallback to the caller's own value in the (caller-contract-violating)
    /// case where the slot was concurrently cleared after losing the race.
    #[progress(wait_free)]
    pub fn decide(&self, value: T) -> T {
        match self.set_if_bot(value.clone()) {
            Ok(()) => value,
            Err(returned) => self.load().unwrap_or(returned),
        }
    }

    /// Reads the value, initializing the cell with `init()` first if it is
    /// `⊥`. Returns the value that ended up being read.
    ///
    /// Under a race, exactly one initializer wins and all callers observe a
    /// single consistent value.
    #[progress(wait_free)]
    pub fn load_or_init(&self, init: impl FnOnce() -> T) -> T {
        if let Some(v) = self.load() {
            return v;
        }
        self.decide(init())
    }

    /// Replaces the current value with `value` iff `keep_new` approves the
    /// replacement, retrying on contention (a CAS loop on the cell's
    /// pointer). Returns whether `value` was installed.
    ///
    /// `keep_new` receives the current value (`None` for `⊥`) and decides
    /// whether `value` should supersede it. This is the lock-free *monotone
    /// publish* idiom: with a predicate like "new version > current
    /// version", concurrent publishers never regress the cell, because every
    /// successful swing re-validated the predicate against the value it
    /// displaced.
    #[progress(lock_free)]
    pub fn update_if(&self, value: T, keep_new: impl Fn(Option<&T>) -> bool) -> bool {
        let guard = epoch::pin();
        let mut new = Owned::new(value);
        loop {
            let current = self.inner.load(Ordering::Acquire, &guard);
            // SAFETY: `current` is protected by `guard`; valid for the
            // predicate's borrow.
            if !keep_new(unsafe { current.as_ref() }) {
                return false;
            }
            match self.inner.compare_exchange(
                current,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    // SAFETY: `current` was displaced from the cell by the
                    // successful exchange; destruction deferred to the epoch.
                    unsafe { defer_destroy(current, &guard) };
                    return true;
                }
                Err(failure) => new = failure.new,
            }
        }
    }
}

/// # Safety
///
/// `old` must have been removed from the cell (unreachable for new readers)
/// and must not be destroyed twice.
unsafe fn defer_destroy<T>(old: Shared<'_, T>, guard: &epoch::Guard) {
    if !old.is_null() {
        guard.defer_destroy(old);
    }
}

impl<T> Default for AtomicCell<T> {
    fn default() -> Self {
        AtomicCell::new()
    }
}

impl<T> Drop for AtomicCell<T> {
    fn drop(&mut self) {
        // SAFETY: we have `&mut self`, so no other thread can access the
        // cell; the value can be dropped immediately.
        // RELAXED: exclusive access — no concurrent writer to order against.
        let shared = unsafe { self.inner.load(Ordering::Relaxed, epoch::unprotected()) };
        if !shared.is_null() {
            drop(unsafe { shared.into_owned() });
        }
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for AtomicCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.load() {
            Some(v) => f.debug_tuple("AtomicCell").field(&v).finish(),
            None => f.debug_tuple("AtomicCell").field(&"⊥").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn starts_bot() {
        let cell: AtomicCell<u64> = AtomicCell::new();
        assert!(cell.is_bot());
        assert_eq!(cell.load(), None);
    }

    #[test]
    fn with_value_starts_set() {
        let cell = AtomicCell::with_value(9u64);
        assert!(!cell.is_bot());
        assert_eq!(cell.load(), Some(9));
    }

    #[test]
    fn store_load_roundtrip() {
        let cell = AtomicCell::new();
        cell.store(vec![1, 2, 3]);
        assert_eq!(cell.load(), Some(vec![1, 2, 3]));
        cell.store(vec![4]);
        assert_eq!(cell.load(), Some(vec![4]));
    }

    #[test]
    fn clear_resets_to_bot() {
        let cell = AtomicCell::with_value(1u8);
        cell.clear();
        assert!(cell.is_bot());
    }

    #[test]
    fn swap_returns_previous() {
        let cell = AtomicCell::new();
        assert_eq!(cell.swap(1u64), None);
        assert_eq!(cell.swap(2), Some(1));
        assert_eq!(cell.load(), Some(2));
    }

    #[test]
    fn set_if_bot_once() {
        let cell = AtomicCell::new();
        assert!(cell.set_if_bot(10u64).is_ok());
        assert_eq!(cell.set_if_bot(20), Err(20));
        assert_eq!(cell.load(), Some(10));
    }

    #[test]
    fn load_or_init_initializes_once() {
        let cell: AtomicCell<u64> = AtomicCell::new();
        assert_eq!(cell.load_or_init(|| 5), 5);
        assert_eq!(cell.load_or_init(|| 6), 5);
    }

    #[test]
    fn concurrent_set_if_bot_has_one_winner() {
        let cell: Arc<AtomicCell<usize>> = Arc::new(AtomicCell::new());
        let wins = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..8 {
                let cell = Arc::clone(&cell);
                let wins = Arc::clone(&wins);
                s.spawn(move || {
                    if cell.set_if_bot(t).is_ok() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        let winner = cell.load().unwrap();
        assert!(winner < 8);
    }

    #[test]
    fn concurrent_store_load_stress() {
        let cell: Arc<AtomicCell<u64>> = Arc::new(AtomicCell::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        cell.store(t * 10_000 + i);
                        let _ = cell.load();
                    }
                });
            }
        });
        let last = cell.load().unwrap();
        assert!(last % 10_000 < 1000, "last value was actually written: {last}");
    }

    #[test]
    fn take_mut_moves_the_value_out() {
        let mut cell = AtomicCell::with_value(vec![1, 2]);
        assert_eq!(cell.take_mut(), Some(vec![1, 2]));
        assert!(cell.is_bot());
        assert_eq!(cell.take_mut(), None);
    }

    #[test]
    fn update_if_respects_predicate() {
        let cell = AtomicCell::with_value(5u64);
        assert!(!cell.update_if(3, |cur| cur.is_some_and(|&c| 3 > c)));
        assert_eq!(cell.load(), Some(5));
        assert!(cell.update_if(8, |cur| cur.is_some_and(|&c| 8 > c)));
        assert_eq!(cell.load(), Some(8));
        // `⊥` is passed as `None`.
        let empty: AtomicCell<u64> = AtomicCell::new();
        assert!(empty.update_if(1, |cur| cur.is_none()));
        assert_eq!(empty.load(), Some(1));
    }

    #[test]
    fn concurrent_update_if_is_monotone() {
        // Racing publishers with a strictly-increasing predicate: the cell
        // must end at the maximum, never regress.
        let cell: Arc<AtomicCell<u64>> = Arc::new(AtomicCell::with_value(0));
        std::thread::scope(|s| {
            for t in 1..=8u64 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for i in 0..200 {
                        let v = t * 1000 + i;
                        cell.update_if(v, |cur| cur.is_none_or(|&c| v > c));
                    }
                });
            }
        });
        assert_eq!(cell.load(), Some(8199), "the maximum published value wins");
    }

    #[test]
    fn drop_releases_value() {
        // Drop a cell holding an Arc and confirm the refcount falls.
        let tracked = Arc::new(());
        let cell = AtomicCell::with_value(Arc::clone(&tracked));
        assert_eq!(Arc::strong_count(&tracked), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&tracked), 1);
    }

    #[test]
    fn debug_formats() {
        let cell: AtomicCell<u8> = AtomicCell::new();
        assert!(format!("{cell:?}").contains("⊥"));
        cell.store(3);
        assert!(format!("{cell:?}").contains('3'));
    }
}
