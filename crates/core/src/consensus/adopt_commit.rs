//! Wait-free adopt-commit from registers (Gafni-style, two collect phases).
//!
//! Adopt-commit is the *safety half* of consensus that registers **can**
//! implement wait-free. It is the building block of the round-based
//! obstruction-free consensus (the possibility result `(n,0)`-liveness from
//! registers, which the paper's §1.2 takes as its starting point).
//!
//! Properties of `adopt_commit(pid, v)` returning `(flag, w)`:
//!
//! * **Validity** — `w` is some process's input.
//! * **Coherence** — if any process returns `(Commit, u)`, every process
//!   returns `(_, u)`.
//! * **Convergence** — if all inputs equal `v`, every process returns
//!   `(Commit, v)`; in particular a process running solo commits.
//! * **Wait-free termination** — two stores and two collects, regardless of
//!   contention.

use std::fmt;

use apc_progress_macros::progress;
use apc_registers::collect::StoreCollect;

use crate::consensus::ProposeOnce;
use crate::error::ConsensusError;

/// Result flag of an adopt-commit round.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AcOutcome {
    /// The value is decided: it is safe to return it from a consensus.
    Commit,
    /// The value must be adopted as the new estimate and retried.
    Adopt,
}

impl AcOutcome {
    /// Whether this outcome commits.
    pub fn is_commit(self) -> bool {
        matches!(self, AcOutcome::Commit)
    }
}

impl fmt::Display for AcOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcOutcome::Commit => write!(f, "commit"),
            AcOutcome::Adopt => write!(f, "adopt"),
        }
    }
}

/// A wait-free register-based adopt-commit object for `n` processes.
///
/// # Examples
///
/// ```
/// use apc_core::consensus::{AdoptCommit, AcOutcome};
///
/// let ac: AdoptCommit<u32> = AdoptCommit::new(2);
/// let (flag, value) = ac.adopt_commit(0, 7).unwrap();
/// assert_eq!(flag, AcOutcome::Commit); // ran alone: converges
/// assert_eq!(value, 7);
/// ```
pub struct AdoptCommit<T> {
    /// Phase-1 proposals.
    proposals: StoreCollect<T>,
    /// Phase-2 `(flag, value)` announcements.
    flags: StoreCollect<(AcOutcome, T)>,
    once: ProposeOnce,
}

impl<T: Clone + Eq + Send + Sync> AdoptCommit<T> {
    /// Creates an adopt-commit object for processes `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn new(n: usize) -> Self {
        assert!((1..=64).contains(&n), "n must be in 1..=64");
        AdoptCommit {
            proposals: StoreCollect::new(n),
            flags: StoreCollect::new(n),
            once: ProposeOnce::new(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.proposals.len()
    }

    /// One adopt-commit operation by `pid` with input `value`.
    ///
    /// Wait-free: 2 stores + 2 collects (`O(n)` register operations).
    ///
    /// # Errors
    ///
    /// * [`ConsensusError::NotAPort`] if `pid ≥ n`;
    /// * [`ConsensusError::AlreadyProposed`] on a second call by `pid`.
    #[progress(wait_free)]
    pub fn adopt_commit(&self, pid: usize, value: T) -> Result<(AcOutcome, T), ConsensusError> {
        if pid >= self.n() {
            return Err(ConsensusError::NotAPort { pid });
        }
        self.once.claim(pid)?;

        // Phase 1: publish the proposal, then collect.
        //
        // The correctness argument ("two processes cannot both see only
        // their own value") is a store-buffering pattern: each process
        // writes its slot and then reads the others'. That reasoning needs a
        // total store order, which acquire/release alone does not give —
        // hence the SeqCst fence between the store and the collect.
        self.proposals.store(pid, value.clone());
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        let seen = self.proposals.collect_set();
        let unanimous = seen.iter().all(|(_, v)| *v == value);
        let phase2_entry = if unanimous {
            (AcOutcome::Commit, value.clone())
        } else {
            // Mixed proposals: flag adopt, carrying the first value collected
            // (deterministic choice; any collected value is valid). The
            // collect always contains at least our own phase-1 store, but the
            // fallback keeps this arm total: our input is valid too.
            let first = seen.first().map(|(_, v)| v.clone()).unwrap_or_else(|| value.clone());
            (AcOutcome::Adopt, first)
        };

        // Phase 2: publish the flagged value, then collect (same
        // store-buffering pattern, same fence).
        self.flags.store(pid, phase2_entry.clone());
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        let seen2 = self.flags.collect_set();
        let all_commit = seen2.iter().all(|(_, (f, _))| f.is_commit());
        if all_commit {
            // Everyone observed unanimity: commit. All committed values are
            // equal (at most one commit value can exist, see module docs).
            // The collect contains at least our own flag; falling back to
            // our phase-2 value keeps the path total.
            let w = seen2
                .first()
                .map(|(_, (_, w))| w.clone())
                .unwrap_or_else(|| phase2_entry.1.clone());
            return Ok((AcOutcome::Commit, w));
        }
        if let Some((_, (_, w))) = seen2.iter().find(|(_, (f, _))| f.is_commit()) {
            // Someone flagged commit: adopt that (unique) value.
            return Ok((AcOutcome::Adopt, w.clone()));
        }
        // No commit flags seen: adopt own phase-2 value.
        Ok((AcOutcome::Adopt, phase2_entry.1))
    }
}

impl<T: Clone + Eq + fmt::Debug> fmt::Debug for AdoptCommit<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdoptCommit").field("n", &self.proposals.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn solo_run_commits_own_value() {
        let ac = AdoptCommit::new(3);
        assert_eq!(ac.adopt_commit(1, 42).unwrap(), (AcOutcome::Commit, 42));
    }

    #[test]
    fn unanimous_inputs_commit() {
        let ac = AdoptCommit::new(2);
        let (f0, v0) = ac.adopt_commit(0, 5).unwrap();
        let (f1, v1) = ac.adopt_commit(1, 5).unwrap();
        assert!(f0.is_commit() && f1.is_commit());
        assert_eq!((v0, v1), (5, 5));
    }

    #[test]
    fn sequential_mixed_inputs_are_coherent() {
        // p0 runs alone and commits; p1 arriving later must adopt p0's value.
        let ac = AdoptCommit::new(2);
        let (f0, v0) = ac.adopt_commit(0, 1).unwrap();
        assert_eq!((f0, v0), (AcOutcome::Commit, 1));
        let (f1, v1) = ac.adopt_commit(1, 2).unwrap();
        assert_eq!(v1, 1, "p1 must adopt the committed value");
        assert_eq!(f1, AcOutcome::Adopt);
    }

    #[test]
    fn out_of_range_pid_rejected() {
        let ac: AdoptCommit<u8> = AdoptCommit::new(2);
        assert_eq!(ac.adopt_commit(5, 0), Err(ConsensusError::NotAPort { pid: 5 }));
    }

    #[test]
    fn double_call_rejected() {
        let ac = AdoptCommit::new(2);
        ac.adopt_commit(0, 1).unwrap();
        assert_eq!(ac.adopt_commit(0, 1), Err(ConsensusError::AlreadyProposed { pid: 0 }));
    }

    /// Coherence under real concurrency: if anyone commits `u`, everyone
    /// returns `u`.
    #[test]
    fn concurrent_coherence_stress() {
        for round in 0..200 {
            let n = 4;
            let ac = AdoptCommit::new(n);
            let results = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..n {
                    let ac = &ac;
                    let results = &results;
                    s.spawn(move || {
                        let input = (pid % 2) as u64 + round; // two distinct inputs
                        let out = ac.adopt_commit(pid, input).unwrap();
                        results.lock().unwrap().push(out);
                    });
                }
            });
            let results = results.into_inner().unwrap();
            let committed: Vec<u64> =
                results.iter().filter(|(f, _)| f.is_commit()).map(|(_, v)| *v).collect();
            if let Some(&u) = committed.first() {
                for (_, w) in &results {
                    assert_eq!(*w, u, "coherence violated in round {round}: {results:?}");
                }
            }
            // Validity: all outputs are inputs.
            for (_, w) in &results {
                assert!(*w == round || *w == round + 1, "validity violated: {w}");
            }
        }
    }

    #[test]
    fn convergence_stress_all_same_input() {
        for _ in 0..100 {
            let n = 6;
            let ac = AdoptCommit::new(n);
            let results = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..n {
                    let ac = &ac;
                    let results = &results;
                    s.spawn(move || {
                        results.lock().unwrap().push(ac.adopt_commit(pid, 9u8).unwrap());
                    });
                }
            });
            for (f, v) in results.into_inner().unwrap() {
                assert_eq!((f, v), (AcOutcome::Commit, 9), "convergence violated");
            }
        }
    }
}
