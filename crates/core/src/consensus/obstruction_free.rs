//! Round-based obstruction-free consensus from registers.
//!
//! This is the possibility result the paper builds on (§1.2, citing
//! Herlihy–Luchangco–Moir): an `(n,0)`-live consensus object — safe always,
//! terminating for a process that runs long enough in isolation — using
//! **registers only** on its decision path.
//!
//! The construction runs an unbounded sequence of [`AdoptCommit`] rounds:
//!
//! ```text
//! estimate ← v; r ← 0
//! loop {
//!     if D ≠ ⊥       → return D                      // paper's §2 remark
//!     (flag, w) ← AC[r].adopt_commit(i, estimate)
//!     if flag = commit → D ← w; return w
//!     estimate ← w; r ← r + 1
//! }
//! ```
//!
//! *Safety*: coherence of adopt-commit means a committed value in round `r`
//! is everyone's estimate entering round `r+1`; convergence then keeps it
//! committed forever — so all decisions agree across rounds.
//! *Obstruction-free termination*: a process running solo eventually reaches
//! a round no other process has touched, where its own input converges and
//! commits.
//!
//! The unbounded round sequence is materialized as a lock-free linked list
//! of fixed-size segments, each slot initialized on first use with a
//! CAS-from-`⊥` — allocation happens off the register-protocol itself.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use apc_progress_macros::progress;
use apc_registers::AtomicCell;

use crate::consensus::adopt_commit::AdoptCommit;
use crate::consensus::{Consensus, ProposeOnce};
use crate::error::ConsensusError;
use crate::liveness::Liveness;

/// Rounds per lazily-allocated segment.
const SEGMENT_ROUNDS: usize = 8;

struct Segment<T> {
    rounds: Vec<AtomicCell<Arc<AdoptCommit<T>>>>,
    next: AtomicCell<Arc<Segment<T>>>,
}

impl<T: Clone + Eq + Send + Sync> Segment<T> {
    fn new() -> Self {
        Segment {
            rounds: (0..SEGMENT_ROUNDS).map(|_| AtomicCell::new()).collect(),
            next: AtomicCell::new(),
        }
    }
}

/// Obstruction-free consensus for up to `n` processes from registers.
///
/// Implements the `(n,0)`-live end of the paper's spectrum. Also exposes
/// [`ObstructionFreeConsensus::propose_bounded`] for callers (tests,
/// benchmarks, adversaries) that need to observe *non*-termination under
/// contention instead of spinning forever.
///
/// # Examples
///
/// ```
/// use apc_core::consensus::{Consensus, ObstructionFreeConsensus};
/// use apc_core::liveness::Liveness;
/// use apc_model::ProcessSet;
///
/// let spec = Liveness::obstruction_free(ProcessSet::first_n(3)).unwrap();
/// let cons = ObstructionFreeConsensus::new(spec);
/// // Running alone: decides its own value.
/// assert_eq!(cons.propose(2, 9u32).unwrap(), 9);
/// ```
pub struct ObstructionFreeConsensus<T> {
    spec: Liveness,
    n: usize,
    head: Arc<Segment<T>>,
    decision: AtomicCell<T>,
    once: ProposeOnce,
    rounds_executed: AtomicU64,
}

impl<T: Clone + Eq + Send + Sync> ObstructionFreeConsensus<T> {
    /// Creates an obstruction-free consensus object for the ports of `spec`.
    ///
    /// Ports may be any subset of `0..64`; slots are allocated for the
    /// maximum port index + 1.
    pub fn new(spec: Liveness) -> Self {
        let n = spec.ports().iter().map(|p| p.index() + 1).max().unwrap_or(1);
        ObstructionFreeConsensus {
            spec,
            n,
            head: Arc::new(Segment::new()),
            decision: AtomicCell::new(),
            once: ProposeOnce::new(),
            rounds_executed: AtomicU64::new(0),
        }
    }

    /// The liveness specification.
    pub fn spec(&self) -> Liveness {
        self.spec
    }

    /// Total adopt-commit rounds executed across all proposals (diagnostic:
    /// contention shows up as extra rounds).
    #[progress(wait_free)]
    pub fn rounds_executed(&self) -> u64 {
        // RELAXED: diagnostic counter; not ordered with round state.
        self.rounds_executed.load(Ordering::Relaxed)
    }

    fn round_object(&self, r: usize) -> Arc<AdoptCommit<T>> {
        let mut segment = Arc::clone(&self.head);
        for _ in 0..r / SEGMENT_ROUNDS {
            segment = segment.next.load_or_init(|| Arc::new(Segment::new()));
        }
        segment.rounds[r % SEGMENT_ROUNDS].load_or_init(|| Arc::new(AdoptCommit::new(self.n)))
    }

    /// Like [`Consensus::propose`], but gives up (returning `Ok(None)`)
    /// after `max_rounds` adopt-commit rounds without a decision.
    ///
    /// `Ok(None)` models the paper's "the invocation has not terminated
    /// (yet)" — it is how experiments *observe* that obstruction-freedom
    /// provides no guarantee under contention. Like `propose`, it may be
    /// invoked at most once per process.
    ///
    /// # Errors
    ///
    /// Same as [`Consensus::propose`].
    #[progress(obstruction_free)]
    pub fn propose_bounded(
        &self,
        pid: usize,
        value: T,
        max_rounds: usize,
    ) -> Result<Option<T>, ConsensusError> {
        if !self.spec.is_port(pid) {
            return Err(ConsensusError::NotAPort { pid });
        }
        self.once.claim(pid)?;
        Ok(self.run_rounds(pid, value, Some(max_rounds), &|| None))
    }

    /// Like [`Consensus::propose`], but polls `escape` between rounds and
    /// returns its value if it produces one — used by
    /// [`crate::consensus::AsymmetricConsensus`] to let a guest adopt a
    /// decision taken *outside* this object (the paper's §2 remark: once any
    /// value is decided, any process can decide it).
    ///
    /// An escape does **not** decide this object: the internal decision slot
    /// is left untouched.
    ///
    /// # Errors
    ///
    /// Same as [`Consensus::propose`].
    #[progress(obstruction_free)]
    pub fn propose_with_escape(
        &self,
        pid: usize,
        value: T,
        escape: &dyn Fn() -> Option<T>,
    ) -> Result<T, ConsensusError> {
        if !self.spec.is_port(pid) {
            return Err(ConsensusError::NotAPort { pid });
        }
        self.once.claim(pid)?;
        let decided = self.run_rounds(pid, value, None, escape);
        // APC-LINT: allow(panic): with `max_rounds: None` the round loop has no bound to exhaust — it returns only on a decision or escape, so this arm is unreachable by construction, not an environmental failure
        Ok(decided.expect("unbounded rounds end only on a decision or escape"))
    }

    fn run_rounds(
        &self,
        pid: usize,
        mut estimate: T,
        max_rounds: Option<usize>,
        escape: &dyn Fn() -> Option<T>,
    ) -> Option<T> {
        let mut r = 0usize;
        loop {
            if let Some(d) = self.decision.load() {
                return Some(d);
            }
            if let Some(e) = escape() {
                return Some(e);
            }
            if let Some(max) = max_rounds {
                if r >= max {
                    return None;
                }
            }
            // RELAXED: diagnostic counter; round objects provide ordering.
            self.rounds_executed.fetch_add(1, Ordering::Relaxed);
            let ac = self.round_object(r);
            let (flag, w) =
                ac.adopt_commit(pid, estimate).expect("each pid visits each round at most once");
            if flag.is_commit() {
                let _ = self.decision.set_if_bot(w);
                return Some(self.decision.load().expect("decision just set"));
            }
            estimate = w;
            r += 1;
        }
    }
}

impl<T: Clone + Eq + Send + Sync> Consensus<T> for ObstructionFreeConsensus<T> {
    /// Proposes `value`. **Blocks** (keeps running rounds) until a decision
    /// is reached — per the obstruction-free contract this is guaranteed
    /// only if the caller eventually runs in isolation. Use
    /// [`ObstructionFreeConsensus::propose_bounded`] when non-termination
    /// must be observable.
    #[progress(obstruction_free)]
    fn propose(&self, pid: usize, value: T) -> Result<T, ConsensusError> {
        if !self.spec.is_port(pid) {
            return Err(ConsensusError::NotAPort { pid });
        }
        self.once.claim(pid)?;
        let decided = self.run_rounds(pid, value, None, &|| None);
        // APC-LINT: allow(panic): with `max_rounds: None` the round loop has no bound to exhaust — it returns only on a decision, so this arm is unreachable by construction, not an environmental failure
        Ok(decided.expect("unbounded rounds end only on decision"))
    }

    #[progress(wait_free)]
    fn peek(&self) -> Option<T> {
        self.decision.load()
    }
}

impl<T: Clone + Eq + fmt::Debug> fmt::Debug for ObstructionFreeConsensus<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObstructionFreeConsensus")
            .field("spec", &self.spec)
            .field("decided", &self.decision.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::history::{assert_consensus, ProposeRecord};
    use apc_model::ProcessSet;
    use std::sync::Mutex;

    fn of_spec(n: usize) -> Liveness {
        Liveness::obstruction_free(ProcessSet::first_n(n)).unwrap()
    }

    #[test]
    fn solo_proposal_decides_own_value() {
        let cons = ObstructionFreeConsensus::new(of_spec(4));
        assert_eq!(cons.propose(0, 7u32).unwrap(), 7);
        assert_eq!(cons.peek(), Some(7));
    }

    #[test]
    fn later_proposals_see_decision() {
        let cons = ObstructionFreeConsensus::new(of_spec(3));
        assert_eq!(cons.propose(1, 5u32).unwrap(), 5);
        assert_eq!(cons.propose(0, 6).unwrap(), 5);
        assert_eq!(cons.propose(2, 8).unwrap(), 5);
    }

    #[test]
    fn non_port_and_double_propose_rejected() {
        let cons = ObstructionFreeConsensus::new(of_spec(2));
        assert_eq!(cons.propose(5, 0u8), Err(ConsensusError::NotAPort { pid: 5 }));
        cons.propose(0, 1).unwrap();
        assert_eq!(cons.propose(0, 2), Err(ConsensusError::AlreadyProposed { pid: 0 }));
    }

    #[test]
    fn bounded_propose_gives_up_cleanly() {
        let cons = ObstructionFreeConsensus::new(of_spec(2));
        // Zero rounds allowed and no decision: must return None.
        assert_eq!(cons.propose_bounded(0, 1u32, 0).unwrap(), None);
    }

    #[test]
    fn rounds_counter_is_diagnostic() {
        let cons = ObstructionFreeConsensus::new(of_spec(2));
        assert_eq!(cons.rounds_executed(), 0);
        cons.propose(0, 3u8).unwrap();
        assert!(cons.rounds_executed() >= 1);
    }

    #[test]
    fn segment_growth_past_one_segment() {
        // Force many rounds by bounding and retrying with distinct pids...
        // Simplest: look up a deep round object directly.
        let cons: ObstructionFreeConsensus<u8> = ObstructionFreeConsensus::new(of_spec(2));
        let deep = cons.round_object(SEGMENT_ROUNDS * 3 + 2);
        assert_eq!(deep.n(), 2);
    }

    #[test]
    fn concurrent_agreement_validity_stress() {
        // Under real concurrency the *blocking* propose may interleave
        // arbitrarily; threads do terminate in practice because the OS
        // scheduler provides isolation windows, and every decision must be
        // safe. 30 rounds keep the test fast.
        for round in 0..30 {
            let n = 4;
            let cons = ObstructionFreeConsensus::new(of_spec(n));
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..n {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = (round * 10 + pid) as u64;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            assert_consensus(&records.into_inner().unwrap());
        }
    }

    #[test]
    fn sparse_port_set_works() {
        let spec = Liveness::obstruction_free(ProcessSet::from_indices([1, 5])).unwrap();
        let cons = ObstructionFreeConsensus::new(spec);
        assert_eq!(cons.propose(5, 50u32).unwrap(), 50);
        assert_eq!(cons.propose(1, 10).unwrap(), 50);
        assert_eq!(cons.propose(0, 0), Err(ConsensusError::NotAPort { pid: 0 }));
    }
}
