//! Consensus objects under symmetric and asymmetric progress conditions.
//!
//! | Type | Progress | Base objects |
//! |------|----------|--------------|
//! | [`CasConsensus`] | wait-free (`(y,y)`-live) | compare-and-swap |
//! | [`ObstructionFreeConsensus`] | obstruction-free (`(y,0)`-live) | registers only |
//! | [`AsymmetricConsensus`] | `(y,x)`-live | CAS for `X`, registers + CAS decision slot for guests |
//! | [`AdoptCommit`] | wait-free (not consensus — the safety half) | registers only |
//!
//! The asymmetric object realizes the paper's definition directly: processes
//! in `X` decide in a bounded number of their own steps no matter what; the
//! remaining ports run a register-based round protocol that terminates when
//! they run long enough in isolation (or as soon as any decision exists —
//! the paper's remark in §2).

mod adopt_commit;
mod asymmetric;
mod cas;
mod obstruction_free;

pub mod model;

pub use adopt_commit::{AcOutcome, AdoptCommit};
pub use asymmetric::AsymmetricConsensus;
pub use cas::CasConsensus;
pub use obstruction_free::ObstructionFreeConsensus;

use crate::error::ConsensusError;

/// A single-shot consensus object: each port proposes at most once; every
/// completed `propose` returns the single decided value.
///
/// Implementations must be linearizable and satisfy (§2):
///
/// * **Validity** — the decision is some process's proposal;
/// * **Agreement** — all `propose` calls return the same value;
/// * the termination guarantee of the object's [`crate::liveness::Liveness`]
///   specification.
pub trait Consensus<T>: Send + Sync {
    /// Proposes `value` as process `pid`; returns the decided value.
    ///
    /// # Errors
    ///
    /// * [`ConsensusError::NotAPort`] if `pid` is not a port;
    /// * [`ConsensusError::AlreadyProposed`] on a second proposal by `pid`.
    fn propose(&self, pid: usize, value: T) -> Result<T, ConsensusError>;

    /// The decided value, if any process has already decided.
    ///
    /// The paper (§2, remark): "as soon as a value has been decided by a
    /// process, any process can decide the very same value."
    fn peek(&self) -> Option<T>;
}

/// Tracks the at-most-once `propose` discipline for up to 64 ports.
#[derive(Debug, Default)]
pub(crate) struct ProposeOnce {
    mask: std::sync::atomic::AtomicU64,
}

impl ProposeOnce {
    pub(crate) fn new() -> Self {
        ProposeOnce { mask: std::sync::atomic::AtomicU64::new(0) }
    }

    /// Registers a proposal by `pid`.
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusError::AlreadyProposed`] if `pid` already proposed.
    #[apc_progress_macros::progress(wait_free)]
    pub(crate) fn claim(&self, pid: usize) -> Result<(), ConsensusError> {
        debug_assert!(pid < 64);
        let bit = 1u64 << pid;
        let prev = self.mask.fetch_or(bit, std::sync::atomic::Ordering::AcqRel);
        if prev & bit != 0 {
            Err(ConsensusError::AlreadyProposed { pid })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propose_once_allows_first_claim_only() {
        let once = ProposeOnce::new();
        assert!(once.claim(3).is_ok());
        assert_eq!(once.claim(3), Err(ConsensusError::AlreadyProposed { pid: 3 }));
        assert!(once.claim(4).is_ok());
    }

    #[test]
    fn propose_once_is_independent_across_pids() {
        let once = ProposeOnce::new();
        for pid in 0..64 {
            assert!(once.claim(pid).is_ok());
        }
        for pid in 0..64 {
            assert!(once.claim(pid).is_err());
        }
    }
}
