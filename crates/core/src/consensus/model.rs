//! Round-based register consensus as an `apc-model` program.
//!
//! This is the model form of [`crate::consensus::ObstructionFreeConsensus`]:
//! a protocol that uses **registers only** (per-round adopt-commit with two
//! collect phases, plus a decision register). It matters for the theorem
//! machinery because the paper's impossibility proofs (§3.3–3.4) reason
//! about protocols whose events are register reads and writes:
//!
//! * Lemma 3 (every obstruction-free consensus object has a bivalent empty
//!   run) is checked on *this* protocol by the explorer's valence analysis;
//! * the bivalence-preserving adversary of `apc-hierarchy` starves *this*
//!   protocol, exhibiting concretely why registers cannot give wait-freedom
//!   to anyone.
//!
//! Rounds are pre-allocated (`rounds` parameter); a process that exhausts
//! them halts undecided — exploration budgets are sized so this happens only
//! under adversarial schedules, which is precisely the phenomenon under
//! study.

use apc_model::{
    MaybeParticipant, ObjectId, Op, Program, ProgramAction, System, SystemBuilder, Value,
};

/// Shared objects of the register-consensus protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RegisterConsensusObjects {
    /// The decision register `D`.
    pub decision: ObjectId,
    /// `A[r][i]`: phase-1 proposal registers, `rounds × n`.
    pub phase1: Vec<Vec<ObjectId>>,
    /// `B[r][i]`: phase-2 flag registers, `rounds × n`.
    pub phase2: Vec<Vec<ObjectId>>,
}

impl RegisterConsensusObjects {
    /// Adds `1 + 2·rounds·n` registers to the builder.
    pub fn add_to(builder: &mut SystemBuilder, n: usize, rounds: usize) -> Self {
        let decision = builder.add_register(Value::Bot);
        let phase1 = (0..rounds).map(|_| builder.add_register_array(n, Value::Bot)).collect();
        let phase2 = (0..rounds).map(|_| builder.add_register_array(n, Value::Bot)).collect();
        RegisterConsensusObjects { decision, phase1, phase2 }
    }

    /// Number of pre-allocated rounds.
    pub fn rounds(&self) -> usize {
        self.phase1.len()
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.phase1.first().map(Vec::len).unwrap_or(0)
    }
}

/// One process of the round-based register consensus.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RegisterConsensusProgram {
    objs: RegisterConsensusObjects,
    pid: u8,
    estimate: u32,
    round: u16,
    /// Collect cursor.
    j: u8,
    /// Phase-1 collect: saw a value different from the estimate?
    mixed: bool,
    /// Phase-1 collect: first non-`⊥` value.
    first_seen: Option<u32>,
    /// Phase-2 entry this process wrote (`(flag, value)`).
    my_entry: (bool, u32),
    /// Phase-2 collect: all non-`⊥` entries commit-flagged so far?
    all_commit: bool,
    /// Phase-2 collect: some commit-flagged value.
    commit_seen: Option<u32>,
    state: RcState,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum RcState {
    /// Next: read the decision register (fast path).
    Start,
    /// Awaiting the decision register read.
    GotDecision,
    /// Awaiting the `A[r][i]` write.
    WroteA,
    /// Awaiting the read of `A[r][j]`.
    CollectA,
    /// Awaiting the `B[r][i]` write.
    WroteB,
    /// Awaiting the read of `B[r][j]`.
    CollectB,
    /// Awaiting the decision-register write; then decide.
    WroteD,
}

impl RegisterConsensusProgram {
    /// A participant proposing `value`.
    pub fn new(objs: RegisterConsensusObjects, pid: usize, value: u32) -> Self {
        RegisterConsensusProgram {
            objs,
            pid: pid as u8,
            estimate: value,
            round: 0,
            j: 0,
            mixed: false,
            first_seen: None,
            my_entry: (false, 0),
            all_commit: true,
            commit_seen: None,
            state: RcState::Start,
        }
    }

    fn n(&self) -> usize {
        self.objs.n()
    }

    fn a(&self, j: usize) -> ObjectId {
        self.objs.phase1[self.round as usize][j]
    }

    fn b(&self, j: usize) -> ObjectId {
        self.objs.phase2[self.round as usize][j]
    }

    fn begin_round(&mut self) -> ProgramAction {
        self.state = RcState::GotDecision;
        ProgramAction::Invoke(Op::Read(self.objs.decision))
    }
}

impl Program for RegisterConsensusProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        use RcState::*;
        match self.state {
            Start => self.begin_round(),
            GotDecision => {
                let d = last.expect("read returns a value");
                if !d.is_bot() {
                    return ProgramAction::Decide(d);
                }
                if (self.round as usize) >= self.objs.rounds() {
                    // Out of pre-allocated rounds: halt undecided. This is
                    // reachable only under adversarial schedules, which is
                    // the object of study.
                    return ProgramAction::Halt;
                }
                // Phase 1: publish the estimate.
                self.mixed = false;
                self.first_seen = None;
                self.all_commit = true;
                self.commit_seen = None;
                self.state = WroteA;
                ProgramAction::Invoke(Op::Write(
                    self.a(self.pid as usize),
                    Value::Num(self.estimate),
                ))
            }
            WroteA => {
                self.j = 0;
                self.state = CollectA;
                ProgramAction::Invoke(Op::Read(self.a(0)))
            }
            CollectA => {
                let v = last.expect("read returns a value");
                if let Value::Num(seen) = v {
                    if self.first_seen.is_none() {
                        self.first_seen = Some(seen);
                    }
                    if seen != self.estimate {
                        self.mixed = true;
                    }
                }
                self.j += 1;
                if (self.j as usize) < self.n() {
                    ProgramAction::Invoke(Op::Read(self.a(self.j as usize)))
                } else {
                    // Phase 2: publish (flag, value).
                    self.my_entry = if self.mixed {
                        (false, self.first_seen.expect("own value collected"))
                    } else {
                        (true, self.estimate)
                    };
                    self.state = WroteB;
                    ProgramAction::Invoke(Op::Write(
                        self.b(self.pid as usize),
                        Value::Tagged(self.my_entry.0, self.my_entry.1),
                    ))
                }
            }
            WroteB => {
                self.j = 0;
                self.state = CollectB;
                ProgramAction::Invoke(Op::Read(self.b(0)))
            }
            CollectB => {
                let v = last.expect("read returns a value");
                if let Value::Tagged(flag, value) = v {
                    if flag {
                        if self.commit_seen.is_none() {
                            self.commit_seen = Some(value);
                        }
                    } else {
                        self.all_commit = false;
                    }
                }
                self.j += 1;
                if (self.j as usize) < self.n() {
                    return ProgramAction::Invoke(Op::Read(self.b(self.j as usize)));
                }
                // Resolve the round.
                if self.all_commit {
                    // All non-⊥ entries were commit-flagged; own entry is
                    // among them, so commit_seen is set.
                    let w = self.commit_seen.expect("own commit entry collected");
                    self.estimate = w;
                    self.state = WroteD;
                    ProgramAction::Invoke(Op::Write(self.objs.decision, Value::Num(w)))
                } else {
                    // Adopt: a commit value if seen, else own phase-2 value.
                    self.estimate = self.commit_seen.unwrap_or(self.my_entry.1);
                    self.round += 1;
                    self.begin_round()
                }
            }
            WroteD => ProgramAction::Decide(Value::Num(self.estimate)),
        }
    }

    fn name(&self) -> &'static str {
        "register-consensus"
    }
}

/// Builds an `n`-process register-consensus system with the given inputs
/// (one entry per process; `None` = non-participant).
pub fn register_consensus_system(
    inputs: &[Option<u32>],
    rounds: usize,
) -> (System<MaybeParticipant<RegisterConsensusProgram>>, RegisterConsensusObjects) {
    let n = inputs.len();
    let mut builder = SystemBuilder::new(n);
    let objs = RegisterConsensusObjects::add_to(&mut builder, n, rounds);
    let system = builder.build(|pid| match inputs[pid.index()] {
        Some(v) => {
            MaybeParticipant::Present(RegisterConsensusProgram::new(objs.clone(), pid.index(), v))
        }
        None => MaybeParticipant::Absent,
    });
    (system, objs)
}

/// Convenience: binary inputs `0/1` for all `n` processes, process `i`
/// proposing `i mod 2`.
pub fn binary_register_consensus(
    n: usize,
    rounds: usize,
) -> (System<MaybeParticipant<RegisterConsensusProgram>>, RegisterConsensusObjects) {
    let inputs: Vec<Option<u32>> = (0..n).map(|i| Some((i % 2) as u32)).collect();
    register_consensus_system(&inputs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, Valence, ValidityIn};
    use apc_model::{ProcessId, ProcessSet, Runner, Schedule};

    #[test]
    fn solo_process_decides_own_value() {
        let (sys, _) = register_consensus_system(&[Some(7), None], 4);
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(0), 50));
        assert_eq!(runner.system().decision(ProcessId::new(0)), Some(Value::Num(7)));
    }

    #[test]
    fn sequential_two_processes_agree() {
        let (sys, _) = register_consensus_system(&[Some(3), Some(8)], 4);
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(1), 50));
        runner.run(&Schedule::solo(ProcessId::new(0), 80));
        let d0 = runner.system().decision(ProcessId::new(0)).unwrap();
        let d1 = runner.system().decision(ProcessId::new(1)).unwrap();
        assert_eq!(d1, Value::Num(8), "p1 ran alone first");
        assert_eq!(d0, d1, "agreement");
    }

    #[test]
    fn round_robin_terminates_and_agrees() {
        // Round-robin is *not* adversarial for this protocol: the
        // deterministic min-index adopt rule converges.
        let (sys, _) = binary_register_consensus(2, 8);
        let mut runner = Runner::new(sys);
        let terminated = runner.run_until_terminated(&Schedule::round_robin(2, 1), 2000);
        assert!(terminated, "round-robin converges for this protocol");
        let d0 = runner.system().decision(ProcessId::new(0)).unwrap();
        let d1 = runner.system().decision(ProcessId::new(1)).unwrap();
        assert_eq!(d0, d1);
    }

    /// Safety under EVERY schedule (bounded rounds keep the space finite):
    /// agreement + validity for 2 processes with mixed inputs.
    #[test]
    fn exhaustive_safety_two_processes() {
        let (sys, _) = binary_register_consensus(2, 2);
        let explorer = Explorer::new(
            ExploreConfig::default()
                .with_max_states(2_000_000)
                .with_max_depth(120)
                .with_crashes(1, ProcessSet::first_n(2)),
        );
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new([Value::Num(0), Value::Num(1)]), &NoFaults],
        );
        assert!(result.ok(), "violations: {:?}", result.violations.first());
    }

    /// Lemma 3: the empty run with mixed binary inputs is bivalent.
    #[test]
    fn lemma3_bivalent_empty_run() {
        let (sys, _) = binary_register_consensus(2, 2);
        let explorer =
            Explorer::new(ExploreConfig::default().with_max_states(2_000_000).with_max_depth(120));
        let valence = explorer.valence(&sys);
        assert!(matches!(valence, Valence::Bivalent(_)), "got {valence:?}");
    }

    /// Unanimous inputs make the empty run univalent (also part of
    /// Lemma 3's argument).
    #[test]
    fn unanimous_inputs_univalent() {
        let (sys, _) = register_consensus_system(&[Some(4), Some(4)], 2);
        let explorer =
            Explorer::new(ExploreConfig::default().with_max_states(2_000_000).with_max_depth(120));
        match explorer.valence(&sys) {
            Valence::Univalent(v) | Valence::UnivalentBounded(v) => assert_eq!(v, Value::Num(4)),
            other => panic!("expected univalent, got {other:?}"),
        }
    }
}
