//! Wait-free consensus from compare-and-swap.

use std::fmt;

use apc_progress_macros::progress;
use apc_registers::AtomicCell;

use crate::consensus::{Consensus, ProposeOnce};
use crate::error::ConsensusError;
use crate::liveness::Liveness;

/// Wait-free consensus from a single compare-and-swap decision slot.
///
/// Compare-and-swap has consensus number ∞ (§1.1 of the paper, citing
/// Herlihy), so this object is wait-free for *all* its ports: it realizes a
/// `(y,y)`-live consensus object. It is the real-thread stand-in for the
/// paper's `(x,x)`-live base objects — e.g. the `XCONS` object inside the
/// arbiter (Figure 4) and the `GXCONS[g]` objects of the group algorithm
/// (Figure 5).
///
/// Every `propose` performs one CAS and one read: the first CAS wins; all
/// later proposals observe the winner.
///
/// # Examples
///
/// ```
/// use apc_core::consensus::{CasConsensus, Consensus};
/// use apc_core::liveness::Liveness;
///
/// let cons = CasConsensus::new(Liveness::new_first_n(2, 2));
/// assert_eq!(cons.propose(0, "a").unwrap(), "a");
/// assert_eq!(cons.propose(1, "b").unwrap(), "a");
/// ```
pub struct CasConsensus<T> {
    spec: Liveness,
    slot: AtomicCell<T>,
    once: ProposeOnce,
}

impl<T> CasConsensus<T> {
    /// Creates a consensus object for the given port set.
    ///
    /// The wait-free set of `spec` is ignored in the sense that CAS gives
    /// wait-freedom to *everyone*; the ports are still enforced. (An object
    /// may always be *more* live than its specification.)
    pub fn new(spec: Liveness) -> Self {
        CasConsensus { spec, slot: AtomicCell::new(), once: ProposeOnce::new() }
    }

    /// The liveness specification this object was declared with.
    pub fn spec(&self) -> Liveness {
        self.spec
    }
}

impl<T: Clone + Send + Sync> Consensus<T> for CasConsensus<T> {
    #[progress(wait_free)]
    fn propose(&self, pid: usize, value: T) -> Result<T, ConsensusError> {
        if !self.spec.is_port(pid) {
            return Err(ConsensusError::NotAPort { pid });
        }
        self.once.claim(pid)?;
        Ok(self.slot.decide(value))
    }

    #[progress(wait_free)]
    fn peek(&self) -> Option<T> {
        self.slot.load()
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for CasConsensus<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasConsensus")
            .field("spec", &self.spec)
            .field("decided", &self.slot.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::history::{assert_consensus, ProposeRecord};
    use std::sync::Mutex;

    #[test]
    fn first_proposal_wins_sequentially() {
        let cons = CasConsensus::new(Liveness::new_first_n(3, 3));
        assert_eq!(cons.peek(), None);
        assert_eq!(cons.propose(1, 11).unwrap(), 11);
        assert_eq!(cons.propose(0, 22).unwrap(), 11);
        assert_eq!(cons.propose(2, 33).unwrap(), 11);
        assert_eq!(cons.peek(), Some(11));
    }

    #[test]
    fn non_port_rejected() {
        let cons = CasConsensus::new(Liveness::new_first_n(2, 2));
        assert_eq!(cons.propose(2, 5), Err(ConsensusError::NotAPort { pid: 2 }));
    }

    #[test]
    fn double_propose_rejected() {
        let cons = CasConsensus::new(Liveness::new_first_n(2, 2));
        cons.propose(0, 1).unwrap();
        assert_eq!(cons.propose(0, 2), Err(ConsensusError::AlreadyProposed { pid: 0 }));
    }

    #[test]
    fn concurrent_agreement_and_validity() {
        for round in 0..50 {
            let n = 8;
            let cons = CasConsensus::new(Liveness::new_first_n(n, n));
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..n {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = (round * 100 + pid) as u64;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            assert_consensus(&records.into_inner().unwrap());
        }
    }

    #[test]
    fn spec_accessor() {
        let spec = Liveness::new_first_n(4, 4);
        let cons: CasConsensus<u8> = CasConsensus::new(spec);
        assert_eq!(cons.spec(), spec);
    }
}
