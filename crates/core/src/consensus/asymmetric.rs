//! The `(y,x)`-live consensus object: wait-free for `X`, obstruction-free
//! for the rest.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use apc_progress_macros::progress;
use apc_registers::AtomicCell;

use crate::consensus::{Consensus, ObstructionFreeConsensus, ProposeOnce};
use crate::error::ConsensusError;
use crate::liveness::Liveness;

/// A real-thread `(y,x)`-live consensus object (§2 of the paper).
///
/// * Processes in the **wait-free set `X`** decide with one CAS and one read
///   on the decision slot — a bounded number of their own steps, no matter
///   what the other processes do.
/// * The **guests `Y \ X`** run the register-based round protocol
///   ([`ObstructionFreeConsensus`]) *among themselves* and install its
///   outcome into the decision slot with a CAS-from-`⊥`; they also return as
///   soon as any decision exists (the §2 remark). Their termination is
///   guaranteed when they run long enough in isolation — and not otherwise,
///   which is the entire point.
///
/// Agreement holds because the decision slot is written at most once;
/// validity holds because both paths only install proposed values.
///
/// This is the object the paper proves *cannot* be built for `x ≥ 1` from
/// `(n−1,n−1)`-live objects and registers (Theorem 1) — here it is built
/// from **compare-and-swap**, which has consensus number ∞, so no
/// impossibility applies. The simulated counterpart with *exactly* the
/// `(y,x)`-live guarantee is `apc_model`'s `LiveConsensus` base object.
///
/// # Examples
///
/// ```
/// use apc_core::consensus::{AsymmetricConsensus, Consensus};
/// use apc_core::liveness::Liveness;
///
/// // (3,1)-live: process 0 is wait-free, processes 1 and 2 obstruction-free.
/// let cons = AsymmetricConsensus::new(Liveness::new_first_n(3, 1));
/// assert_eq!(cons.propose(0, 'a').unwrap(), 'a');
/// assert_eq!(cons.propose(2, 'c').unwrap(), 'a');
/// ```
pub struct AsymmetricConsensus<T> {
    spec: Liveness,
    decision: AtomicCell<T>,
    guests: Option<ObstructionFreeConsensus<T>>,
    once: ProposeOnce,
    wait_free_proposals: AtomicU64,
    guest_proposals: AtomicU64,
}

impl<T: Clone + Eq + Send + Sync> AsymmetricConsensus<T> {
    /// Creates a `(y,x)`-live consensus object with the given specification.
    pub fn new(spec: Liveness) -> Self {
        let guest_spec = Liveness::obstruction_free(spec.guests()).ok();
        AsymmetricConsensus {
            spec,
            decision: AtomicCell::new(),
            guests: guest_spec.map(ObstructionFreeConsensus::new),
            once: ProposeOnce::new(),
            wait_free_proposals: AtomicU64::new(0),
            guest_proposals: AtomicU64::new(0),
        }
    }

    /// The liveness specification.
    pub fn spec(&self) -> Liveness {
        self.spec
    }

    /// Diagnostic: `(wait-free proposals, guest proposals)` seen so far.
    #[progress(wait_free)]
    pub fn path_stats(&self) -> (u64, u64) {
        // RELAXED: diagnostic counters; stale reads fine, nothing ordered.
        (
            self.wait_free_proposals.load(Ordering::Relaxed),
            self.guest_proposals.load(Ordering::Relaxed),
        )
    }

    /// Guest-path proposal that gives up after `max_rounds` obstruction-free
    /// rounds without any decision, returning `Ok(None)`.
    ///
    /// Wait-free callers never need this (their path is bounded); for guests
    /// it makes non-termination under contention observable.
    ///
    /// # Errors
    ///
    /// * [`ConsensusError::NotAPort`] if `pid` is not a port;
    /// * [`ConsensusError::AlreadyProposed`] on a second proposal.
    #[progress(obstruction_free)]
    pub fn propose_bounded(
        &self,
        pid: usize,
        value: T,
        max_rounds: usize,
    ) -> Result<Option<T>, ConsensusError> {
        if !self.spec.is_port(pid) {
            return Err(ConsensusError::NotAPort { pid });
        }
        if self.spec.is_wait_free_for(pid) {
            return self.propose(pid, value).map(Some);
        }
        self.once.claim(pid)?;
        // RELAXED: diagnostic counter; decision safety comes from the slot.
        self.guest_proposals.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.decision.load() {
            return Ok(Some(d));
        }
        // A guest pid implies a non-empty guest set; stay total anyway.
        let Some(inner) = self.guests.as_ref() else {
            return Err(ConsensusError::NotAPort { pid });
        };
        match inner.propose_bounded(pid, value, max_rounds)? {
            Some(w) => Ok(Some(self.decision.decide(w))),
            None => Ok(self.decision.load()),
        }
    }
}

impl<T: Clone + Eq + Send + Sync> Consensus<T> for AsymmetricConsensus<T> {
    /// The class below is the *VIP* guarantee: a pid in `X` decides in a
    /// bounded number of its own steps. Guest pids take the waived
    /// obstruction-free branch — that asymmetry is the object's contract.
    #[progress(bounded_wait_free)]
    fn propose(&self, pid: usize, value: T) -> Result<T, ConsensusError> {
        if !self.spec.is_port(pid) {
            return Err(ConsensusError::NotAPort { pid });
        }
        self.once.claim(pid)?;
        if self.spec.is_wait_free_for(pid) {
            // Wait-free path: one CAS + one read.
            // RELAXED: diagnostic counter; the decision slot's CAS carries
            // all the ordering the protocol needs.
            self.wait_free_proposals.fetch_add(1, Ordering::Relaxed);
            return Ok(self.decision.decide(value));
        }
        // Guest path: obstruction-free rounds among the guests, polling the
        // decision slot between rounds (§2 remark: as soon as any value is
        // decided, any process can decide the very same value).
        // RELAXED: diagnostic counter; see the wait-free arm above.
        self.guest_proposals.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.decision.load() {
            return Ok(d);
        }
        // A guest pid implies a non-empty guest set; stay total anyway.
        let Some(inner) = self.guests.as_ref() else {
            return Err(ConsensusError::NotAPort { pid });
        };
        // APC-LINT: allow(progress): guest-pid branch only — VIP pids returned above; guests are obstruction-free by specification (y,x)-liveness
        let w = inner.propose_with_escape(pid, value, &|| self.decision.load())?;
        Ok(self.decision.decide(w))
    }

    #[progress(wait_free)]
    fn peek(&self) -> Option<T> {
        // Only the outer decision slot counts. An inner guest-protocol
        // decision that has not yet been installed must NOT be reported: a
        // wait-free proposal could still win the slot with a different
        // value, and peek must never contradict a later propose return.
        self.decision.load()
    }
}

impl<T: Clone + Eq + fmt::Debug> fmt::Debug for AsymmetricConsensus<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsymmetricConsensus")
            .field("spec", &self.spec)
            .field("decided", &self.decision.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::history::{assert_consensus, ProposeRecord};
    use std::sync::Mutex;

    #[test]
    fn wait_free_member_decides_immediately() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(4, 2));
        assert_eq!(cons.propose(1, 10u32).unwrap(), 10);
        assert_eq!(cons.path_stats(), (1, 0));
    }

    #[test]
    fn guest_alone_decides_its_value() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(4, 2));
        assert_eq!(cons.propose(3, 30u32).unwrap(), 30);
        assert_eq!(cons.path_stats(), (0, 1));
    }

    #[test]
    fn guest_after_wait_free_sees_decision() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(3, 1));
        assert_eq!(cons.propose(0, 1u32).unwrap(), 1);
        assert_eq!(cons.propose(2, 9).unwrap(), 1);
    }

    #[test]
    fn wait_free_after_guest_sees_decision() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(3, 1));
        assert_eq!(cons.propose(1, 5u32).unwrap(), 5);
        assert_eq!(cons.propose(0, 2).unwrap(), 5);
    }

    #[test]
    fn port_and_double_checks() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(2, 1));
        assert_eq!(cons.propose(7, 0u8), Err(ConsensusError::NotAPort { pid: 7 }));
        cons.propose(0, 1).unwrap();
        assert_eq!(cons.propose(0, 1), Err(ConsensusError::AlreadyProposed { pid: 0 }));
    }

    #[test]
    fn fully_wait_free_spec_has_no_guest_protocol() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(3, 3));
        assert!(cons.guests.is_none());
        assert_eq!(cons.propose(2, 5u8).unwrap(), 5);
    }

    #[test]
    fn bounded_guest_gives_up_without_decision() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(3, 1));
        assert_eq!(cons.propose_bounded(1, 7u32, 0).unwrap(), None);
        assert_eq!(cons.peek(), None);
    }

    #[test]
    fn bounded_wait_free_never_gives_up() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(3, 1));
        assert_eq!(cons.propose_bounded(0, 7u32, 0).unwrap(), Some(7));
    }

    #[test]
    fn peek_surfaces_inner_guest_decision() {
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(3, 1));
        cons.propose(1, 4u32).unwrap();
        assert_eq!(cons.peek(), Some(4));
    }

    #[test]
    fn concurrent_mixed_agreement_stress() {
        for round in 0..40 {
            let n = 6;
            let x = 2;
            let cons = AsymmetricConsensus::new(Liveness::new_first_n(n, x));
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..n {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = (round * 100 + pid) as u64;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            assert_consensus(&records.into_inner().unwrap());
        }
    }

    #[test]
    fn wait_free_path_is_bounded_even_under_guest_contention() {
        // Spawn guests first (they spin in rounds), then a wait-free member:
        // it must return promptly and unblock everyone.
        let cons = AsymmetricConsensus::new(Liveness::new_first_n(5, 1));
        let records = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 1..5 {
                let cons = &cons;
                let records = &records;
                s.spawn(move || {
                    let returned = cons.propose(pid, pid as u64).unwrap();
                    records.lock().unwrap().push(ProposeRecord {
                        pid,
                        proposed: pid as u64,
                        returned,
                    });
                });
            }
            let cons = &cons;
            let records = &records;
            s.spawn(move || {
                let returned = cons.propose(0, 0).unwrap();
                records.lock().unwrap().push(ProposeRecord { pid: 0, proposed: 0, returned });
            });
        });
        assert_consensus(&records.into_inner().unwrap());
    }
}
