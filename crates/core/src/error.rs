//! Error types for the core objects.

use std::error::Error;
use std::fmt;

/// Error constructing a liveness specification.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SpecError {
    /// The wait-free set is not a subset of the port set.
    WaitFreeNotInPorts,
    /// The port set is empty.
    EmptyPorts,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::WaitFreeNotInPorts => {
                write!(f, "wait-free set X must be a subset of the port set Y")
            }
            SpecError::EmptyPorts => write!(f, "port set Y must be non-empty"),
        }
    }
}

impl Error for SpecError {}

/// Error returned by consensus `propose` operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConsensusError {
    /// The invoking process is not a port of the object.
    NotAPort {
        /// The offending process index.
        pid: usize,
    },
    /// The process invoked `propose` more than once (§2: "a process can
    /// invoke it at most once").
    AlreadyProposed {
        /// The offending process index.
        pid: usize,
    },
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::NotAPort { pid } => {
                write!(f, "process {pid} is not a port of this consensus object")
            }
            ConsensusError::AlreadyProposed { pid } => {
                write!(f, "process {pid} already proposed to this consensus object")
            }
        }
    }
}

impl Error for ConsensusError {}

/// Error returned by the arbiter's `arbitrate` operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArbiterError {
    /// An owner invocation by a process outside the declared owner set.
    NotAnOwner {
        /// The offending process index.
        pid: usize,
    },
    /// The process invoked `arbitrate` more than once on this object
    /// (§6.1: "each process can invoke at most once").
    AlreadyArbitrated {
        /// The offending process index.
        pid: usize,
    },
    /// The owners-only consensus object rejected the owner's proposal.
    Consensus(ConsensusError),
}

impl fmt::Display for ArbiterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterError::NotAnOwner { pid } => {
                write!(f, "process {pid} invoked arbitrate(owner) but is not a declared owner")
            }
            ArbiterError::AlreadyArbitrated { pid } => {
                write!(f, "process {pid} already invoked arbitrate on this object")
            }
            ArbiterError::Consensus(e) => write!(f, "owners' consensus failed: {e}"),
        }
    }
}

impl Error for ArbiterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArbiterError::Consensus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConsensusError> for ArbiterError {
    fn from(e: ConsensusError) -> Self {
        ArbiterError::Consensus(e)
    }
}

/// Error returned by the group-based consensus `propose`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum GroupError {
    /// The process index is outside `0..n`.
    UnknownProcess {
        /// The offending process index.
        pid: usize,
    },
    /// The process invoked `propose` more than once.
    AlreadyProposed {
        /// The offending process index.
        pid: usize,
    },
    /// A group-level consensus object failed.
    Consensus(ConsensusError),
    /// An arbiter failed.
    Arbiter(ArbiterError),
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::UnknownProcess { pid } => write!(f, "process {pid} is not in 0..n"),
            GroupError::AlreadyProposed { pid } => {
                write!(f, "process {pid} already proposed to this group consensus")
            }
            GroupError::Consensus(e) => write!(f, "group consensus failed: {e}"),
            GroupError::Arbiter(e) => write!(f, "arbiter failed: {e}"),
        }
    }
}

impl Error for GroupError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GroupError::Consensus(e) => Some(e),
            GroupError::Arbiter(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConsensusError> for GroupError {
    fn from(e: ConsensusError) -> Self {
        GroupError::Consensus(e)
    }
}

impl From<ArbiterError> for GroupError {
    fn from(e: ArbiterError) -> Self {
        GroupError::Arbiter(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ConsensusError::NotAPort { pid: 3 }.to_string().contains('3'));
        assert!(ConsensusError::AlreadyProposed { pid: 1 }.to_string().contains("already"));
        assert!(ArbiterError::NotAnOwner { pid: 2 }.to_string().contains("owner"));
        assert!(SpecError::WaitFreeNotInPorts.to_string().contains("subset"));
        assert!(GroupError::UnknownProcess { pid: 9 }.to_string().contains('9'));
    }

    #[test]
    fn conversions_wrap_sources() {
        let e: ArbiterError = ConsensusError::NotAPort { pid: 0 }.into();
        assert!(Error::source(&e).is_some());
        let g: GroupError = e.into();
        assert!(Error::source(&g).is_some());
        let g2: GroupError = ConsensusError::AlreadyProposed { pid: 0 }.into();
        assert!(matches!(g2, GroupError::Consensus(_)));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConsensusError>();
        assert_send_sync::<ArbiterError>();
        assert_send_sync::<GroupError>();
        assert_send_sync::<SpecError>();
    }
}
