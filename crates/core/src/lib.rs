//! # `apc-core` — asymmetric progress conditions
//!
//! The primary contribution of *On Asymmetric Progress Conditions*
//! (Imbs, Raynal, Taubenfeld, PODC 2010), as a Rust library:
//!
//! * [`liveness`] — the `(y,x)`-liveness specification: an object accessible
//!   by `y ≤ n` processes that is wait-free for `x` of them and
//!   obstruction-free for the remaining `y − x`, together with the
//!   consensus-number arithmetic of Theorem 3 and the hierarchy of
//!   Corollary 1.
//! * [`consensus`] — consensus objects under every symmetric and asymmetric
//!   progress condition: wait-free consensus from compare-and-swap,
//!   obstruction-free consensus from registers (round-based, via
//!   adopt-commit), and the combined [`consensus::AsymmetricConsensus`]
//!   `(y,x)`-live object.
//! * [`arbiter`] — the paper's new **arbiter** object type (§6.1, Figure 4):
//!   a crash-tolerant owner/guest arbitration object, implemented from
//!   registers and one owners-only consensus object, in both real-thread and
//!   model form.
//! * [`group`] — **group-based asymmetric consensus** (§6.3, Figure 5): `n`
//!   processes partitioned into `m = ⌈n/x⌉` ordered groups reach consensus
//!   using `(x,x)`-live objects and a cascade of arbiters, with the paper's
//!   asymmetric progress condition.
//!
//! Every algorithm exists twice: a **real** implementation over threads and
//! atomics (`apc-registers` substrate), and a **model** implementation as an
//! `apc-model` program whose small configurations are verified *exhaustively*
//! (every schedule, every crash pattern within budget). The model form is
//! how this repository reproduces the paper's lemmas; the real form is what
//! a downstream user deploys.
//!
//! ## Example: a `(y,x)`-live consensus object across threads
//!
//! ```
//! use apc_core::consensus::{AsymmetricConsensus, Consensus};
//! use apc_core::liveness::Liveness;
//!
//! // 4 ports, wait-freedom for processes 0 and 1.
//! let cons: AsymmetricConsensus<u64> = AsymmetricConsensus::new(Liveness::new_first_n(4, 2));
//! std::thread::scope(|s| {
//!     for pid in 0..4usize {
//!         let cons = &cons;
//!         s.spawn(move || {
//!             let decided = cons.propose(pid, 100 + pid as u64).unwrap();
//!             assert!((100..104).contains(&decided));
//!         });
//!     }
//! });
//! ```

#![warn(missing_docs)]

pub mod arbiter;
pub mod consensus;
pub mod error;
pub mod group;
pub mod liveness;

pub use error::{ArbiterError, ConsensusError, GroupError, SpecError};
pub use liveness::Liveness;
