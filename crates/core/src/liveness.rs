//! The `(y,x)`-liveness specification and its hierarchy.
//!
//! A `(y,x)`-live object (§2 of the paper) can be accessed by a set `Y` of
//! `y ≤ n` processes (its *ports*) and guarantees:
//!
//! * **wait-free termination** for the processes of `X ⊆ Y`, `|X| = x`, and
//! * **obstruction-free termination** for the processes of `Y \ X`.
//!
//! `(n,n)`-liveness is plain wait-freedom; `(n,0)`-liveness is plain
//! obstruction-freedom. Theorem 3 shows that for `x < n` the `(n,x)`-live
//! consensus object has consensus number exactly `x + 1`, yielding the
//! hierarchy of Corollary 1:
//!
//! ```text
//! (n,0) ≺ (n,1) ≺ … ≺ (n,x) ≺ … ≺ (n,n−1) ≃ (n,n)
//! ```
//!
//! [`Liveness`] carries the two process sets; [`Liveness::consensus_number`]
//! implements Theorem 3's arithmetic; [`Liveness::hierarchy_cmp`] implements
//! the `≺`/`≃` relation between specs over the same port count.

use std::fmt;

use apc_model::{ProcessId, ProcessSet};

use crate::error::SpecError;

/// A `(y,x)`-liveness specification: port set `Y` and wait-free set `X ⊆ Y`.
///
/// # Examples
///
/// ```
/// use apc_core::liveness::Liveness;
///
/// let spec = Liveness::new_first_n(5, 2); // (5,2)-live
/// assert_eq!(spec.y(), 5);
/// assert_eq!(spec.x(), 2);
/// assert!(!spec.is_wait_free());
/// assert_eq!(spec.consensus_number(), 3); // Theorem 3: x + 1
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Liveness {
    ports: ProcessSet,
    wait_free: ProcessSet,
}

impl Liveness {
    /// Creates a specification from explicit port and wait-free sets.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::WaitFreeNotInPorts`] if `wait_free ⊄ ports`, and
    /// [`SpecError::EmptyPorts`] if `ports` is empty.
    pub fn new(ports: ProcessSet, wait_free: ProcessSet) -> Result<Self, SpecError> {
        if ports.is_empty() {
            return Err(SpecError::EmptyPorts);
        }
        if !wait_free.is_subset(ports) {
            return Err(SpecError::WaitFreeNotInPorts);
        }
        Ok(Liveness { ports, wait_free })
    }

    /// The `(y,x)` spec over processes `{0..y}` with wait-free prefix
    /// `{0..x}`.
    ///
    /// # Panics
    ///
    /// Panics if `x > y`, `y == 0`, or `y > 64`.
    pub fn new_first_n(y: usize, x: usize) -> Self {
        assert!(x <= y, "x = {x} must be at most y = {y}");
        Liveness::new(ProcessSet::first_n(y), ProcessSet::first_n(x))
            .expect("prefix sets are well-formed")
    }

    /// A wait-free (`(y,y)`-live) spec over the given ports.
    pub fn wait_free(ports: ProcessSet) -> Result<Self, SpecError> {
        Liveness::new(ports, ports)
    }

    /// An obstruction-free (`(y,0)`-live) spec over the given ports.
    pub fn obstruction_free(ports: ProcessSet) -> Result<Self, SpecError> {
        Liveness::new(ports, ProcessSet::EMPTY)
    }

    /// The port set `Y`.
    pub fn ports(&self) -> ProcessSet {
        self.ports
    }

    /// The wait-free set `X`.
    pub fn wait_free_set(&self) -> ProcessSet {
        self.wait_free
    }

    /// The guest set `Y \ X` (obstruction-free processes).
    pub fn guests(&self) -> ProcessSet {
        self.ports.difference(self.wait_free)
    }

    /// `y = |Y|`: the size of the object.
    pub fn y(&self) -> usize {
        self.ports.len()
    }

    /// `x = |X|`: the liveness degree of the object.
    pub fn x(&self) -> usize {
        self.wait_free.len()
    }

    /// Whether `pid` is a port.
    pub fn is_port(&self, pid: usize) -> bool {
        pid < 64 && self.ports.contains(ProcessId::new(pid))
    }

    /// Whether `pid` enjoys wait-freedom.
    pub fn is_wait_free_for(&self, pid: usize) -> bool {
        pid < 64 && self.wait_free.contains(ProcessId::new(pid))
    }

    /// Whether this is plain wait-freedom (`x = y`).
    pub fn is_wait_free(&self) -> bool {
        self.wait_free == self.ports
    }

    /// Whether this is plain obstruction-freedom (`x = 0`).
    pub fn is_obstruction_free_only(&self) -> bool {
        self.wait_free.is_empty()
    }

    /// The consensus number of a consensus object with this liveness
    /// (Theorem 3 and §4).
    ///
    /// * `x = y` (wait-free): consensus number `y` (Herlihy).
    /// * `x = y − 1`: consensus number `y` — the paper shows
    ///   `(n,n−1) ≃ (n,n)` (both have consensus number `n`).
    /// * `x < y − 1`: consensus number `x + 1` (Theorem 3).
    pub fn consensus_number(&self) -> usize {
        let (y, x) = (self.y(), self.x());
        if x + 1 >= y {
            y
        } else {
            x + 1
        }
    }

    /// The hierarchy relation of Corollary 1, comparing two specs **with the
    /// same port count** by constructive power:
    ///
    /// * `Less` — `self ≺ other` (other can implement self, not vice versa);
    /// * `Equal` — `self ≃ other` (inter-implementable, e.g. `(n,n−1)` and
    ///   `(n,n)`);
    /// * `Greater` — `other ≺ self`.
    ///
    /// # Panics
    ///
    /// Panics if the port counts differ (the corollary compares `(n,·)`
    /// objects only).
    pub fn hierarchy_cmp(&self, other: &Liveness) -> std::cmp::Ordering {
        assert_eq!(self.y(), other.y(), "Corollary 1 compares (n,x)-live objects over the same n");
        self.consensus_number().cmp(&other.consensus_number())
    }

    /// Restricts the object to fewer ports (used in Theorem 3's proof:
    /// "given an `(n,x)`-live object it is possible to restrict it to obtain
    /// an `(x+1,x)`-live object").
    ///
    /// The new port set is `ports ∩ keep`; the new wait-free set is
    /// `wait_free ∩ keep`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::EmptyPorts`] if the restriction removes all
    /// ports.
    pub fn restrict(&self, keep: ProcessSet) -> Result<Liveness, SpecError> {
        Liveness::new(self.ports.intersection(keep), self.wait_free.intersection(keep))
    }
}

impl fmt::Display for Liveness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{})-live [ports {}, wait-free {}]",
            self.y(),
            self.x(),
            self.ports,
            self.wait_free
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn new_first_n_builds_prefixes() {
        let spec = Liveness::new_first_n(4, 2);
        assert_eq!(spec.y(), 4);
        assert_eq!(spec.x(), 2);
        assert!(spec.is_port(3));
        assert!(!spec.is_port(4));
        assert!(spec.is_wait_free_for(1));
        assert!(!spec.is_wait_free_for(2));
        assert_eq!(spec.guests().len(), 2);
    }

    #[test]
    fn rejects_bad_specs() {
        let ports = ProcessSet::from_indices([0, 1]);
        let wf = ProcessSet::from_indices([2]);
        assert_eq!(Liveness::new(ports, wf), Err(SpecError::WaitFreeNotInPorts));
        assert_eq!(Liveness::new(ProcessSet::EMPTY, ProcessSet::EMPTY), Err(SpecError::EmptyPorts));
    }

    #[test]
    fn wait_free_and_obstruction_free_constructors() {
        let ports = ProcessSet::first_n(3);
        let wf = Liveness::wait_free(ports).unwrap();
        assert!(wf.is_wait_free());
        assert!(!wf.is_obstruction_free_only());
        let of = Liveness::obstruction_free(ports).unwrap();
        assert!(of.is_obstruction_free_only());
        assert!(!of.is_wait_free());
    }

    #[test]
    fn consensus_numbers_follow_theorem_3() {
        // (n,x)-live with x < n-1 has consensus number x+1.
        assert_eq!(Liveness::new_first_n(5, 0).consensus_number(), 1);
        assert_eq!(Liveness::new_first_n(5, 1).consensus_number(), 2);
        assert_eq!(Liveness::new_first_n(5, 2).consensus_number(), 3);
        assert_eq!(Liveness::new_first_n(5, 3).consensus_number(), 4);
        // (n,n-1) ≃ (n,n): both have consensus number n.
        assert_eq!(Liveness::new_first_n(5, 4).consensus_number(), 5);
        assert_eq!(Liveness::new_first_n(5, 5).consensus_number(), 5);
    }

    #[test]
    fn hierarchy_matches_corollary_1() {
        // (n,0) ≺ (n,1) ≺ … ≺ (n,n−1) ≃ (n,n).
        let n = 6;
        for x in 0..n - 1 {
            let lo = Liveness::new_first_n(n, x);
            let hi = Liveness::new_first_n(n, x + 1);
            assert_eq!(lo.hierarchy_cmp(&hi), Ordering::Less, "(6,{x}) ≺ (6,{})", x + 1);
        }
        let top_minus = Liveness::new_first_n(n, n - 1);
        let top = Liveness::new_first_n(n, n);
        assert_eq!(top_minus.hierarchy_cmp(&top), Ordering::Equal, "(n,n−1) ≃ (n,n)");
        assert_eq!(top.hierarchy_cmp(&top_minus), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "same n")]
    fn hierarchy_cmp_rejects_different_port_counts() {
        let a = Liveness::new_first_n(3, 1);
        let b = Liveness::new_first_n(4, 1);
        let _ = a.hierarchy_cmp(&b);
    }

    #[test]
    fn restrict_implements_theorem_3_construction() {
        // (n,x)-live restricted to X ∪ {one guest} is (x+1,x)-live.
        let spec = Liveness::new_first_n(6, 2); // wait-free {0,1}, guests {2..5}
        let keep = ProcessSet::from_indices([0, 1, 4]);
        let restricted = spec.restrict(keep).unwrap();
        assert_eq!(restricted.y(), 3);
        assert_eq!(restricted.x(), 2);
        assert_eq!(restricted.consensus_number(), 3);
    }

    #[test]
    fn restrict_to_nothing_fails() {
        let spec = Liveness::new_first_n(3, 1);
        assert_eq!(spec.restrict(ProcessSet::from_indices([10])), Err(SpecError::EmptyPorts));
    }

    #[test]
    fn display_renders() {
        let spec = Liveness::new_first_n(3, 1);
        let s = spec.to_string();
        assert!(s.contains("(3,1)-live"), "{s}");
    }

    #[test]
    fn out_of_range_pid_is_not_port() {
        let spec = Liveness::new_first_n(3, 1);
        assert!(!spec.is_port(100));
        assert!(!spec.is_wait_free_for(100));
    }
}
