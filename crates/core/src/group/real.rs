//! Group-based asymmetric consensus over threads (Figure 5, real form).

use std::fmt;

use apc_progress_macros::progress;
use apc_registers::AtomicCell;

use crate::arbiter::{Arbiter, Role};
use crate::consensus::{CasConsensus, Consensus};
use crate::error::GroupError;
use crate::group::GroupLayout;
use crate::liveness::Liveness;

/// The consensus object of Figure 5: `n` processes, `(x,x)`-live consensus
/// objects and registers, guaranteeing the **group-based asymmetric progress
/// condition** (§6.2):
///
/// > If `y` is the first group with a participant and a correct process of
/// > group `y` participates, then every correct participating process
/// > decides.
///
/// Internally (all arrays 1-based in the paper, 0-based here):
///
/// * `GXCONS[g]` — an `(x,x)`-live consensus object per group (here:
///   [`CasConsensus`] restricted to the group's ports — CAS is how real
///   hardware provides small-cardinality wait-free consensus);
/// * `VAL[g]` — the value decided inside group `g`;
/// * `ARBITER[g]` — an arbiter owned by group `g`, guested by groups
///   `g+1..m`;
/// * `ARB_VAL[g]` — the value agreed by groups `g..m`; `ARB_VAL[1]` is the
///   final decision.
///
/// The paper's task `T2` (return as soon as `ARB_VAL[1] ≠ ⊥`) is realized
/// by threading an early-return check through every waiting point: the
/// operation returns the moment a final decision exists, even mid-cascade.
///
/// # Examples
///
/// ```
/// use apc_core::group::GroupConsensus;
///
/// // 4 processes, (2,2)-live objects → 2 groups.
/// let cons: GroupConsensus<u64> = GroupConsensus::new(4, 2).unwrap();
/// // A group-1 process participates and is correct → everyone decides.
/// assert_eq!(cons.propose(0, 10).unwrap(), 10);
/// assert_eq!(cons.propose(3, 40).unwrap(), 10);
/// ```
pub struct GroupConsensus<T> {
    layout: GroupLayout,
    /// `VAL[g]` at index `g-1`.
    val: Vec<AtomicCell<T>>,
    /// `ARB_VAL[g]` at index `g-1`.
    arb_val: Vec<AtomicCell<T>>,
    /// `GXCONS[g]` at index `g-1`.
    gxcons: Vec<CasConsensus<T>>,
    /// `ARBITER[g]` at index `g-1` (length `m-1`).
    arbiters: Vec<Arbiter>,
}

impl<T: Clone + Eq + Send + Sync> GroupConsensus<T> {
    /// Creates the object for `n` processes using `(x,x)`-live consensus
    /// objects.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupLayout::new`]'s validation errors.
    pub fn new(n: usize, x: usize) -> Result<Self, GroupError> {
        let layout = GroupLayout::new(n, x)?;
        let m = layout.m();
        let gxcons = (1..=m)
            .map(|g| {
                let spec = Liveness::wait_free(layout.members(g))
                    .expect("group member sets are non-empty");
                CasConsensus::new(spec)
            })
            .collect();
        let arbiters = (1..m).map(|g| Arbiter::new(layout.members(g))).collect();
        Ok(GroupConsensus {
            layout,
            val: (0..m).map(|_| AtomicCell::new()).collect(),
            arb_val: (0..m).map(|_| AtomicCell::new()).collect(),
            gxcons,
            arbiters,
        })
    }

    /// The group partition in use.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }

    /// The final decision, if one exists yet (`ARB_VAL[1]`).
    #[progress(wait_free)]
    pub fn peek(&self) -> Option<T> {
        self.arb_val[0].load()
    }

    /// The decision computed *inside* group `g`, if any (`VAL[g]`).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not in `1..=m`.
    #[progress(wait_free)]
    pub fn group_value(&self, g: usize) -> Option<T> {
        assert!(g >= 1 && g <= self.layout.m());
        self.val[g - 1].load()
    }

    /// A snapshot of the full `ARB_VAL[1..m]` array — the paper's §6.3
    /// remark: "if needed by an application, the full array `ARB_VAL[1..m]`
    /// could be returned as result".
    ///
    /// Due to asynchrony, two processes may observe different arrays, but
    /// the remark's guarantees hold and are tested: entry 1 (index 0) is
    /// the common decision once set, and any two non-`⊥` observations of
    /// the same entry are equal.
    #[progress(wait_free)]
    pub fn arb_val_array(&self) -> Vec<Option<T>> {
        self.arb_val.iter().map(|cell| cell.load()).collect()
    }

    /// Spin-reads `cell` until non-`⊥`, with the task-`T2` escape: returns
    /// early if `ARB_VAL[1]` becomes set.
    ///
    /// The waits this helper implements are exactly the reads the paper's
    /// proofs show to be immediately satisfied (Lemma 10's case analysis) —
    /// the loop is defensive, the escape is `T2`.
    #[progress(blocking)]
    fn await_cell(&self, cell: &AtomicCell<T>) -> Await<T> {
        loop {
            if let Some(v) = cell.load() {
                return Await::Value(v);
            }
            if let Some(d) = self.peek() {
                return Await::FinalDecision(d);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// `propose(v)` — Figure 5.
    ///
    /// Blocks until a decision is available; the paper's asymmetric
    /// termination property states exactly when that is guaranteed. Returns
    /// the single decided value.
    ///
    /// # Errors
    ///
    /// * [`GroupError::UnknownProcess`] if `pid ≥ n`;
    /// * [`GroupError::AlreadyProposed`] on a second proposal by `pid`
    ///   (surfaced via the group's internal consensus object);
    /// * consensus/arbiter errors on protocol misuse.
    #[progress(blocking)]
    pub fn propose(&self, pid: usize, value: T) -> Result<T, GroupError> {
        if pid >= self.layout.n() {
            return Err(GroupError::UnknownProcess { pid });
        }
        let m = self.layout.m();
        // (01) let y = group(i).
        let y = self.layout.group_of(pid);

        // (02) VAL[y] ← GXCONS[y].propose(v_i).
        let val_y = match self.gxcons[y - 1].propose(pid, value) {
            Ok(v) => v,
            Err(crate::error::ConsensusError::AlreadyProposed { pid }) => {
                return Err(GroupError::AlreadyProposed { pid });
            }
            Err(e) => return Err(e.into()),
        };
        self.val[y - 1].store(val_y.clone());

        // Competition #1 (lines 03–09): deposit into ARB_VAL[y].
        if y == m {
            // (03) last group: no competition below.
            self.arb_val[m - 1].store(val_y);
        } else {
            // (04) winner ← ARBITER[y].arbitrate(owner).
            let winner = self.arbiters[y - 1]
                .arbitrate_cancelable(pid, Role::Owner, || self.peek().is_some())?;
            let Some(winner) = winner else {
                return Ok(self.peek().expect("cancel fires only on a final decision"));
            };
            if winner == Role::Owner {
                // (06) ARB_VAL[y] ← VAL[y].
                self.arb_val[y - 1].store(val_y);
            } else {
                // (07) ARB_VAL[y] ← ARB_VAL[y+1] (non-⊥ by Lemma 10).
                match self.await_cell(&self.arb_val[y]) {
                    Await::Value(v) => self.arb_val[y - 1].store(v),
                    Await::FinalDecision(d) => return Ok(d),
                }
            }
        }

        // Competition #2 (lines 10–18): cascade down to ARB_VAL[1].
        for level in (1..y).rev() {
            // (12) winner ← ARBITER[ℓ].arbitrate(guest).
            let winner = self.arbiters[level - 1]
                .arbitrate_cancelable(pid, Role::Guest, || self.peek().is_some())?;
            let Some(winner) = winner else {
                return Ok(self.peek().expect("cancel fires only on a final decision"));
            };
            let carried = if winner == Role::Guest {
                // (14) ARB_VAL[ℓ] ← ARB_VAL[ℓ+1] (we wrote it ourselves).
                self.await_cell(&self.arb_val[level])
            } else {
                // (15) ARB_VAL[ℓ] ← VAL[ℓ] (owner wrote it before arbitrating).
                self.await_cell(&self.val[level - 1])
            };
            match carried {
                Await::Value(v) => self.arb_val[level - 1].store(v),
                Await::FinalDecision(d) => return Ok(d),
            }
        }

        // Task T2: wait(ARB_VAL[1] ≠ ⊥); return it. At this point the
        // cascade above has written it (y = 1 writes it in competition #1).
        match self.await_cell(&self.arb_val[0]) {
            Await::Value(v) | Await::FinalDecision(v) => Ok(v),
        }
    }
}

enum Await<T> {
    /// The awaited cell produced a value.
    Value(T),
    /// `ARB_VAL[1]` was set first: final decision available (task `T2`).
    FinalDecision(T),
}

impl<T: Clone + Eq + fmt::Debug> fmt::Debug for GroupConsensus<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupConsensus")
            .field("layout", &self.layout)
            .field("decision", &self.arb_val[0].load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::history::{assert_consensus, ProposeRecord};
    use std::sync::Mutex;

    #[test]
    fn single_group_behaves_like_consensus() {
        let cons: GroupConsensus<u32> = GroupConsensus::new(3, 3).unwrap();
        assert_eq!(cons.layout().m(), 1);
        assert_eq!(cons.propose(1, 11).unwrap(), 11);
        assert_eq!(cons.propose(0, 22).unwrap(), 11);
        assert_eq!(cons.propose(2, 33).unwrap(), 11);
    }

    #[test]
    fn group_one_first_wins_sequentially() {
        let cons: GroupConsensus<u32> = GroupConsensus::new(4, 2).unwrap();
        assert_eq!(cons.propose(0, 100).unwrap(), 100);
        // Later processes of any group adopt group 1's value.
        assert_eq!(cons.propose(2, 300).unwrap(), 100);
        assert_eq!(cons.propose(3, 400).unwrap(), 100);
        assert_eq!(cons.peek(), Some(100));
    }

    #[test]
    fn last_group_alone_decides_its_value() {
        // Only group 2 participates: its value must be decided (fairness of
        // the algorithm: any process's value can win under some pattern).
        let cons: GroupConsensus<u32> = GroupConsensus::new(4, 2).unwrap();
        assert_eq!(cons.propose(3, 40).unwrap(), 40);
        assert_eq!(cons.group_value(2), Some(40));
        assert_eq!(cons.peek(), Some(40));
    }

    #[test]
    fn middle_group_alone_decides() {
        let cons: GroupConsensus<u32> = GroupConsensus::new(6, 2).unwrap(); // 3 groups
        assert_eq!(cons.propose(2, 33).unwrap(), 33);
        assert_eq!(cons.peek(), Some(33));
    }

    #[test]
    fn unknown_process_rejected() {
        let cons: GroupConsensus<u8> = GroupConsensus::new(2, 1).unwrap();
        assert!(matches!(cons.propose(5, 0), Err(GroupError::UnknownProcess { pid: 5 })));
    }

    #[test]
    fn double_propose_rejected() {
        let cons: GroupConsensus<u8> = GroupConsensus::new(2, 1).unwrap();
        cons.propose(1, 1).unwrap();
        assert!(matches!(cons.propose(1, 2), Err(GroupError::AlreadyProposed { pid: 1 })));
    }

    #[test]
    fn concurrent_all_participate_agreement() {
        for round in 0..30 {
            let n = 6;
            let cons: GroupConsensus<u64> = GroupConsensus::new(n, 2).unwrap();
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..n {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = (round * 100 + pid) as u64;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            assert_consensus(&records.into_inner().unwrap());
        }
    }

    #[test]
    fn concurrent_suffix_groups_agreement() {
        // Only groups 2 and 3 participate; the first participating group's
        // correctness guarantees termination; everyone agrees.
        for _ in 0..30 {
            let n = 6;
            let cons: GroupConsensus<u64> = GroupConsensus::new(n, 2).unwrap();
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 2..n {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = pid as u64 * 7;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            let records = records.into_inner().unwrap();
            assert_eq!(records.len(), 4);
            assert_consensus(&records);
        }
    }

    #[test]
    fn fairness_any_group_value_can_win() {
        // For each group g, a pattern exists where g's value is decided:
        // schedule only group g (run its member alone first).
        for g in 1..=3usize {
            let cons: GroupConsensus<u64> = GroupConsensus::new(6, 2).unwrap();
            let pid = (g - 1) * 2;
            let got = cons.propose(pid, 1000 + g as u64).unwrap();
            assert_eq!(got, 1000 + g as u64, "group {g}'s value wins when it runs first");
        }
    }

    /// The §6.3 remark: the full ARB_VAL array is coherent — entry 1 is the
    /// decision, and concurrent observers never see conflicting non-⊥
    /// entries.
    #[test]
    fn arb_val_array_coherent() {
        for _ in 0..20 {
            let n = 6;
            let cons: GroupConsensus<u64> = GroupConsensus::new(n, 2).unwrap();
            let arrays = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..n {
                    let cons = &cons;
                    let arrays = &arrays;
                    s.spawn(move || {
                        let decided = cons.propose(pid, pid as u64).unwrap();
                        let snapshot = cons.arb_val_array();
                        arrays.lock().unwrap().push((decided, snapshot));
                    });
                }
            });
            let arrays = arrays.into_inner().unwrap();
            for (decided, snapshot) in &arrays {
                // Entry 1 is set by the time any propose returns, and equals
                // the decision.
                assert_eq!(snapshot[0].as_ref(), Some(decided));
            }
            // Pairwise: non-⊥ entries agree across observers.
            for i in 0..arrays.len() {
                for j in i + 1..arrays.len() {
                    for (a, b) in arrays[i].1.iter().zip(arrays[j].1.iter()) {
                        if let (Some(a), Some(b)) = (a, b) {
                            assert_eq!(a, b, "ARB_VAL entries must agree when both set");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn singleton_groups_x_equals_one() {
        let cons: GroupConsensus<u32> = GroupConsensus::new(3, 1).unwrap();
        assert_eq!(cons.layout().m(), 3);
        assert_eq!(cons.propose(1, 20).unwrap(), 20);
        assert_eq!(cons.propose(2, 30).unwrap(), 20);
        assert_eq!(cons.propose(0, 10).unwrap(), 20);
    }
}
