//! Group-based asymmetric consensus as an `apc-model` program
//! (Figure 5, model form).
//!
//! Every shared-memory access of Figure 5 — including the arbiter
//! sub-protocol of Figure 4, inlined — is one atomic event, so small
//! configurations can be explored exhaustively. The paper's two tasks are
//! sequenced (`T1` then `T2`): `T2` is read-only, so sequencing preserves
//! all safety properties, and Lemma 10 shows `T1` terminates exactly under
//! the asymmetric progress condition, so the guaranteed termination cases
//! are preserved as well. (The real implementation additionally interleaves
//! the `T2` early return.)

use apc_model::{
    MaybeParticipant, ObjectId, Op, ProcessSet, Program, ProgramAction, System, SystemBuilder,
    Value,
};

use crate::arbiter::model::{role_value, value_role, ArbiterObjects};
use crate::arbiter::Role;
use crate::group::GroupLayout;

/// Object ids of a complete group-consensus instance in a model system.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroupObjects {
    /// `GXCONS[g]` at index `g-1`: the per-group `(x,x)`-live consensus.
    pub gxcons: Vec<ObjectId>,
    /// `VAL[g]` at index `g-1`.
    pub val: Vec<ObjectId>,
    /// `ARB_VAL[g]` at index `g-1`.
    pub arb_val: Vec<ObjectId>,
    /// `ARBITER[g]` at index `g-1` (length `m-1`).
    pub arbiters: Vec<ArbiterObjects>,
}

impl GroupObjects {
    /// Adds all shared objects of Figure 5 for the given layout.
    pub fn add_to(builder: &mut SystemBuilder, layout: GroupLayout) -> Self {
        let m = layout.m();
        let gxcons = (1..=m).map(|g| builder.add_wait_free_consensus(layout.members(g))).collect();
        let val = (0..m).map(|_| builder.add_register(Value::Bot)).collect();
        let arb_val = (0..m).map(|_| builder.add_register(Value::Bot)).collect();
        let arbiters = (1..m).map(|g| ArbiterObjects::add_to(builder, layout.members(g))).collect();
        GroupObjects { gxcons, val, arb_val, arbiters }
    }
}

/// One process of Figure 5: `propose(v)`, then decide `ARB_VAL[1]`.
///
/// States are named after the value that *arrives next*: e.g. in
/// `OwnerGotGuestFlag` the pending operation is the read of `PART[guest]`,
/// whose result the next `resume` receives.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroupProgram {
    objs: GroupObjects,
    layout: GroupLayout,
    pid: u8,
    proposal: u32,
    /// My group (1-based); the `y` of the paper.
    y: u8,
    /// The value being carried into the next `ARB_VAL` write.
    carried: Value,
    /// Current arbitration level: `y` during competition #1, then
    /// `y-1 .. 1` during competition #2.
    level: u8,
    state: GState,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum GState {
    /// Nothing issued yet; next: propose to `GXCONS[y]` (line 02).
    Start,
    /// Awaiting the group decision from `GXCONS[y]`.
    GotGroupDecision,
    /// Awaiting the `VAL[y]` write acknowledgement (line 02).
    WroteVal,
    /// Awaiting the `PART[owner]` write (Figure 4 line 01, owner side).
    OwnerWrotePart,
    /// Awaiting the read of `PART[guest]` (Figure 4 line 02).
    OwnerGotGuestFlag,
    /// Awaiting the `XCONS` decision (Figure 4 line 02).
    OwnerGotDecision,
    /// Awaiting the `WINNER` write (Figure 4 line 03).
    OwnerWroteWinner,
    /// Awaiting the final read of `WINNER` (Figure 4 line 06): resolves
    /// competition #1.
    Comp1GotWinner,
    /// Awaiting the read of `ARB_VAL[y+1]` (line 07; spins while `⊥`).
    Comp1GotNext,
    /// Awaiting the `ARB_VAL[y]` write (lines 03/06/07).
    WroteArbValComp1,
    /// Awaiting the `PART[guest]` write at `level` (Figure 4 line 01).
    GuestWrotePart,
    /// Awaiting the read of `PART[owner]` at `level` (Figure 4 line 04).
    GuestGotOwnerFlag,
    /// Awaiting a read of `WINNER` at `level` (line 04 wait; spins on `⊥`).
    GuestAwaitWinner,
    /// Awaiting the `WINNER ← guest` write (line 04 else-branch).
    GuestWroteWinner,
    /// Awaiting the read-back of `WINNER` after writing it.
    GuestGotWinner,
    /// Awaiting the read of `ARB_VAL[level+1]` (line 14; spins while `⊥`).
    GotSourceFromArbVal,
    /// Awaiting the read of `VAL[level]` (line 15; spins while `⊥`).
    GotSourceFromVal,
    /// Awaiting the `ARB_VAL[level]` write (lines 14/15).
    WroteArbValComp2,
    /// Task T2: awaiting reads of `ARB_VAL[1]`; decides when non-`⊥`.
    Final,
}

impl GroupProgram {
    /// A participant proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics if `pid ≥ n`.
    pub fn new(objs: GroupObjects, layout: GroupLayout, pid: usize, proposal: u32) -> Self {
        let y = layout.group_of(pid) as u8;
        GroupProgram {
            objs,
            layout,
            pid: pid as u8,
            proposal,
            y,
            carried: Value::Bot,
            level: y,
            state: GState::Start,
        }
    }

    fn m(&self) -> u8 {
        self.layout.m() as u8
    }

    fn arb(&self, level: u8) -> &ArbiterObjects {
        &self.objs.arbiters[(level - 1) as usize]
    }

    fn arb_val(&self, g: u8) -> ObjectId {
        self.objs.arb_val[(g - 1) as usize]
    }

    fn val(&self, g: u8) -> ObjectId {
        self.objs.val[(g - 1) as usize]
    }

    fn gxcons(&self, g: u8) -> ObjectId {
        self.objs.gxcons[(g - 1) as usize]
    }

    /// After `ARB_VAL[level]` was written: descend a level (competition #2,
    /// lines 10–18) or move to task T2.
    fn descend(&mut self) -> ProgramAction {
        if self.level > 1 {
            self.level -= 1;
            self.state = GState::GuestWrotePart;
            ProgramAction::Invoke(Op::Write(self.arb(self.level).part_guest, Value::Bit(true)))
        } else {
            self.state = GState::Final;
            ProgramAction::Invoke(Op::Read(self.arb_val(1)))
        }
    }

    /// The winner at `level` is known during competition #2: read the value
    /// source (lines 13–15).
    fn comp2_read_source(&mut self, winner: Role) -> ProgramAction {
        match winner {
            Role::Guest => {
                self.state = GState::GotSourceFromArbVal;
                ProgramAction::Invoke(Op::Read(self.arb_val(self.level + 1)))
            }
            Role::Owner => {
                self.state = GState::GotSourceFromVal;
                ProgramAction::Invoke(Op::Read(self.val(self.level)))
            }
        }
    }
}

impl Program for GroupProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        use GState::*;
        match self.state {
            Start => {
                // (02) GXCONS[y].propose(v_i).
                self.state = GotGroupDecision;
                ProgramAction::Invoke(Op::Propose(self.gxcons(self.y), Value::Num(self.proposal)))
            }
            GotGroupDecision => {
                // (02) VAL[y] ← the group decision.
                self.carried = last.expect("propose returns the group decision");
                self.state = WroteVal;
                ProgramAction::Invoke(Op::Write(self.val(self.y), self.carried))
            }
            WroteVal => {
                if self.y == self.m() {
                    // (03) ARB_VAL[m] ← VAL[m].
                    self.state = WroteArbValComp1;
                    ProgramAction::Invoke(Op::Write(self.arb_val(self.y), self.carried))
                } else {
                    // (04) ARBITER[y].arbitrate(owner): Figure 4 line 01.
                    self.state = OwnerWrotePart;
                    ProgramAction::Invoke(Op::Write(self.arb(self.y).part_owner, Value::Bit(true)))
                }
            }
            OwnerWrotePart => {
                // Figure 4 line 02: read PART[guest].
                self.state = OwnerGotGuestFlag;
                ProgramAction::Invoke(Op::Read(self.arb(self.y).part_guest))
            }
            OwnerGotGuestFlag => {
                let guests = last.expect("read returns").expect_bit("PART[guest]");
                self.state = OwnerGotDecision;
                ProgramAction::Invoke(Op::Propose(self.arb(self.y).xcons, Value::Bit(guests)))
            }
            OwnerGotDecision => {
                // Figure 4 line 03: WINNER ← guest / owner.
                let guest_win = last.expect("propose returns").expect_bit("XCONS decision");
                let w = if guest_win { Role::Guest } else { Role::Owner };
                self.state = OwnerWroteWinner;
                ProgramAction::Invoke(Op::Write(self.arb(self.y).winner, role_value(w)))
            }
            OwnerWroteWinner => {
                // Figure 4 line 06: read WINNER back.
                self.state = Comp1GotWinner;
                ProgramAction::Invoke(Op::Read(self.arb(self.y).winner))
            }
            Comp1GotWinner => {
                let w = value_role(last.expect("read returns"));
                match w {
                    Role::Owner => {
                        // (06) ARB_VAL[y] ← VAL[y] (we hold the value).
                        self.state = WroteArbValComp1;
                        ProgramAction::Invoke(Op::Write(self.arb_val(self.y), self.carried))
                    }
                    Role::Guest => {
                        // (07) ARB_VAL[y] ← ARB_VAL[y+1].
                        self.state = Comp1GotNext;
                        ProgramAction::Invoke(Op::Read(self.arb_val(self.y + 1)))
                    }
                }
            }
            Comp1GotNext => {
                let v = last.expect("read returns");
                if v.is_bot() {
                    // Non-⊥ by the Lemma 10 argument; spin defensively (the
                    // exhaustive fairness checks prove the spin is finite).
                    ProgramAction::Invoke(Op::Read(self.arb_val(self.y + 1)))
                } else {
                    self.carried = v;
                    self.state = WroteArbValComp1;
                    ProgramAction::Invoke(Op::Write(self.arb_val(self.y), self.carried))
                }
            }
            WroteArbValComp1 => self.descend(),
            GuestWrotePart => {
                // Figure 4 line 04: read PART[owner].
                self.state = GuestGotOwnerFlag;
                ProgramAction::Invoke(Op::Read(self.arb(self.level).part_owner))
            }
            GuestGotOwnerFlag => {
                let owners = last.expect("read returns").expect_bit("PART[owner]");
                if owners {
                    // wait(WINNER ≠ ⊥).
                    self.state = GuestAwaitWinner;
                    ProgramAction::Invoke(Op::Read(self.arb(self.level).winner))
                } else {
                    // WINNER ← guest.
                    self.state = GuestWroteWinner;
                    ProgramAction::Invoke(Op::Write(
                        self.arb(self.level).winner,
                        role_value(Role::Guest),
                    ))
                }
            }
            GuestAwaitWinner => {
                let v = last.expect("read returns");
                if v.is_bot() {
                    ProgramAction::Invoke(Op::Read(self.arb(self.level).winner))
                } else {
                    self.comp2_read_source(value_role(v))
                }
            }
            GuestWroteWinner => {
                // Figure 4 line 06: read WINNER back.
                self.state = GuestGotWinner;
                ProgramAction::Invoke(Op::Read(self.arb(self.level).winner))
            }
            GuestGotWinner => {
                let w = value_role(last.expect("read returns"));
                self.comp2_read_source(w)
            }
            GotSourceFromArbVal => {
                let v = last.expect("read returns");
                if v.is_bot() {
                    ProgramAction::Invoke(Op::Read(self.arb_val(self.level + 1)))
                } else {
                    self.carried = v;
                    self.state = WroteArbValComp2;
                    ProgramAction::Invoke(Op::Write(self.arb_val(self.level), self.carried))
                }
            }
            GotSourceFromVal => {
                let v = last.expect("read returns");
                if v.is_bot() {
                    ProgramAction::Invoke(Op::Read(self.val(self.level)))
                } else {
                    self.carried = v;
                    self.state = WroteArbValComp2;
                    ProgramAction::Invoke(Op::Write(self.arb_val(self.level), self.carried))
                }
            }
            WroteArbValComp2 => self.descend(),
            Final => {
                let v = last.expect("read returns");
                if v.is_bot() {
                    ProgramAction::Invoke(Op::Read(self.arb_val(1)))
                } else {
                    ProgramAction::Decide(v)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "group-consensus"
    }
}

/// Builds a group-consensus model system where `participants` propose
/// (process `i` proposes `100 + i`) and the rest stay absent.
pub fn group_system(
    layout: GroupLayout,
    participants: ProcessSet,
) -> (System<MaybeParticipant<GroupProgram>>, GroupObjects) {
    let mut builder = SystemBuilder::new(layout.n());
    let objs = GroupObjects::add_to(&mut builder, layout);
    let system = builder.build(|pid| {
        if participants.contains(pid) {
            MaybeParticipant::Present(GroupProgram::new(
                objs.clone(),
                layout,
                pid.index(),
                100 + pid.index() as u32,
            ))
        } else {
            MaybeParticipant::Absent
        }
    });
    (system, objs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn};
    use apc_model::fairness::{fair_termination, StateGraph};
    use apc_model::{ProcessId, Runner, Schedule};

    fn proposals(participants: &[usize]) -> Vec<Value> {
        participants.iter().map(|&i| Value::Num(100 + i as u32)).collect()
    }

    #[test]
    fn solo_group1_process_decides_its_value() {
        let layout = GroupLayout::new(4, 2).unwrap();
        let (sys, _) = group_system(layout, ProcessSet::from_indices([0]));
        let mut runner = Runner::new(sys);
        // Absent processes are never scheduled; only p0's termination matters.
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(0), 1), 500);
        assert_eq!(runner.system().decision(ProcessId::new(0)), Some(Value::Num(100)));
    }

    #[test]
    fn solo_last_group_process_decides_its_value() {
        let layout = GroupLayout::new(4, 2).unwrap();
        let (sys, _) = group_system(layout, ProcessSet::from_indices([3]));
        let mut runner = Runner::new(sys);
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(3), 1), 500);
        assert_eq!(runner.system().decision(ProcessId::new(3)), Some(Value::Num(103)));
    }

    /// Exhaustive agreement + validity for (n,x) = (3,1): three singleton
    /// groups, all participating — every schedule.
    #[test]
    fn exhaustive_agreement_three_singleton_groups() {
        let layout = GroupLayout::new(3, 1).unwrap();
        let (sys, _) = group_system(layout, ProcessSet::first_n(3));
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(3_000_000));
        let result = explorer
            .explore(&sys, &[&Agreement, &ValidityIn::new(proposals(&[0, 1, 2])), &NoFaults]);
        assert!(result.ok(), "violations: {:?}", result.violations.first());
        assert!(!result.truncated, "state space must be explored fully");
    }

    /// Exhaustive agreement for (4,2): two groups of two (bounded at 1.2M
    /// distinct states to bound memory; agreement is checked at every
    /// visited state).
    #[test]
    fn exhaustive_agreement_two_groups_of_two() {
        let layout = GroupLayout::new(4, 2).unwrap();
        let (sys, _) = group_system(layout, ProcessSet::first_n(4));
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(1_200_000));
        let result = explorer
            .explore(&sys, &[&Agreement, &ValidityIn::new(proposals(&[0, 1, 2, 3])), &NoFaults]);
        assert!(result.ok(), "violations: {:?}", result.violations.first());
    }

    /// Lemma 10 (asymmetric termination), exhaustively: participants from
    /// the first participating group onwards always decide under fairness.
    #[test]
    fn fair_termination_all_participate_3x1() {
        let layout = GroupLayout::new(3, 1).unwrap();
        let (sys, _) = group_system(layout, ProcessSet::first_n(3));
        let graph = StateGraph::build(&sys, 3_000_000);
        let verdict = fair_termination(&graph, |_| true);
        assert!(verdict.holds(), "{verdict:?}");
    }

    /// Lemma 10 with a non-participating first group: y = 2 is the first
    /// participating group; all participants must still decide.
    #[test]
    fn fair_termination_suffix_participation() {
        let layout = GroupLayout::new(3, 1).unwrap();
        let (sys, _) = group_system(layout, ProcessSet::from_indices([1, 2]));
        let graph = StateGraph::build(&sys, 3_000_000);
        let verdict = fair_termination(&graph, |pid| pid.index() >= 1);
        assert!(verdict.holds(), "{verdict:?}");
    }

    /// Only the last group participates.
    #[test]
    fn fair_termination_last_group_only() {
        let layout = GroupLayout::new(4, 2).unwrap();
        let (sys, _) = group_system(layout, ProcessSet::from_indices([2, 3]));
        let graph = StateGraph::build(&sys, 3_000_000);
        let verdict = fair_termination(&graph, |pid| pid.index() >= 2);
        assert!(verdict.holds(), "{verdict:?}");
    }

    /// The asymmetric progress condition's crash caveat: if the whole first
    /// participating group crashes mid-protocol, later groups may block.
    /// (This is permitted — the condition requires a *correct* process in
    /// group y.) We verify the complement: a crash of a group-2 process
    /// never blocks group-1 processes.
    #[test]
    fn group1_untouched_by_group2_crash() {
        let layout = GroupLayout::new(3, 1).unwrap();
        let (mut sys, _) = group_system(layout, ProcessSet::first_n(3));
        // p1 (group 2) takes two steps then crashes.
        sys.step(ProcessId::new(1));
        sys.step(ProcessId::new(1));
        sys.crash(ProcessId::new(1));
        let graph = StateGraph::build(&sys, 3_000_000);
        let verdict = fair_termination(&graph, |pid| pid.index() == 0);
        assert!(verdict.holds(), "group 1 must always decide: {verdict:?}");
    }

    #[test]
    fn random_schedules_agree() {
        let layout = GroupLayout::new(6, 2).unwrap();
        for seed in 0..20 {
            let (sys, _) = group_system(layout, ProcessSet::first_n(6));
            let mut runner = Runner::new(sys);
            let schedule = Schedule::random(ProcessSet::first_n(6), 4000, seed);
            runner.run(&schedule);
            let decisions = runner.system().decisions();
            for ((_, a), (_, b)) in decisions.iter().zip(decisions.iter().skip(1)) {
                assert_eq!(a, b, "agreement under seed {seed}");
            }
        }
    }
}
