//! Group-based asymmetric consensus (§6.2–6.4 of the paper, Figure 5).
//!
//! Setting: `n` processes, read/write registers, and `(x,x)`-live consensus
//! objects (wait-free consensus usable by at most `x` processes each). By
//! the paper's Theorems 1–3, wait-free consensus for all `n` processes is
//! impossible in this world. The group algorithm extracts the strongest
//! *asymmetric* progress condition available:
//!
//! > Partition the processes into `m = ⌈n/x⌉` ordered groups. Let `y` be the
//! > first group (in the order) with a participant. **If a correct process
//! > of group `y` participates, every correct participating process
//! > decides.**
//!
//! Each group solves consensus internally with its own `(x,x)`-live object;
//! adjacent "winner so far" values are then merged down a cascade of
//! [`crate::arbiter::Arbiter`] objects — group `g`'s members are the owners
//! of `ARBITER[g]`, all higher groups its guests.
//!
//! [`GroupLayout`] computes the partition; [`real::GroupConsensus`] is the
//! thread implementation; [`model`] is the exhaustive-checkable program.

pub mod model;
pub mod real;

pub use real::GroupConsensus;

use apc_model::{ProcessId, ProcessSet};

use crate::error::GroupError;

/// The partition of `n` processes into `m = ⌈n/x⌉` ordered groups of size at
/// most `x` (§6.2: "it is possible to partition the n processes into
/// `m = ⌈n/x⌉` groups").
///
/// Groups are numbered `1..=m` (1-based, as in the paper); group 1 is the
/// most important. Process `p_i` belongs to group `⌊i/x⌋ + 1`.
///
/// # Examples
///
/// ```
/// use apc_core::group::GroupLayout;
/// let layout = GroupLayout::new(7, 3).unwrap(); // m = ⌈7/3⌉ = 3 groups
/// assert_eq!(layout.m(), 3);
/// assert_eq!(layout.group_of(0), 1);
/// assert_eq!(layout.group_of(6), 3);
/// assert_eq!(layout.members(3).len(), 1); // the last group is smaller
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroupLayout {
    n: usize,
    x: usize,
}

impl GroupLayout {
    /// Creates the layout for `n` processes with `(x,x)`-live objects.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::UnknownProcess`] if `n == 0` or `n > 64`, and
    /// uses the same error for a degenerate `x` (`x == 0` or `x > n` is a
    /// configuration error: an `(x,x)`-live object with `x > n` is just an
    /// `(n,n)` one, and `x = 0` provides nothing).
    pub fn new(n: usize, x: usize) -> Result<Self, GroupError> {
        if n == 0 || n > 64 {
            return Err(GroupError::UnknownProcess { pid: n });
        }
        if x == 0 || x > n {
            return Err(GroupError::UnknownProcess { pid: x });
        }
        Ok(GroupLayout { n, x })
    }

    /// Total number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Size bound of each group (the `x` of the `(x,x)`-live objects).
    pub fn x(&self) -> usize {
        self.x
    }

    /// Number of groups `m = ⌈n/x⌉`.
    pub fn m(&self) -> usize {
        self.n.div_ceil(self.x)
    }

    /// The (1-based) group of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid ≥ n`.
    pub fn group_of(&self, pid: usize) -> usize {
        assert!(pid < self.n, "pid {pid} out of range (n = {})", self.n);
        pid / self.x + 1
    }

    /// The member set of (1-based) group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not in `1..=m`.
    pub fn members(&self, g: usize) -> ProcessSet {
        assert!(g >= 1 && g <= self.m(), "group {g} out of range (m = {})", self.m());
        let start = (g - 1) * self.x;
        let end = (start + self.x).min(self.n);
        ProcessSet::from_indices(start..end)
    }

    /// Iterates over `(group, members)` pairs in group order.
    pub fn groups(&self) -> impl Iterator<Item = (usize, ProcessSet)> + '_ {
        (1..=self.m()).map(move |g| (g, self.members(g)))
    }

    /// The first (most important) group containing any process of `set`,
    /// or `None` if `set` is empty. This is the `y` of the paper's
    /// asymmetric termination property.
    pub fn first_group_of(&self, set: ProcessSet) -> Option<usize> {
        set.iter().map(|p: ProcessId| self.group_of(p.index())).min()
    }
}

impl std::fmt::Display for GroupLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} processes in {} group(s) of ≤ {}", self.n, self.m(), self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_counts() {
        let l = GroupLayout::new(10, 3).unwrap();
        assert_eq!(l.m(), 4);
        assert_eq!(l.members(1), ProcessSet::from_indices([0, 1, 2]));
        assert_eq!(l.members(4), ProcessSet::from_indices([9]));
        assert_eq!(l.n(), 10);
        assert_eq!(l.x(), 3);
    }

    #[test]
    fn exact_division() {
        let l = GroupLayout::new(6, 3).unwrap();
        assert_eq!(l.m(), 2);
        assert_eq!(l.members(2).len(), 3);
    }

    #[test]
    fn x_equals_n_single_group() {
        let l = GroupLayout::new(4, 4).unwrap();
        assert_eq!(l.m(), 1);
        assert_eq!(l.members(1).len(), 4);
    }

    #[test]
    fn x_equals_one_singleton_groups() {
        let l = GroupLayout::new(3, 1).unwrap();
        assert_eq!(l.m(), 3);
        for g in 1..=3 {
            assert_eq!(l.members(g).len(), 1);
        }
    }

    #[test]
    fn group_of_matches_members() {
        let l = GroupLayout::new(7, 2).unwrap();
        for pid in 0..7 {
            let g = l.group_of(pid);
            assert!(l.members(g).contains(ProcessId::new(pid)));
        }
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(GroupLayout::new(0, 1).is_err());
        assert!(GroupLayout::new(65, 1).is_err());
        assert!(GroupLayout::new(4, 0).is_err());
        assert!(GroupLayout::new(4, 5).is_err());
    }

    #[test]
    fn first_group_of_picks_minimum() {
        let l = GroupLayout::new(6, 2).unwrap(); // groups {0,1},{2,3},{4,5}
        assert_eq!(l.first_group_of(ProcessSet::from_indices([4, 3])), Some(2));
        assert_eq!(l.first_group_of(ProcessSet::from_indices([5])), Some(3));
        assert_eq!(l.first_group_of(ProcessSet::EMPTY), None);
    }

    #[test]
    fn groups_iterator_covers_all_processes() {
        let l = GroupLayout::new(9, 4).unwrap();
        let mut all = ProcessSet::new();
        for (_, members) in l.groups() {
            all = all.union(members);
        }
        assert_eq!(all, ProcessSet::first_n(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_of_out_of_range_panics() {
        let l = GroupLayout::new(4, 2).unwrap();
        let _ = l.group_of(4);
    }

    #[test]
    fn display_renders() {
        let l = GroupLayout::new(5, 2).unwrap();
        assert!(l.to_string().contains("3 group(s)"));
    }
}
