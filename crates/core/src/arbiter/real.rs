//! The arbiter over threads and atomics (Figure 4, real form).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use apc_model::ProcessSet;
use apc_progress_macros::progress;
use apc_registers::PackedRegister;

use crate::arbiter::Role;
use crate::consensus::{CasConsensus, Consensus};
use crate::error::ArbiterError;
use crate::liveness::Liveness;

/// A crash-tolerant arbiter for threads (Figure 4).
///
/// Construction declares the owner set (the processes allowed to invoke
/// `arbitrate(Owner)`; they share the internal wait-free consensus object
/// `XCONS`). Any process index in `0..64` may invoke `arbitrate(Guest)`.
///
/// # Memory ordering
///
/// Lemma 15's agreement argument orders a *write-then-read* pattern on the
/// two `PART` flags across camps (owner: `W(PART[owner]); R(PART[guest])`,
/// guest: `W(PART[guest]); R(PART[owner])`). That is the store-buffering
/// (Dekker) pattern, which is only sound under a total store order — all
/// `PART` and `WINNER` accesses are `SeqCst`.
///
/// # Examples
///
/// ```
/// use apc_core::arbiter::{Arbiter, Role};
/// use apc_model::ProcessSet;
///
/// let arb = Arbiter::new(ProcessSet::from_indices([0]));
/// // Only a guest participates: guests win (validity).
/// assert_eq!(arb.arbitrate(3, Role::Guest).unwrap(), Role::Guest);
/// ```
pub struct Arbiter {
    owners: ProcessSet,
    /// `PART[owner], PART[guest]` (line 01).
    part: [AtomicBool; 2],
    /// `WINNER` (⊥ initially; 0 = owner, 1 = guest).
    winner: PackedRegister,
    /// Owners-only wait-free consensus on "are guests participating?".
    xcons: CasConsensus<bool>,
    /// At-most-once `arbitrate` per process (§6.1).
    invoked: AtomicU64,
}

impl Arbiter {
    /// Creates an arbiter with the given owner set.
    ///
    /// # Panics
    ///
    /// Panics if `owners` is empty (Figure 4 assumes between 1 and `x`
    /// owners attached to the object).
    pub fn new(owners: ProcessSet) -> Self {
        let spec = Liveness::wait_free(owners).expect("owner set must be non-empty");
        Arbiter {
            owners,
            part: [AtomicBool::new(false), AtomicBool::new(false)],
            winner: PackedRegister::new(),
            xcons: CasConsensus::new(spec),
            invoked: AtomicU64::new(0),
        }
    }

    /// The declared owner set.
    pub fn owners(&self) -> ProcessSet {
        self.owners
    }

    /// The winning camp, if the arbitration has been resolved.
    #[progress(wait_free)]
    pub fn poll_winner(&self) -> Option<Role> {
        self.winner.load().map(Role::decode)
    }

    #[progress(wait_free)]
    fn claim_invocation(&self, pid: usize) -> Result<(), ArbiterError> {
        let bit = 1u64 << pid;
        if self.invoked.fetch_or(bit, Ordering::AcqRel) & bit != 0 {
            return Err(ArbiterError::AlreadyArbitrated { pid });
        }
        Ok(())
    }

    /// `arbitrate(b)` — Figure 4, blocking form.
    ///
    /// A guest that observes a participating owner **waits** for `WINNER`
    /// (line 04); per the arbiter's termination property this is guaranteed
    /// to end only if a correct owner participates (or someone already
    /// returned). Use [`Arbiter::arbitrate_cancelable`] when the caller
    /// needs an escape hatch.
    ///
    /// # Errors
    ///
    /// * [`ArbiterError::NotAnOwner`] — `arbitrate(Owner)` by a process
    ///   outside the owner set (or any pid ≥ 64);
    /// * [`ArbiterError::AlreadyArbitrated`] — second invocation by the same
    ///   process.
    #[progress(blocking)]
    pub fn arbitrate(&self, pid: usize, role: Role) -> Result<Role, ArbiterError> {
        Ok(self
            .arbitrate_inner(pid, role, &mut || false)?
            .expect("uncancelable arbitrate always resolves"))
    }

    /// `arbitrate(b)` with an escape hatch: whenever the operation would
    /// keep waiting, `cancel()` is consulted; if it returns `true`, the
    /// invocation is abandoned and `Ok(None)` is returned.
    ///
    /// Abandoning is safe: it is indistinguishable (to the other processes)
    /// from the caller crashing inside the operation, which the object
    /// tolerates. Used by the group algorithm's task `T2` early return.
    ///
    /// # Errors
    ///
    /// As for [`Arbiter::arbitrate`].
    #[progress(blocking)]
    pub fn arbitrate_cancelable(
        &self,
        pid: usize,
        role: Role,
        mut cancel: impl FnMut() -> bool,
    ) -> Result<Option<Role>, ArbiterError> {
        self.arbitrate_inner(pid, role, &mut cancel)
    }

    fn arbitrate_inner(
        &self,
        pid: usize,
        role: Role,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Result<Option<Role>, ArbiterError> {
        if pid >= 64 {
            // Process indices are bounded by the 64-process model limit.
            return Err(ArbiterError::NotAnOwner { pid });
        }
        if role == Role::Owner && !self.owners.contains(apc_model::ProcessId::new(pid)) {
            return Err(ArbiterError::NotAnOwner { pid });
        }
        self.claim_invocation(pid)?;

        // (01) PART[b] ← true.
        self.part[role.index()].store(true, Ordering::SeqCst);

        match role {
            Role::Owner => {
                // (02) guest_win ← XCONS.propose(PART[guest]).
                let guests_present = self.part[Role::Guest.index()].load(Ordering::SeqCst);
                let guest_win = self.xcons.propose(pid, guests_present)?;
                // (03) WINNER ← guest / owner.
                let w = if guest_win { Role::Guest } else { Role::Owner };
                self.winner.store(w.encode());
            }
            Role::Guest => {
                // (04) if PART[owner] then wait(WINNER ≠ ⊥) else WINNER ← guest.
                if self.part[Role::Owner.index()].load(Ordering::SeqCst) {
                    loop {
                        if let Some(w) = self.winner.load() {
                            return Ok(Some(Role::decode(w)));
                        }
                        if cancel() {
                            return Ok(None);
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                } else {
                    self.winner.store(Role::Guest.encode());
                }
            }
        }
        // (06) return(WINNER).
        Ok(Some(Role::decode(self.winner.load().expect("WINNER written on this path"))))
    }
}

impl fmt::Debug for Arbiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arbiter")
            .field("owners", &self.owners)
            .field("winner", &self.poll_winner())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn owners(ids: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(ids.iter().copied())
    }

    #[test]
    fn lone_owner_wins() {
        let arb = Arbiter::new(owners(&[0]));
        assert_eq!(arb.arbitrate(0, Role::Owner).unwrap(), Role::Owner);
        assert_eq!(arb.poll_winner(), Some(Role::Owner));
    }

    #[test]
    fn lone_guest_wins() {
        let arb = Arbiter::new(owners(&[0]));
        assert_eq!(arb.arbitrate(5, Role::Guest).unwrap(), Role::Guest);
    }

    #[test]
    fn guest_then_owner_guests_win() {
        // The owner reads PART[guest] = true, so consensus proposes true.
        let arb = Arbiter::new(owners(&[0]));
        assert_eq!(arb.arbitrate(3, Role::Guest).unwrap(), Role::Guest);
        assert_eq!(arb.arbitrate(0, Role::Owner).unwrap(), Role::Guest);
    }

    #[test]
    fn owner_then_guest_owners_win() {
        let arb = Arbiter::new(owners(&[0]));
        assert_eq!(arb.arbitrate(0, Role::Owner).unwrap(), Role::Owner);
        assert_eq!(arb.arbitrate(3, Role::Guest).unwrap(), Role::Owner);
    }

    #[test]
    fn non_owner_cannot_claim_ownership() {
        let arb = Arbiter::new(owners(&[0, 1]));
        assert!(matches!(arb.arbitrate(5, Role::Owner), Err(ArbiterError::NotAnOwner { pid: 5 })));
    }

    #[test]
    fn double_invocation_rejected() {
        let arb = Arbiter::new(owners(&[0]));
        arb.arbitrate(0, Role::Owner).unwrap();
        assert!(matches!(
            arb.arbitrate(0, Role::Owner),
            Err(ArbiterError::AlreadyArbitrated { pid: 0 })
        ));
    }

    #[test]
    fn cancelable_guest_escapes_without_owner_winner() {
        let arb = Arbiter::new(owners(&[0]));
        // Simulate an owner that set PART[owner] but "crashed" before
        // writing WINNER: flip the flag directly.
        arb.part[Role::Owner.index()].store(true, Ordering::SeqCst);
        let mut polls = 0;
        let out = arb
            .arbitrate_cancelable(3, Role::Guest, || {
                polls += 1;
                polls > 3
            })
            .unwrap();
        assert_eq!(out, None, "guest must escape the wait");
    }

    #[test]
    fn agreement_under_concurrency() {
        // Owners and guests race; all returns must be the same role, and the
        // returned camp must have a participant (validity).
        for _ in 0..100 {
            let arb = Arbiter::new(owners(&[0, 1]));
            let results = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..2 {
                    let arb = &arb;
                    let results = &results;
                    s.spawn(move || {
                        let r = arb.arbitrate(pid, Role::Owner).unwrap();
                        results.lock().unwrap().push(r);
                    });
                }
                for pid in 2..5 {
                    let arb = &arb;
                    let results = &results;
                    s.spawn(move || {
                        let r = arb.arbitrate(pid, Role::Guest).unwrap();
                        results.lock().unwrap().push(r);
                    });
                }
            });
            let results = results.into_inner().unwrap();
            assert_eq!(results.len(), 5);
            assert!(results.windows(2).all(|w| w[0] == w[1]), "agreement violated: {results:?}");
        }
    }

    #[test]
    fn only_guests_concurrent_guests_win() {
        for _ in 0..100 {
            let arb = Arbiter::new(owners(&[0]));
            let results = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 1..6 {
                    let arb = &arb;
                    let results = &results;
                    s.spawn(move || {
                        results.lock().unwrap().push(arb.arbitrate(pid, Role::Guest).unwrap());
                    });
                }
            });
            for r in results.into_inner().unwrap() {
                assert_eq!(r, Role::Guest, "validity: no owner participated");
            }
        }
    }

    #[test]
    fn only_owners_concurrent_owners_win() {
        for _ in 0..100 {
            let arb = Arbiter::new(owners(&[0, 1, 2]));
            let results = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..3 {
                    let arb = &arb;
                    let results = &results;
                    s.spawn(move || {
                        results.lock().unwrap().push(arb.arbitrate(pid, Role::Owner).unwrap());
                    });
                }
            });
            for r in results.into_inner().unwrap() {
                assert_eq!(r, Role::Owner, "validity: no guest participated");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_owner_set_rejected() {
        let _ = Arbiter::new(ProcessSet::EMPTY);
    }

    #[test]
    fn pid_64_or_more_rejected() {
        let arb = Arbiter::new(owners(&[0]));
        assert!(arb.arbitrate(64, Role::Guest).is_err());
    }
}
