//! The arbiter as an `apc-model` program (Figure 4, model form).
//!
//! One shared-memory event per step, exactly the events of Figure 4:
//!
//! | line | owner events | guest events |
//! |------|--------------|--------------|
//! | 01 | `write(PART[owner], true)` | `write(PART[guest], true)` |
//! | 02 | `read(PART[guest])`, `propose(XCONS, ·)` | — |
//! | 03 | `write(WINNER, ·)` | — |
//! | 04 | — | `read(PART[owner])`, then either spin `read(WINNER)` or `write(WINNER, guest)` |
//! | 06 | `read(WINNER)` | `read(WINNER)` |
//!
//! Small configurations of this program are verified **exhaustively** (all
//! schedules, all crash patterns within budget) in the crate's test-suite,
//! mechanically re-checking Lemmas 12–16.

use apc_model::{ObjectId, Op, ProcessSet, Program, ProgramAction, SystemBuilder, Value};

use crate::arbiter::Role;

/// Object ids of one arbiter instance inside a model system.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArbiterObjects {
    /// `PART[owner]` flag register (`Bit`).
    pub part_owner: ObjectId,
    /// `PART[guest]` flag register (`Bit`).
    pub part_guest: ObjectId,
    /// `WINNER` register (`⊥`, then `Num(0)` = owner / `Num(1)` = guest).
    pub winner: ObjectId,
    /// Owners-only `(x,x)`-live consensus on `PART[guest]`.
    pub xcons: ObjectId,
}

impl ArbiterObjects {
    /// Adds the four shared objects of one arbiter to a system under
    /// construction. `owners` becomes the port set (and wait-free set) of
    /// the internal consensus object.
    pub fn add_to(builder: &mut SystemBuilder, owners: ProcessSet) -> Self {
        ArbiterObjects {
            part_owner: builder.add_register(Value::Bit(false)),
            part_guest: builder.add_register(Value::Bit(false)),
            winner: builder.add_register(Value::Bot),
            xcons: builder.add_wait_free_consensus(owners),
        }
    }

    /// The `PART[b]` register for a role.
    pub fn part(&self, role: Role) -> ObjectId {
        match role {
            Role::Owner => self.part_owner,
            Role::Guest => self.part_guest,
        }
    }
}

/// Encodes a role as a model register value.
pub fn role_value(role: Role) -> Value {
    Value::Num(role.encode() as u32)
}

/// Decodes a model register value into a role.
///
/// # Panics
///
/// Panics if the value is not a valid encoding.
pub fn value_role(value: Value) -> Role {
    Role::decode(value.expect_num("WINNER register") as u64)
}

/// Figure 4's `arbitrate(b)` as a model program. The process decides the
/// returned role encoded as `Num(0)` (owner) / `Num(1)` (guest).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArbiterProgram {
    objs: ArbiterObjects,
    role: Role,
    state: ArbState,
}

/// States are named after the value that *arrives next*: in
/// `OwnerGotGuestFlag` the pending operation is the read of `PART[guest]`,
/// whose result the next `resume` call receives.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum ArbState {
    /// Nothing issued yet (before line 01).
    Start,
    /// Owner: awaiting the `PART[owner]` write acknowledgement.
    OwnerWrotePart,
    /// Owner: awaiting the read of `PART[guest]` (line 02).
    OwnerGotGuestFlag,
    /// Owner: awaiting the `XCONS` decision (line 02).
    OwnerGotDecision,
    /// Owner: awaiting the `WINNER` write (line 03).
    OwnerWroteWinner,
    /// Guest: awaiting the `PART[guest]` write acknowledgement.
    GuestWrotePart,
    /// Guest: awaiting the read of `PART[owner]` (line 04).
    GuestGotOwnerFlag,
    /// Guest: awaiting reads of `WINNER` (line 04 wait; spins on `⊥`).
    GuestAwaitWinner,
    /// Guest: awaiting the `WINNER ← guest` write (line 04 else-branch).
    GuestWroteWinner,
    /// Any: awaiting the final read of `WINNER` (line 06).
    GotWinner,
}

impl ArbiterProgram {
    /// A process invoking `arbitrate(role)` on the given arbiter objects.
    pub fn new(objs: ArbiterObjects, role: Role) -> Self {
        ArbiterProgram { objs, role, state: ArbState::Start }
    }
}

impl Program for ArbiterProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        use ArbState::*;
        match self.state {
            Start => {
                // (01) PART[b] ← true.
                self.state = match self.role {
                    Role::Owner => OwnerWrotePart,
                    Role::Guest => GuestWrotePart,
                };
                ProgramAction::Invoke(Op::Write(self.objs.part(self.role), Value::Bit(true)))
            }
            OwnerWrotePart => {
                // (02) read PART[guest] …
                self.state = OwnerGotGuestFlag;
                ProgramAction::Invoke(Op::Read(self.objs.part_guest))
            }
            OwnerGotGuestFlag => {
                // (02) … and propose it to XCONS.
                let guests_present = last.expect("read returns a value").expect_bit("PART[guest]");
                self.state = OwnerGotDecision;
                ProgramAction::Invoke(Op::Propose(self.objs.xcons, Value::Bit(guests_present)))
            }
            OwnerGotDecision => {
                // (03) WINNER ← guest / owner.
                let guest_win = last.expect("propose returns a value").expect_bit("XCONS decision");
                let winner = if guest_win { Role::Guest } else { Role::Owner };
                self.state = OwnerWroteWinner;
                ProgramAction::Invoke(Op::Write(self.objs.winner, role_value(winner)))
            }
            OwnerWroteWinner => {
                // (06) return(WINNER) — issue the final read.
                self.state = GotWinner;
                ProgramAction::Invoke(Op::Read(self.objs.winner))
            }
            GuestWrotePart => {
                // (04) read PART[owner] …
                self.state = GuestGotOwnerFlag;
                ProgramAction::Invoke(Op::Read(self.objs.part_owner))
            }
            GuestGotOwnerFlag => {
                // (04) if PART[owner] then wait(WINNER ≠ ⊥) else WINNER ← guest.
                let owners_present = last.expect("read returns a value").expect_bit("PART[owner]");
                if owners_present {
                    self.state = GuestAwaitWinner;
                    ProgramAction::Invoke(Op::Read(self.objs.winner))
                } else {
                    self.state = GuestWroteWinner;
                    ProgramAction::Invoke(Op::Write(self.objs.winner, role_value(Role::Guest)))
                }
            }
            GuestAwaitWinner => {
                // (04) wait(WINNER ≠ ⊥); (06) return it.
                let w = last.expect("read returns a value");
                if w.is_bot() {
                    ProgramAction::Invoke(Op::Read(self.objs.winner))
                } else {
                    ProgramAction::Decide(w)
                }
            }
            GuestWroteWinner => {
                // (06) return(WINNER) — issue the final read.
                self.state = GotWinner;
                ProgramAction::Invoke(Op::Read(self.objs.winner))
            }
            GotWinner => {
                // (06) return(WINNER).
                let w = last.expect("read returns a value");
                debug_assert!(!w.is_bot(), "WINNER written on this path");
                ProgramAction::Decide(w)
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.role {
            Role::Owner => "arbitrate(owner)",
            Role::Guest => "arbitrate(guest)",
        }
    }
}

/// Builds a complete arbiter model system: `n` processes, the processes in
/// `owners` invoking `arbitrate(owner)`, those in `guests` invoking
/// `arbitrate(guest)`, and the rest not participating. The declared owner
/// set (ports of `XCONS`) equals the participating owner set.
///
/// Returns the system and the arbiter's object ids.
pub fn arbiter_system(
    n: usize,
    owners: ProcessSet,
    guests: ProcessSet,
) -> (apc_model::System<apc_model::MaybeParticipant<ArbiterProgram>>, ArbiterObjects) {
    arbiter_system_with(n, owners, owners, guests)
}

/// Like [`arbiter_system`], but distinguishes the *declared* owner set (the
/// ports of the internal consensus object) from the owners that actually
/// participate — needed to model scenarios such as Lemma 13/16's "no owner
/// invokes `arbitrate`" while owners still exist.
pub fn arbiter_system_with(
    n: usize,
    declared_owners: ProcessSet,
    owner_participants: ProcessSet,
    guest_participants: ProcessSet,
) -> (apc_model::System<apc_model::MaybeParticipant<ArbiterProgram>>, ArbiterObjects) {
    assert!(
        owner_participants.is_subset(declared_owners),
        "participating owners must be declared owners"
    );
    assert!(
        owner_participants.intersection(guest_participants).is_empty(),
        "a process invokes arbitrate at most once: owner and guest sets must be disjoint"
    );
    let mut builder = SystemBuilder::new(n);
    let objs = ArbiterObjects::add_to(&mut builder, declared_owners);
    let system = builder.build(|pid| {
        if owner_participants.contains(pid) {
            apc_model::MaybeParticipant::Present(ArbiterProgram::new(objs, Role::Owner))
        } else if guest_participants.contains(pid) {
            apc_model::MaybeParticipant::Present(ArbiterProgram::new(objs, Role::Guest))
        } else {
            apc_model::MaybeParticipant::Absent
        }
    });
    (system, objs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn};
    use apc_model::fairness::{fair_termination, FairTermination, StateGraph};
    use apc_model::{ProcessId, Runner, Schedule};

    fn owner_value() -> Value {
        role_value(Role::Owner)
    }

    fn guest_value() -> Value {
        role_value(Role::Guest)
    }

    #[test]
    fn solo_owner_decides_owner() {
        let (sys, _) = arbiter_system(2, ProcessSet::from_indices([0]), ProcessSet::EMPTY);
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(0), 20));
        assert_eq!(runner.system().decision(ProcessId::new(0)), Some(owner_value()));
    }

    #[test]
    fn solo_guest_decides_guest() {
        let (sys, _) =
            arbiter_system(2, ProcessSet::from_indices([0]), ProcessSet::from_indices([1]));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(1), 20));
        assert_eq!(runner.system().decision(ProcessId::new(1)), Some(guest_value()));
    }

    /// Lemma 15 (agreement) + validity, checked over EVERY schedule for one
    /// owner and one guest, with a crash budget of 1.
    #[test]
    fn exhaustive_agreement_owner_guest() {
        let (sys, _) =
            arbiter_system(2, ProcessSet::from_indices([0]), ProcessSet::from_indices([1]));
        let explorer =
            Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(2)));
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new([owner_value(), guest_value()]), &NoFaults],
        );
        assert!(result.ok(), "violations: {:?}", result.violations);
        assert!(!result.truncated);
        // Both outcomes are reachable depending on interleaving.
        assert!(result.decisions.contains(&owner_value()));
        assert!(result.decisions.contains(&guest_value()));
    }

    /// Lemma 16 (validity): with only guests participating, `owner` is never
    /// decided — over every schedule and crash pattern. The owner is
    /// declared (the consensus object exists) but never invokes.
    #[test]
    fn exhaustive_validity_only_guests() {
        let (sys, _) = arbiter_system_with(
            3,
            ProcessSet::from_indices([0]),
            ProcessSet::EMPTY,
            ProcessSet::from_indices([1, 2]),
        );
        let explorer =
            Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(3)));
        let result =
            explorer.explore(&sys, &[&Agreement, &ValidityIn::new([guest_value()]), &NoFaults]);
        assert!(result.ok(), "violations: {:?}", result.violations);
        assert_eq!(result.decisions.len(), 1, "only guest can be decided");
    }

    /// Lemma 12: a correct participating owner ⇒ every correct participant
    /// terminates, under every fair schedule (no fair livelock).
    #[test]
    fn fair_termination_with_owner() {
        let (sys, _) =
            arbiter_system(3, ProcessSet::from_indices([0]), ProcessSet::from_indices([1, 2]));
        let graph = StateGraph::build(&sys, 1_000_000);
        let verdict = fair_termination(&graph, |_| true);
        assert!(verdict.holds(), "{verdict:?}");
    }

    /// Lemma 13: only guests ⇒ all correct guests terminate.
    #[test]
    fn fair_termination_only_guests() {
        let (sys, _) = arbiter_system_with(
            3,
            ProcessSet::from_indices([0]),
            ProcessSet::EMPTY,
            ProcessSet::from_indices([1, 2]),
        );
        let graph = StateGraph::build(&sys, 1_000_000);
        let verdict = fair_termination(&graph, |pid| pid.index() != 0);
        assert!(verdict.holds(), "{verdict:?}");
    }

    /// The flip side of Lemma 12: an owner that crashes after announcing
    /// itself can leave guests waiting forever. The explorer must find that
    /// livelock (this is expected arbiter behaviour, not a bug).
    #[test]
    fn crashed_owner_can_block_guests() {
        let (mut sys, _) =
            arbiter_system(2, ProcessSet::from_indices([0]), ProcessSet::from_indices([1]));
        // Owner takes exactly one step (writes PART[owner]) and crashes.
        sys.step(ProcessId::new(0));
        sys.crash(ProcessId::new(0));
        let graph = StateGraph::build(&sys, 1_000_000);
        let verdict = fair_termination(&graph, |pid| pid.index() == 1);
        assert!(
            matches!(verdict, FairTermination::Livelock(_)),
            "guest must be blockable by a crashed owner: {verdict:?}"
        );
    }

    /// Lemma 14 via exploration: once any process has returned, every
    /// correct participant terminates. We approximate by checking the
    /// two-process system has no fair livelock in which a process has
    /// already decided.
    #[test]
    fn decided_process_implies_no_stuck_peers() {
        let (sys, _) =
            arbiter_system(2, ProcessSet::from_indices([0]), ProcessSet::from_indices([1]));
        let graph = StateGraph::build(&sys, 1_000_000);
        for witness in apc_model::fairness::fair_livelocks(&graph) {
            let state = &graph.states()[witness.sample_state];
            assert_eq!(
                state.decisions().len(),
                0,
                "no livelock may coexist with a decided process (Lemma 14)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_roles_rejected() {
        let _ = arbiter_system(2, ProcessSet::from_indices([0]), ProcessSet::from_indices([0]));
    }
}
