//! The **arbiter** object type (§6.1 of the paper, Figure 4).
//!
//! An arbiter lets two camps of processes — *owners* (at most `x` of them)
//! and *guests* (everyone else) — agree on which camp "wins", with these
//! properties:
//!
//! * **Termination** — if a correct owner invokes `arbitrate`, or only
//!   guests invoke it, or some process has already returned, then every
//!   invocation by a correct process terminates.
//! * **Agreement** — a single winning camp is ever returned.
//! * **Validity** — the returned camp actually has an invoker: `Owner`
//!   (resp. `Guest`) cannot be returned if no owner (resp. guest)
//!   participates.
//!
//! The implementation (Figure 4) uses two participation flags, one `WINNER`
//! register, and one wait-free consensus object private to the owners:
//!
//! ```text
//! arbitrate(b):
//! (01) PART[b] ← true
//! (02) if b = owner then guest_win ← XCONS.propose(PART[guest])
//! (03)      if guest_win then WINNER ← guest else WINNER ← owner
//! (04) else if PART[owner] then wait(WINNER ≠ ⊥) else WINNER ← guest
//! (05) end if
//! (06) return(WINNER)
//! ```
//!
//! [`real::Arbiter`] is the threads-and-atomics version; [`model`] is the
//! same algorithm as an `apc-model` program, checked exhaustively in the
//! crate's tests (Lemmas 12–16 at small `n`).

pub mod model;
pub mod real;

pub use real::Arbiter;

use std::fmt;

/// The two camps of an arbiter.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// An owner: one of the ≤ `x` privileged processes sharing `XCONS`.
    Owner,
    /// A guest: any other process.
    Guest,
}

impl Role {
    /// Index into the `PART` array (owner = 0, guest = 1).
    pub fn index(self) -> usize {
        match self {
            Role::Owner => 0,
            Role::Guest => 1,
        }
    }

    /// The opposite camp.
    #[must_use]
    pub fn opponent(self) -> Role {
        match self {
            Role::Owner => Role::Guest,
            Role::Guest => Role::Owner,
        }
    }

    /// Encodes the role as a register value (owner = 0, guest = 1).
    pub fn encode(self) -> u64 {
        self.index() as u64
    }

    /// Decodes a register value back into a role.
    ///
    /// # Panics
    ///
    /// Panics on values other than 0 or 1 (register discipline violation).
    pub fn decode(value: u64) -> Role {
        match value {
            0 => Role::Owner,
            1 => Role::Guest,
            other => panic!("invalid WINNER encoding {other}"),
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Owner => write!(f, "owner"),
            Role::Guest => write!(f, "guest"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_roundtrip() {
        for role in [Role::Owner, Role::Guest] {
            assert_eq!(Role::decode(role.encode()), role);
        }
    }

    #[test]
    fn opponent_is_involution() {
        assert_eq!(Role::Owner.opponent(), Role::Guest);
        assert_eq!(Role::Guest.opponent().opponent(), Role::Guest);
    }

    #[test]
    #[should_panic(expected = "invalid WINNER encoding")]
    fn decode_rejects_garbage() {
        let _ = Role::decode(7);
    }

    #[test]
    fn indices_cover_part_array() {
        assert_eq!(Role::Owner.index(), 0);
        assert_eq!(Role::Guest.index(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Role::Owner.to_string(), "owner");
        assert_eq!(Role::Guest.to_string(), "guest");
    }
}
