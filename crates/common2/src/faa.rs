//! A lock-free fetch-and-add counter.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use apc_progress_macros::progress;

/// A wait-free fetch-and-add counter (consensus number 2).
///
/// Beyond being a Common2 citizen, fetch-and-add is the classic ticket
/// dispenser: `fetch_add(1)` hands out unique, gap-free tickets — which is
/// how the benchmarks in this repository assign one-shot process identities.
///
/// # Examples
///
/// ```
/// use apc_common2::FetchAndAdd;
/// let faa = FetchAndAdd::new(0);
/// assert_eq!(faa.fetch_add(2), 0);
/// assert_eq!(faa.fetch_add(1), 2);
/// assert_eq!(faa.read(), 3);
/// ```
#[derive(Default)]
pub struct FetchAndAdd {
    count: AtomicU64,
}

impl FetchAndAdd {
    /// Creates a counter with the given initial value.
    pub fn new(init: u64) -> Self {
        FetchAndAdd { count: AtomicU64::new(init) }
    }

    /// Atomically adds `delta`, returning the previous value.
    #[progress(wait_free)]
    pub fn fetch_add(&self, delta: u64) -> u64 {
        self.count.fetch_add(delta, Ordering::SeqCst)
    }

    /// Reads the counter.
    #[progress(wait_free)]
    pub fn read(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for FetchAndAdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("FetchAndAdd").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn sequential_accumulation() {
        let faa = FetchAndAdd::new(10);
        assert_eq!(faa.fetch_add(5), 10);
        assert_eq!(faa.fetch_add(0), 15);
        assert_eq!(faa.read(), 15);
    }

    #[test]
    fn tickets_are_unique_and_gap_free() {
        let faa = FetchAndAdd::new(0);
        let tickets = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let faa = &faa;
                let tickets = &tickets;
                s.spawn(move || {
                    for _ in 0..100 {
                        let t = faa.fetch_add(1);
                        assert!(tickets.lock().unwrap().insert(t), "duplicate ticket {t}");
                    }
                });
            }
        });
        let tickets = tickets.into_inner().unwrap();
        assert_eq!(tickets.len(), 800);
        assert_eq!(faa.read(), 800);
        for t in 0..800 {
            assert!(tickets.contains(&t), "gap at ticket {t}");
        }
    }
}
