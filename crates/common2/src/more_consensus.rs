//! More consensus-number-2 witnesses: 2-process consensus from Swap and
//! from Fetch&Add.
//!
//! Together with [`crate::two_consensus::TasConsensus`] these show
//! constructively that every Common2 flagship object reaches — and the
//! exhaustive 3-process refutations show *only* reaches — consensus
//! number 2, which is what §3.5 of the paper leans on.

use apc_progress_macros::progress;
use std::sync::atomic::{AtomicBool, Ordering};

use apc_model::{
    MaybeParticipant, ObjectId, Op, Program, ProgramAction, System, SystemBuilder, Value,
};
use apc_registers::AtomicCell;

use crate::faa::FetchAndAdd;
use crate::swap::SwapCell;
use crate::two_consensus::TwoConsensusError;

/// Wait-free 2-process consensus from one **swap** register and two
/// proposal registers.
///
/// Both processes swap a token into a shared cell: whoever gets `⊥` back
/// went first and wins; the other adopts the winner's published value.
///
/// # Examples
///
/// ```
/// use apc_common2::SwapConsensus;
/// let cons: SwapConsensus<u32> = SwapConsensus::new();
/// assert_eq!(cons.propose(0, 5).unwrap(), 5);
/// assert_eq!(cons.propose(1, 9).unwrap(), 5);
/// ```
pub struct SwapConsensus<T> {
    reg: [AtomicCell<T>; 2],
    token: SwapCell<u8>,
    proposed: [AtomicBool; 2],
}

impl<T: Clone + Send + Sync> SwapConsensus<T> {
    /// Creates the object.
    pub fn new() -> Self {
        SwapConsensus {
            reg: [AtomicCell::new(), AtomicCell::new()],
            token: SwapCell::new(),
            proposed: [AtomicBool::new(false), AtomicBool::new(false)],
        }
    }

    /// Proposes `value` as process `pid ∈ {0, 1}`.
    ///
    /// # Errors
    ///
    /// [`TwoConsensusError`] on a bad pid or a double proposal.
    #[progress(wait_free)]
    pub fn propose(&self, pid: usize, value: T) -> Result<T, TwoConsensusError> {
        if pid > 1 {
            return Err(TwoConsensusError::NotAPort { pid });
        }
        if self.proposed[pid].swap(true, Ordering::SeqCst) {
            return Err(TwoConsensusError::AlreadyProposed { pid });
        }
        self.reg[pid].store(value.clone());
        std::sync::atomic::fence(Ordering::SeqCst);
        match self.token.swap(pid as u8) {
            None => Ok(value), // got ⊥ back: went first, wins
            // The winner published before swapping, so the load is non-`⊥`;
            // falling back to our own published proposal keeps this total.
            Some(_) => Ok(self.reg[1 - pid].load().unwrap_or(value)),
        }
    }
}

impl<T: Clone + Send + Sync> Default for SwapConsensus<T> {
    fn default() -> Self {
        SwapConsensus::new()
    }
}

/// Wait-free 2-process consensus from one **fetch-and-add** counter and two
/// proposal registers: the process whose `fetch_add(1)` returns `0` wins.
///
/// # Examples
///
/// ```
/// use apc_common2::FaaConsensus;
/// let cons: FaaConsensus<&str> = FaaConsensus::new();
/// assert_eq!(cons.propose(1, "b").unwrap(), "b");
/// assert_eq!(cons.propose(0, "a").unwrap(), "b");
/// ```
pub struct FaaConsensus<T> {
    reg: [AtomicCell<T>; 2],
    counter: FetchAndAdd,
    proposed: [AtomicBool; 2],
}

impl<T: Clone + Send + Sync> FaaConsensus<T> {
    /// Creates the object.
    pub fn new() -> Self {
        FaaConsensus {
            reg: [AtomicCell::new(), AtomicCell::new()],
            counter: FetchAndAdd::new(0),
            proposed: [AtomicBool::new(false), AtomicBool::new(false)],
        }
    }

    /// Proposes `value` as process `pid ∈ {0, 1}`.
    ///
    /// # Errors
    ///
    /// [`TwoConsensusError`] on a bad pid or a double proposal.
    #[progress(wait_free)]
    pub fn propose(&self, pid: usize, value: T) -> Result<T, TwoConsensusError> {
        if pid > 1 {
            return Err(TwoConsensusError::NotAPort { pid });
        }
        if self.proposed[pid].swap(true, Ordering::SeqCst) {
            return Err(TwoConsensusError::AlreadyProposed { pid });
        }
        self.reg[pid].store(value.clone());
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.counter.fetch_add(1) == 0 {
            Ok(value)
        } else {
            // The winner published its value before the fetch-and-add, so
            // the load is non-`⊥`; the fallback keeps this path total.
            Ok(self.reg[1 - pid].load().unwrap_or(value))
        }
    }
}

impl<T: Clone + Send + Sync> Default for FaaConsensus<T> {
    fn default() -> Self {
        FaaConsensus::new()
    }
}

/// Model form of the swap-based 2-process consensus, generalized naively to
/// `n` processes (loser reads the *next* process's register) — correct for
/// `n = 2`, exhaustively refuted for `n = 3` in the tests.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SwapConsensusProgram {
    regs: Vec<ObjectId>,
    token: ObjectId,
    pid: u8,
    value: u32,
    state: ScState,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum ScState {
    Start,
    WroteReg,
    GotToken,
    GotOther,
}

impl SwapConsensusProgram {
    /// A participant proposing `value`.
    pub fn new(regs: Vec<ObjectId>, token: ObjectId, pid: usize, value: u32) -> Self {
        SwapConsensusProgram { regs, token, pid: pid as u8, value, state: ScState::Start }
    }
}

impl Program for SwapConsensusProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self.state {
            ScState::Start => {
                self.state = ScState::WroteReg;
                ProgramAction::Invoke(Op::Write(
                    self.regs[self.pid as usize],
                    Value::Num(self.value),
                ))
            }
            ScState::WroteReg => {
                self.state = ScState::GotToken;
                ProgramAction::Invoke(Op::Swap(self.token, Value::Num(self.pid as u32)))
            }
            ScState::GotToken => {
                let old = last.expect("swap returns the old value");
                if old.is_bot() {
                    ProgramAction::Decide(Value::Num(self.value))
                } else {
                    self.state = ScState::GotOther;
                    let next = (self.pid as usize + 1) % self.regs.len();
                    ProgramAction::Invoke(Op::Read(self.regs[next]))
                }
            }
            ScState::GotOther => {
                let v = last.expect("read returns a value");
                if v.is_bot() {
                    let next = (self.pid as usize + 1) % self.regs.len();
                    ProgramAction::Invoke(Op::Read(self.regs[next]))
                } else {
                    ProgramAction::Decide(v)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "swap-consensus"
    }
}

/// Builds the `n`-process naive swap-consensus model system
/// (process `i` proposes `20 + i`).
pub fn swap_consensus_system(n: usize) -> System<MaybeParticipant<SwapConsensusProgram>> {
    let mut builder = SystemBuilder::new(n);
    let regs: Vec<ObjectId> = (0..n).map(|_| builder.add_register(Value::Bot)).collect();
    let token = builder.add_swap(Value::Bot);
    builder.build(|pid| {
        MaybeParticipant::Present(SwapConsensusProgram::new(
            regs.clone(),
            token,
            pid.index(),
            20 + pid.index() as u32,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn};
    use apc_model::history::{assert_consensus, ProposeRecord};
    use apc_model::ProcessSet;
    use std::sync::Mutex;

    #[test]
    fn swap_sequential() {
        let cons = SwapConsensus::new();
        assert_eq!(cons.propose(0, 1u8).unwrap(), 1);
        assert_eq!(cons.propose(1, 2).unwrap(), 1);
    }

    #[test]
    fn faa_sequential() {
        let cons = FaaConsensus::new();
        assert_eq!(cons.propose(1, 2u8).unwrap(), 2);
        assert_eq!(cons.propose(0, 1).unwrap(), 2);
    }

    #[test]
    fn both_reject_bad_usage() {
        let s: SwapConsensus<u8> = SwapConsensus::new();
        assert_eq!(s.propose(3, 0), Err(TwoConsensusError::NotAPort { pid: 3 }));
        s.propose(0, 1).unwrap();
        assert_eq!(s.propose(0, 1), Err(TwoConsensusError::AlreadyProposed { pid: 0 }));

        let f: FaaConsensus<u8> = FaaConsensus::new();
        assert_eq!(f.propose(2, 0), Err(TwoConsensusError::NotAPort { pid: 2 }));
        f.propose(1, 1).unwrap();
        assert_eq!(f.propose(1, 1), Err(TwoConsensusError::AlreadyProposed { pid: 1 }));
    }

    #[test]
    fn swap_concurrent_agreement() {
        for round in 0..200 {
            let cons = SwapConsensus::new();
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..2 {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = round * 2 + pid as u64;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            assert_consensus(&records.into_inner().unwrap());
        }
    }

    #[test]
    fn faa_concurrent_agreement() {
        for round in 0..200 {
            let cons = FaaConsensus::new();
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..2 {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = round * 2 + pid as u64;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            assert_consensus(&records.into_inner().unwrap());
        }
    }

    /// The 2-process swap protocol is correct under every schedule + crash.
    #[test]
    fn model_two_process_exhaustive() {
        let sys = swap_consensus_system(2);
        let explorer =
            Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(2)));
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new([Value::Num(20), Value::Num(21)]), &NoFaults],
        );
        assert!(result.ok(), "{:?}", result.violations.first());
        assert!(!result.truncated);
    }

    /// The naive 3-process extension fails — Swap, like TAS, stops at
    /// consensus number 2.
    #[test]
    fn model_three_process_fails() {
        let sys = swap_consensus_system(3);
        let explorer = Explorer::new(ExploreConfig::default());
        let result = explorer.explore(&sys, &[&Agreement]);
        assert!(!result.ok(), "naive 3-process swap consensus must violate agreement");
    }
}
