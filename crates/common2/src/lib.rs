//! # `apc-common2` — Common2 objects (§3.5 of the paper)
//!
//! *Common2* (Afek, Weisberger, Weisman 1993) is the class of objects with
//! consensus number 2 that are wait-free implementable from any other
//! consensus-number-2 object: Test&Set, Fetch&Add, Swap (and queues and
//! stacks). The paper's §3.5 observes that Theorem 1 survives when the
//! atomic registers are replaced by arbitrary Common2 objects, because
//! `(n−1,n−1)`-live consensus is strictly stronger than anything in
//! Common2.
//!
//! This crate provides:
//!
//! * real lock-free [`TestAndSet`], [`FetchAndAdd`] and [`SwapCell`] objects
//!   (their model forms are `apc-model` base objects);
//! * [`two_consensus::TasConsensus`] — the classic wait-free **2-process**
//!   consensus from Test&Set plus registers, witnessing consensus number
//!   ≥ 2;
//! * [`two_consensus::TasConsensusProgram`] — its model form, verified
//!   exhaustively, together with the *naive 3-process extension* whose
//!   agreement violation the explorer finds (the constructive face of
//!   "consensus number exactly 2").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faa;
mod more_consensus;
mod swap;
mod tas;

pub mod two_consensus;

pub use faa::FetchAndAdd;
pub use more_consensus::{
    swap_consensus_system, FaaConsensus, SwapConsensus, SwapConsensusProgram,
};
pub use swap::SwapCell;
pub use tas::TestAndSet;
