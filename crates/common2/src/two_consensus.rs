//! Two-process consensus from Test&Set — consensus number 2, constructively.
//!
//! The classic algorithm: each process publishes its proposal in its own
//! register, then races on a test-and-set bit. The winner decides its own
//! value; the loser reads the winner's register. For two processes the
//! loser knows who won (the *other* process); for three or more it does not
//! — the naive extension is **incorrect**, and
//! [`naive_three_process_system`] packages it so the exhaustive explorer
//! can find the agreement violation (see the crate tests).

use std::sync::atomic::Ordering;

use apc_progress_macros::progress;

use apc_model::{
    MaybeParticipant, ObjectId, Op, Program, ProgramAction, System, SystemBuilder, Value,
};
use apc_registers::AtomicCell;

use crate::tas::TestAndSet;

/// Errors of the two-process consensus object.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TwoConsensusError {
    /// `pid` was not 0 or 1.
    NotAPort {
        /// The offending process index.
        pid: usize,
    },
    /// The process proposed twice.
    AlreadyProposed {
        /// The offending process index.
        pid: usize,
    },
}

impl std::fmt::Display for TwoConsensusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TwoConsensusError::NotAPort { pid } => {
                write!(f, "process {pid} is not a port (2-process object)")
            }
            TwoConsensusError::AlreadyProposed { pid } => {
                write!(f, "process {pid} already proposed")
            }
        }
    }
}

impl std::error::Error for TwoConsensusError {}

/// Wait-free consensus for **two** processes from one [`TestAndSet`] and two
/// registers — the textbook witness that Test&Set has consensus number ≥ 2.
///
/// # Examples
///
/// ```
/// use apc_common2::two_consensus::TasConsensus;
/// let cons: TasConsensus<&str> = TasConsensus::new();
/// assert_eq!(cons.propose(1, "b").unwrap(), "b");
/// assert_eq!(cons.propose(0, "a").unwrap(), "b");
/// ```
pub struct TasConsensus<T> {
    reg: [AtomicCell<T>; 2],
    tas: TestAndSet,
    proposed: [std::sync::atomic::AtomicBool; 2],
}

impl<T: Clone + Send + Sync> TasConsensus<T> {
    /// Creates the object.
    pub fn new() -> Self {
        TasConsensus {
            reg: [AtomicCell::new(), AtomicCell::new()],
            tas: TestAndSet::new(),
            proposed: [
                std::sync::atomic::AtomicBool::new(false),
                std::sync::atomic::AtomicBool::new(false),
            ],
        }
    }

    /// Proposes `value` as process `pid ∈ {0, 1}`; returns the decision.
    ///
    /// # Errors
    ///
    /// [`TwoConsensusError::NotAPort`] for `pid ∉ {0,1}`;
    /// [`TwoConsensusError::AlreadyProposed`] on a second call.
    #[progress(wait_free)]
    pub fn propose(&self, pid: usize, value: T) -> Result<T, TwoConsensusError> {
        if pid > 1 {
            return Err(TwoConsensusError::NotAPort { pid });
        }
        if self.proposed[pid].swap(true, Ordering::SeqCst) {
            return Err(TwoConsensusError::AlreadyProposed { pid });
        }
        // Publish the proposal, then race. The write must precede the TAS
        // in the global order (the loser reads the winner's register), so
        // both the register store and the TAS are SeqCst-ordered.
        self.reg[pid].store(value.clone());
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.tas.test_and_set() {
            Ok(value)
        } else {
            // The winner published its value before winning the TAS, so the
            // load is non-`⊥`; the fallback to our own (published, valid)
            // proposal merely keeps this path total.
            Ok(self.reg[1 - pid].load().unwrap_or(value))
        }
    }
}

impl<T: Clone + Send + Sync> Default for TasConsensus<T> {
    fn default() -> Self {
        TasConsensus::new()
    }
}

/// Model form of the TAS consensus protocol, generalized to `n` processes
/// with the *naive* loser rule "read the register of process
/// `(pid + 1) mod n`".
///
/// For `n = 2` the rule is exactly "read the other process" and the
/// protocol is correct (verified exhaustively in the tests). For `n = 3` it
/// is wrong — a loser may read another **loser**'s register — and the
/// explorer exhibits the agreement violation. This pair of facts is the
/// constructive content of "Test&Set has consensus number exactly 2"
/// (§3.5's Common2 background).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TasConsensusProgram {
    regs: Vec<ObjectId>,
    tas: ObjectId,
    pid: u8,
    value: u32,
    state: TcState,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum TcState {
    /// Next: write own register.
    Start,
    /// Awaiting the register write; next: race on the TAS.
    WroteReg,
    /// Awaiting the TAS outcome.
    GotTas,
    /// Awaiting the read of the "winner" register (naive rule).
    GotOther,
}

impl TasConsensusProgram {
    /// A participant proposing `value`.
    pub fn new(regs: Vec<ObjectId>, tas: ObjectId, pid: usize, value: u32) -> Self {
        TasConsensusProgram { regs, tas, pid: pid as u8, value, state: TcState::Start }
    }
}

impl Program for TasConsensusProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self.state {
            TcState::Start => {
                self.state = TcState::WroteReg;
                ProgramAction::Invoke(Op::Write(
                    self.regs[self.pid as usize],
                    Value::Num(self.value),
                ))
            }
            TcState::WroteReg => {
                self.state = TcState::GotTas;
                ProgramAction::Invoke(Op::TestAndSet(self.tas))
            }
            TcState::GotTas => {
                let lost = last.expect("TAS returns the old bit").expect_bit("TAS");
                if lost {
                    // Naive loser rule: read the next process's register.
                    self.state = TcState::GotOther;
                    let next = (self.pid as usize + 1) % self.regs.len();
                    ProgramAction::Invoke(Op::Read(self.regs[next]))
                } else {
                    ProgramAction::Decide(Value::Num(self.value))
                }
            }
            TcState::GotOther => {
                let v = last.expect("read returns a value");
                if v.is_bot() {
                    // The naive rule can even read a register that was never
                    // written; spin (for n = 2 this cannot happen).
                    let next = (self.pid as usize + 1) % self.regs.len();
                    ProgramAction::Invoke(Op::Read(self.regs[next]))
                } else {
                    ProgramAction::Decide(v)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "tas-consensus"
    }
}

/// Builds the `n`-process naive TAS-consensus model system
/// (process `i` proposes `10 + i`).
pub fn tas_consensus_system(n: usize) -> System<MaybeParticipant<TasConsensusProgram>> {
    let mut builder = SystemBuilder::new(n);
    let regs: Vec<ObjectId> = (0..n).map(|_| builder.add_register(Value::Bot)).collect();
    let tas = builder.add_test_and_set();
    builder.build(|pid| {
        MaybeParticipant::Present(TasConsensusProgram::new(
            regs.clone(),
            tas,
            pid.index(),
            10 + pid.index() as u32,
        ))
    })
}

/// The deliberately broken 3-process instance (see module docs).
pub fn naive_three_process_system() -> System<MaybeParticipant<TasConsensusProgram>> {
    tas_consensus_system(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn};
    use apc_model::history::{assert_consensus, ProposeRecord};
    use std::sync::Mutex;

    #[test]
    fn real_sequential() {
        let cons = TasConsensus::new();
        assert_eq!(cons.propose(0, 5u32).unwrap(), 5);
        assert_eq!(cons.propose(1, 9).unwrap(), 5);
    }

    #[test]
    fn real_rejects_bad_usage() {
        let cons: TasConsensus<u8> = TasConsensus::new();
        assert_eq!(cons.propose(2, 0), Err(TwoConsensusError::NotAPort { pid: 2 }));
        cons.propose(0, 1).unwrap();
        assert_eq!(cons.propose(0, 1), Err(TwoConsensusError::AlreadyProposed { pid: 0 }));
    }

    #[test]
    fn real_concurrent_agreement() {
        for round in 0..300 {
            let cons = TasConsensus::new();
            let records = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for pid in 0..2 {
                    let cons = &cons;
                    let records = &records;
                    s.spawn(move || {
                        let proposed = round * 2 + pid as u64;
                        let returned = cons.propose(pid, proposed).unwrap();
                        records.lock().unwrap().push(ProposeRecord { pid, proposed, returned });
                    });
                }
            });
            assert_consensus(&records.into_inner().unwrap());
        }
    }

    /// The 2-process protocol is correct under EVERY schedule and crash
    /// pattern: Test&Set solves 2-consensus.
    #[test]
    fn model_two_process_exhaustive() {
        let sys = tas_consensus_system(2);
        let explorer = Explorer::new(
            ExploreConfig::default().with_crashes(1, apc_model::ProcessSet::first_n(2)),
        );
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new([Value::Num(10), Value::Num(11)]), &NoFaults],
        );
        assert!(result.ok(), "2-process TAS consensus must be correct: {:?}", result.violations);
        assert!(!result.truncated);
    }

    /// The naive 3-process extension is WRONG: the explorer finds an
    /// agreement violation. (This is the constructive boundary of consensus
    /// number 2 — no rule fixes it, by Herlihy's hierarchy.)
    #[test]
    fn model_three_process_violates_agreement() {
        let sys = naive_three_process_system();
        let explorer = Explorer::new(ExploreConfig::default());
        let result = explorer.explore(&sys, &[&Agreement]);
        assert!(!result.ok(), "the naive 3-process extension must violate agreement somewhere");
        let violation = &result.violations[0];
        assert!(!violation.path.is_empty(), "violation comes with a reproducing schedule");
    }
}
