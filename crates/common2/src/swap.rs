//! A lock-free swap register.

use std::fmt;

use apc_progress_macros::progress;
use apc_registers::AtomicCell;

/// A wait-free swap register over arbitrary values (consensus number 2).
///
/// `swap` atomically exchanges the content with a new value and returns the
/// previous one; the returned values over concurrent swaps form a chain, a
/// property the tests verify.
///
/// # Examples
///
/// ```
/// use apc_common2::SwapCell;
/// let cell: SwapCell<u32> = SwapCell::new();
/// assert_eq!(cell.swap(1), None);
/// assert_eq!(cell.swap(2), Some(1));
/// ```
pub struct SwapCell<T> {
    inner: AtomicCell<T>,
}

impl<T> SwapCell<T> {
    /// Creates an empty swap register.
    pub fn new() -> Self {
        SwapCell { inner: AtomicCell::new() }
    }

    /// Creates a swap register holding `value`.
    pub fn with_value(value: T) -> Self {
        SwapCell { inner: AtomicCell::with_value(value) }
    }
}

impl<T: Clone> SwapCell<T> {
    /// Atomically installs `value`, returning the previous content.
    #[progress(wait_free)]
    pub fn swap(&self, value: T) -> Option<T> {
        self.inner.swap(value)
    }

    /// Reads the current content.
    #[progress(wait_free)]
    pub fn read(&self) -> Option<T> {
        self.inner.load()
    }
}

impl<T> Default for SwapCell<T> {
    fn default() -> Self {
        SwapCell::new()
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SwapCell").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn sequential_chain() {
        let cell = SwapCell::new();
        assert_eq!(cell.swap(1), None);
        assert_eq!(cell.swap(2), Some(1));
        assert_eq!(cell.swap(3), Some(2));
        assert_eq!(cell.read(), Some(3));
    }

    #[test]
    fn with_value_starts_filled() {
        let cell = SwapCell::with_value(9);
        assert_eq!(cell.swap(1), Some(9));
    }

    #[test]
    fn concurrent_swaps_form_a_chain() {
        // Each swap returns the previous element: collecting (got -> put)
        // pairs must form one path covering all inserted values — i.e. every
        // value is returned at most once, and exactly one thread receives
        // `None` (the initial content).
        for _ in 0..100 {
            let cell: SwapCell<u64> = SwapCell::new();
            let results = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for t in 1..=8u64 {
                    let cell = &cell;
                    let results = &results;
                    s.spawn(move || {
                        let prev = cell.swap(t);
                        results.lock().unwrap().push((t, prev));
                    });
                }
            });
            let results = results.into_inner().unwrap();
            let nones = results.iter().filter(|(_, p)| p.is_none()).count();
            assert_eq!(nones, 1, "exactly one first swap: {results:?}");
            let mut returned: Vec<u64> = results.iter().filter_map(|(_, p)| *p).collect();
            returned.sort_unstable();
            returned.dedup();
            assert_eq!(returned.len(), results.len() - 1, "chain property: {results:?}");
            // The final content is one of the swapped values and was never
            // returned to anyone.
            let last = cell.read().unwrap();
            assert!(!returned.contains(&last));
        }
    }
}
