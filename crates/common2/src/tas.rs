//! A lock-free test-and-set bit.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use apc_progress_macros::progress;

/// A wait-free test-and-set bit (consensus number 2).
///
/// `test_and_set` atomically sets the bit and reports whether the caller was
/// the one to flip it — exactly one caller ever "wins" a fresh bit.
///
/// # Examples
///
/// ```
/// use apc_common2::TestAndSet;
/// let tas = TestAndSet::new();
/// assert!(tas.test_and_set(), "first caller wins");
/// assert!(!tas.test_and_set(), "everyone else loses");
/// ```
#[derive(Default)]
pub struct TestAndSet {
    bit: AtomicBool,
}

impl TestAndSet {
    /// Creates an unset bit.
    pub fn new() -> Self {
        TestAndSet { bit: AtomicBool::new(false) }
    }

    /// Atomically sets the bit; returns `true` iff the caller flipped it
    /// (i.e. the caller *won*).
    ///
    /// Uses `SeqCst`: Common2 consensus protocols order a register write
    /// before the TAS and a register read after losing it, and that
    /// cross-object reasoning needs the RMW in the global order.
    #[progress(wait_free)]
    pub fn test_and_set(&self) -> bool {
        !self.bit.swap(true, Ordering::SeqCst)
    }

    /// Reads the bit without modifying it.
    #[progress(wait_free)]
    pub fn is_set(&self) -> bool {
        self.bit.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for TestAndSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TestAndSet").field(&self.is_set()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn first_wins_rest_lose() {
        let tas = TestAndSet::new();
        assert!(!tas.is_set());
        assert!(tas.test_and_set());
        assert!(tas.is_set());
        for _ in 0..5 {
            assert!(!tas.test_and_set());
        }
    }

    #[test]
    fn exactly_one_concurrent_winner() {
        for _ in 0..200 {
            let tas = TestAndSet::new();
            let winners = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let tas = &tas;
                    let winners = &winners;
                    s.spawn(move || {
                        if tas.test_and_set() {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn debug_renders_state() {
        let tas = TestAndSet::new();
        assert!(format!("{tas:?}").contains("false"));
    }
}
