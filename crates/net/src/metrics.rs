//! Wire-path observability: the `store_net_*` metric family.
//!
//! Mirrors the store's own metrics layer: wait-free recording on the hot
//! path (atomic counters and a fixed-bound histogram — no locks, no
//! allocation), with scraping kept off to the side. Every per-tier series
//! is split into its own `vip`/`guest` instrument pair so the recording
//! path never formats a label; labels are attached only at scrape time.

use apc_obs::{Counter, FixedHistogram, Gauge, MetricsSnapshot, Sample, SampleValue};
use apc_progress_macros::progress;

/// Bucket bounds for request round-trip latency, in nanoseconds: powers
/// of four from 1 µs to 64 ms (matching the store's commit-latency
/// histogram so tier comparisons line up bucket-for-bucket).
pub const NET_LATENCY_NS_BOUNDS: [u64; 9] =
    [1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000, 4_096_000, 16_384_000, 65_536_000];

/// Bucket bounds for batched-dispatch size: how many guest envelopes one
/// coalesced store commit carried. Powers of two up to the reactor's
/// plausible per-turn drain.
pub const BATCH_ENVELOPES_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Per-tier instrument bundle.
#[derive(Debug)]
struct TierMetrics {
    conns_accepted: Counter,
    conns_denied: Counter,
    requests: Counter,
    ops: Counter,
    shed: Counter,
    deadline_shed: Counter,
    latency_ns: FixedHistogram,
}

impl TierMetrics {
    fn new() -> Self {
        Self {
            conns_accepted: Counter::new(),
            conns_denied: Counter::new(),
            requests: Counter::new(),
            ops: Counter::new(),
            shed: Counter::new(),
            deadline_shed: Counter::new(),
            latency_ns: FixedHistogram::new(&NET_LATENCY_NS_BOUNDS),
        }
    }
}

/// Wait-free instruments for the wire front-end.
///
/// One instance lives inside each
/// [`StoreServer`](crate::reactor::StoreServer); scrape through
/// [`NetMetrics::scrape`] or the server's `GET /metrics` endpoint.
#[derive(Debug)]
pub struct NetMetrics {
    vip: TierMetrics,
    guest: TierMetrics,
    conns_open: Gauge,
    conns_closed: Counter,
    codec_errors: Counter,
    frames_in: Counter,
    frames_out: Counter,
    http_hits: Counter,
    batch_dispatches: Counter,
    batch_envelopes: FixedHistogram,
    guest_queue_depth: Gauge,
}

impl Default for NetMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl NetMetrics {
    /// Creates a zeroed instrument set.
    pub fn new() -> Self {
        Self {
            vip: TierMetrics::new(),
            guest: TierMetrics::new(),
            conns_open: Gauge::new(),
            conns_closed: Counter::new(),
            codec_errors: Counter::new(),
            frames_in: Counter::new(),
            frames_out: Counter::new(),
            http_hits: Counter::new(),
            batch_dispatches: Counter::new(),
            batch_envelopes: FixedHistogram::new(&BATCH_ENVELOPES_BOUNDS),
            guest_queue_depth: Gauge::new(),
        }
    }

    fn tier(&self, vip: bool) -> &TierMetrics {
        if vip {
            &self.vip
        } else {
            &self.guest
        }
    }

    /// Records an accepted handshake on the given tier.
    #[progress(wait_free)]
    pub fn record_accept(&self, vip: bool) {
        self.tier(vip).conns_accepted.inc();
        self.conns_open.set(self.conns_open.get() + 1);
    }

    /// Records a denied handshake (bad credential / over-capacity).
    #[progress(wait_free)]
    pub fn record_deny(&self, vip: bool) {
        self.tier(vip).conns_denied.inc();
    }

    /// Records a connection teardown.
    #[progress(wait_free)]
    pub fn record_close(&self) {
        self.conns_closed.inc();
        self.conns_open.set(self.conns_open.get().saturating_sub(1));
    }

    /// Records a served request: its op count and round-trip latency.
    #[progress(wait_free)]
    pub fn record_request(&self, vip: bool, ops: u64, latency_ns: u64) {
        let tier = self.tier(vip);
        tier.requests.inc();
        tier.ops.add(ops);
        tier.latency_ns.observe(latency_ns);
    }

    /// Records a request shed by backpressure (typed 429, never served).
    #[progress(wait_free)]
    pub fn record_shed(&self, vip: bool) {
        self.tier(vip).shed.inc();
    }

    /// Records a request shed because its deadline expired before
    /// dispatch (typed [`DeadlineExceeded`](apc_store::StoreError), never
    /// served). The `vip` series exists only to prove it stays zero: VIP
    /// frames are never shed.
    #[progress(wait_free)]
    pub fn record_deadline_shed(&self, vip: bool) {
        self.tier(vip).deadline_shed.inc();
    }

    /// Records one coalesced guest dispatch and how many envelopes it
    /// carried.
    #[progress(wait_free)]
    pub fn record_batch(&self, envelopes: u64) {
        self.batch_dispatches.inc();
        self.batch_envelopes.observe(envelopes);
    }

    /// Records the guest backlog depth left at the end of a poll turn.
    #[progress(wait_free)]
    pub fn record_queue_depth(&self, depth: u64) {
        self.guest_queue_depth.set(depth);
    }

    /// Records a frame decoded off a connection.
    #[progress(wait_free)]
    pub fn record_frame_in(&self) {
        self.frames_in.inc();
    }

    /// Records a frame written to a connection.
    #[progress(wait_free)]
    pub fn record_frame_out(&self) {
        self.frames_out.inc();
    }

    /// Records a codec failure (poisoned stream, torn tail, bad frame).
    #[progress(wait_free)]
    pub fn record_codec_error(&self) {
        self.codec_errors.inc();
    }

    /// Records a plain-HTTP hit on the listener (e.g. `GET /metrics`).
    #[progress(wait_free)]
    pub fn record_http_hit(&self) {
        self.http_hits.inc();
    }

    /// Current `store_net_*` samples.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        for (label, tier) in [("vip", &self.vip), ("guest", &self.guest)] {
            out.push(Sample {
                name: "store_net_conns_accepted_total",
                help: "Connections accepted after handshake, by tier",
                labels: vec![("tier", label.to_string())],
                value: SampleValue::Counter(tier.conns_accepted.get()),
            });
            out.push(Sample {
                name: "store_net_conns_denied_total",
                help: "Handshakes refused (bad credential or over-capacity), by tier",
                labels: vec![("tier", label.to_string())],
                value: SampleValue::Counter(tier.conns_denied.get()),
            });
            out.push(Sample {
                name: "store_net_requests_total",
                help: "Wire requests served, by tier",
                labels: vec![("tier", label.to_string())],
                value: SampleValue::Counter(tier.requests.get()),
            });
            out.push(Sample {
                name: "store_net_ops_total",
                help: "Store operations carried by served wire requests, by tier",
                labels: vec![("tier", label.to_string())],
                value: SampleValue::Counter(tier.ops.get()),
            });
            out.push(Sample {
                name: "store_net_backpressure_shed_total",
                help:
                    "Requests answered with RetryBudgetExhausted instead of being served, by tier",
                labels: vec![("tier", label.to_string())],
                value: SampleValue::Counter(tier.shed.get()),
            });
            out.push(Sample {
                name: "store_net_deadline_shed_total",
                help: "Requests shed pre-dispatch with DeadlineExceeded, by tier \
                       (the vip series is pinned at zero: VIP frames are never shed)",
                labels: vec![("tier", label.to_string())],
                value: SampleValue::Counter(tier.deadline_shed.get()),
            });
            out.push(Sample {
                name: "store_net_request_latency_ns",
                help: "Round-trip request latency inside the reactor, by tier",
                labels: vec![("tier", label.to_string())],
                value: SampleValue::Histogram(tier.latency_ns.snapshot()),
            });
        }
        out.push(Sample {
            name: "store_net_conns_open",
            help: "Connections currently registered with the reactor",
            labels: Vec::new(),
            value: SampleValue::Gauge(self.conns_open.get()),
        });
        out.push(Sample {
            name: "store_net_conns_closed_total",
            help: "Connections torn down (either side)",
            labels: Vec::new(),
            value: SampleValue::Counter(self.conns_closed.get()),
        });
        out.push(Sample {
            name: "store_net_codec_errors_total",
            help: "Connections dropped for wire-protocol violations",
            labels: Vec::new(),
            value: SampleValue::Counter(self.codec_errors.get()),
        });
        out.push(Sample {
            name: "store_net_frames_in_total",
            help: "Frames decoded off connections",
            labels: Vec::new(),
            value: SampleValue::Counter(self.frames_in.get()),
        });
        out.push(Sample {
            name: "store_net_frames_out_total",
            help: "Frames written to connections",
            labels: Vec::new(),
            value: SampleValue::Counter(self.frames_out.get()),
        });
        out.push(Sample {
            name: "store_net_http_metrics_hits_total",
            help: "Plain-HTTP requests served by the listener",
            labels: Vec::new(),
            value: SampleValue::Counter(self.http_hits.get()),
        });
        out.push(Sample {
            name: "store_net_batch_dispatches_total",
            help: "Coalesced guest dispatches (one per-shard-planned store commit group)",
            labels: Vec::new(),
            value: SampleValue::Counter(self.batch_dispatches.get()),
        });
        out.push(Sample {
            name: "store_net_batch_envelopes",
            help: "Guest envelopes carried per coalesced dispatch",
            labels: Vec::new(),
            value: SampleValue::Histogram(self.batch_envelopes.snapshot()),
        });
        out.push(Sample {
            name: "store_net_guest_queue_depth",
            help: "Guest frames carried over in the reactor backlog after the last poll turn",
            labels: Vec::new(),
            value: SampleValue::Gauge(self.guest_queue_depth.get()),
        });
        out
    }

    /// Snapshot of just the net-layer series.
    pub fn scrape(&self) -> MetricsSnapshot {
        MetricsSnapshot { samples: self.samples() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_cover_both_tiers_and_globals() {
        let m = NetMetrics::new();
        m.record_accept(true);
        m.record_accept(false);
        m.record_deny(false);
        m.record_request(true, 3, 2_000);
        m.record_shed(false);
        m.record_close();
        let snap = m.scrape();
        let vip = [("tier", "vip")];
        let guest = [("tier", "guest")];
        assert_eq!(snap.value("store_net_conns_accepted_total", &vip), Some(1));
        assert_eq!(snap.value("store_net_conns_denied_total", &guest), Some(1));
        assert_eq!(snap.value("store_net_ops_total", &vip), Some(3));
        assert_eq!(snap.value("store_net_backpressure_shed_total", &guest), Some(1));
        assert_eq!(snap.value("store_net_conns_open", &[]), Some(1));
        let hist = snap.histogram("store_net_request_latency_ns", &vip).unwrap();
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn batching_and_deadline_series_are_scraped() {
        let m = NetMetrics::new();
        m.record_deadline_shed(false);
        m.record_deadline_shed(false);
        m.record_batch(8);
        m.record_batch(3);
        m.record_queue_depth(5);
        let snap = m.scrape();
        assert_eq!(snap.value("store_net_deadline_shed_total", &[("tier", "guest")]), Some(2));
        assert_eq!(
            snap.value("store_net_deadline_shed_total", &[("tier", "vip")]),
            Some(0),
            "the vip series exists to prove it stays zero"
        );
        assert_eq!(snap.value("store_net_batch_dispatches_total", &[]), Some(2));
        let hist = snap.histogram("store_net_batch_envelopes", &[]).unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(snap.value("store_net_guest_queue_depth", &[]), Some(5));
    }

    #[test]
    fn open_gauge_never_underflows() {
        let m = NetMetrics::new();
        m.record_close();
        assert_eq!(m.scrape().value("store_net_conns_open", &[]), Some(0));
    }
}
