//! The length-prefixed binary codec for the unified
//! [`Request`]`→`[`Response`](apc_store::Response) envelope (protocol
//! spec: `docs/WIRE.md`).
//!
//! ## Frame layout
//!
//! ```text
//! | payload_len: u32 LE | payload | fnv1a64(payload): u64 LE |
//! payload = | version: u8 | kind: u8 | body |
//! ```
//!
//! The shape deliberately mirrors the WAL's on-disk frames (`APCW`
//! segments): a sanity-capped length prefix, the payload, a 64-bit FNV-1a
//! checksum — and the same failure policy. A frame that is merely
//! *incomplete* is "awaiting more bytes" while the stream lives (the
//! streaming [`FrameReader`] returns `Ok(None)`); the same bytes at
//! stream close are a **torn tail** and the connection fails closed. A
//! frame that is *wrong* — oversized length prefix, checksum mismatch,
//! unknown version/kind/discriminant, trailing bytes, non-UTF-8 keys —
//! always fails closed: no partial decode is ever surfaced.
//!
//! All integers are little-endian. Strings are `len: u32 | utf8 bytes`.
//! `Option<u64>`/`Option<u32>` are `tag: u8 (0|1) | value if 1`.

use std::fmt;

use apc_store::{DurabilityClass, Request, StoreError, StoreOp, StoreResp, TierCredential};

/// Protocol version carried by every frame (`docs/WIRE.md`).
pub const WIRE_VERSION: u8 = 1;

/// Decode sanity cap on a frame's payload length: anything larger fails
/// closed as [`CodecError::FrameTooLarge`] before a byte of payload is
/// buffered beyond it. Tighter than the WAL's 16 MiB cap — a wire
/// front-end bounds per-connection memory, not a trusted local log.
pub const MAX_WIRE_PAYLOAD: u32 = 1 << 20;

/// Sanity cap on decoded list lengths (ops per request, results per
/// response, entries per scan result).
pub const MAX_WIRE_LIST: u32 = 1 << 16;

/// Frame kind: the connection handshake ([`Message::Hello`]).
pub const KIND_HELLO: u8 = 1;
/// Frame kind: one request envelope ([`Message::Request`]).
pub const KIND_REQUEST: u8 = 2;
/// Frame kind: one response envelope ([`Message::Response`]).
pub const KIND_RESPONSE: u8 = 3;

/// Bytes a frame spends on framing around its payload (length prefix +
/// checksum).
pub const FRAME_OVERHEAD: usize = 4 + 8;

/// One per-operation outcome as it travels the wire.
pub type WireResult = Result<StoreResp, StoreError>;

/// A decoded frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// The connection handshake: the claimed tier credential. Must be the
    /// first (and only) `Hello` on a connection.
    Hello(TierCredential),
    /// A pipelined request: correlation id + the unified envelope.
    Request {
        /// Client-chosen correlation id, echoed by the response.
        id: u64,
        /// The envelope, exactly as [`apc_store::Client::request`] takes it.
        req: Request,
    },
    /// A response: correlation id + per-operation outcomes.
    Response {
        /// The correlation id of the request this answers.
        id: u64,
        /// Per-operation outcomes in invocation order.
        results: Vec<WireResult>,
    },
}

/// Why a frame (or stream) failed to decode. Every variant fails closed:
/// the reactor drops the connection rather than guessing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The length prefix exceeds [`MAX_WIRE_PAYLOAD`].
    FrameTooLarge {
        /// The claimed payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// A body field ran past the end of its payload (or a closed stream
    /// ended mid-frame — the torn tail).
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload does not match its FNV-1a trailer.
    ChecksumMismatch,
    /// The frame speaks a protocol version this build does not.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// An unknown kind/tag/discriminant byte.
    UnknownDiscriminant {
        /// Which field carried it.
        what: &'static str,
        /// The byte found.
        found: u8,
    },
    /// The body decoded completely but bytes remain — a framing bug, not
    /// tolerated.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
    /// A wire string is not valid UTF-8.
    BadUtf8,
    /// A decoded list length exceeds [`MAX_WIRE_LIST`].
    OversizedList {
        /// The claimed element count.
        len: u32,
        /// The configured cap.
        max: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::FrameTooLarge { len, max } => {
                write!(f, "frame payload length {len} exceeds the {max}-byte cap")
            }
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            CodecError::BadVersion { found } => {
                write!(f, "unsupported wire version {found} (this build speaks {WIRE_VERSION})")
            }
            CodecError::UnknownDiscriminant { what, found } => {
                write!(f, "unknown {what} discriminant {found}")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete body")
            }
            CodecError::BadUtf8 => write!(f, "wire string is not valid UTF-8"),
            CodecError::OversizedList { len, max } => {
                write!(f, "list length {len} exceeds the {max}-element cap")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over `bytes` — the same checksum the WAL frames use.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

/// Wraps a finished payload into a full frame (length prefix + checksum).
///
/// Callers are responsible for keeping `payload` within
/// [`MAX_WIRE_PAYLOAD`]: a larger frame is structurally valid to *build*
/// but the peer's decoder fails closed on it and poisons the stream.
/// [`encode_response`] enforces the cap itself (the one message whose size
/// the remote peer does not control — see the oversize policy there);
/// [`encode_hello`] cannot exceed it; [`encode_request`] callers own their
/// envelope's size, exactly like any other client-side protocol limit.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    put_u32(&mut out, payload.len() as u32);
    let crc = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    put_u64(&mut out, crc);
    out
}

fn payload_head(kind: u8) -> Vec<u8> {
    vec![WIRE_VERSION, kind]
}

/// Encodes the handshake frame.
pub fn encode_hello(credential: &TierCredential) -> Vec<u8> {
    let mut p = payload_head(KIND_HELLO);
    match credential {
        TierCredential::Guest => p.push(0),
        TierCredential::Vip { token } => {
            p.push(1);
            put_u64(&mut p, *token);
        }
    }
    frame(p)
}

fn put_op(p: &mut Vec<u8>, op: &StoreOp) {
    match op {
        StoreOp::Get(key) => {
            p.push(0);
            put_str(p, key);
        }
        StoreOp::Put(key, value) => {
            p.push(1);
            put_str(p, key);
            put_u64(p, *value);
        }
        StoreOp::Remove(key) => {
            p.push(2);
            put_str(p, key);
        }
        StoreOp::Cas { key, expect, new } => {
            p.push(3);
            put_str(p, key);
            put_opt_u64(p, *expect);
            put_u64(p, *new);
        }
        StoreOp::Scan { from, to } => {
            p.push(4);
            put_str(p, from);
            put_str(p, to);
        }
    }
}

/// Encodes one request frame: correlation id + the unified envelope.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut p = payload_head(KIND_REQUEST);
    put_u64(&mut p, id);
    match req.durability {
        DurabilityClass::Group => p.push(0),
        DurabilityClass::Sync => p.push(1),
    }
    match req.deadline_ms {
        None => p.push(0),
        Some(ms) => {
            p.push(1);
            put_u32(&mut p, ms);
        }
    }
    put_u32(&mut p, req.retry_budget);
    match req.credential {
        TierCredential::Guest => p.push(0),
        TierCredential::Vip { token } => {
            p.push(1);
            put_u64(&mut p, token);
        }
    }
    put_u32(&mut p, req.ops.len() as u32);
    for op in &req.ops {
        put_op(&mut p, op);
    }
    frame(p)
}

/// Encodes one response frame.
///
/// The wire vocabulary is **normalized**: the legacy in-band rejection
/// variants [`StoreResp::Moved`] and [`StoreResp::Unavailable`] are
/// encoded as their consolidated [`StoreError`] twins (wire discriminants
/// `1` and `4`), so a wire peer sees exactly one error surface.
///
/// ## The encode-side payload cap
///
/// The response is the one frame whose size the *receiving* peer cannot
/// control — a bounded request (a `Scan` is ~12 bytes) can legitimately
/// produce an unbounded reply. Emitting a payload beyond
/// [`MAX_WIRE_PAYLOAD`] would make the peer's own decoder fail closed and
/// poison the whole stream, turning a large scan into a torn connection.
/// So the cap is enforced **here, at encode**: when the results would
/// overflow the payload budget, every result larger than its fair share
/// of the budget (`budget / results.len()`) is replaced by a typed
/// [`StoreError::Corrupt`] whose detail starts with `oversized:` — a
/// valid, in-cap frame where the oversized operations (and only those)
/// fail closed *individually*, telling the caller to narrow the
/// operation. Results that fit their share are transmitted untouched.
/// (`docs/WIRE.md` § "Oversized responses" is the normative text.)
pub fn encode_response(id: u64, results: &[WireResult]) -> Vec<u8> {
    let mut p = payload_head(KIND_RESPONSE);
    put_u64(&mut p, id);
    put_u32(&mut p, results.len() as u32);
    let budget = (MAX_WIRE_PAYLOAD as usize).saturating_sub(p.len());
    let encoded: Vec<Vec<u8>> = results.iter().map(encode_result).collect();
    if encoded.iter().map(Vec::len).sum::<usize>() <= budget {
        for e in &encoded {
            p.extend_from_slice(e);
        }
        return frame(p);
    }
    // Overflow: fair-share replacement. Every kept result and every
    // replacement is at most `share` bytes, so the payload stays in cap
    // for any result count the decoder's list cap admits.
    let share = budget / results.len().max(1);
    for e in &encoded {
        if e.len() <= share {
            p.extend_from_slice(e);
        } else {
            put_oversize_err(&mut p, e.len(), share);
        }
    }
    frame(p)
}

/// One result's wire bytes, with the legacy in-band rejections normalized
/// to their error twins.
fn encode_result(result: &WireResult) -> Vec<u8> {
    let mut p = Vec::new();
    match result {
        Ok(StoreResp::Moved { epoch }) => put_err(&mut p, &StoreError::Moved { epoch: *epoch }),
        Ok(StoreResp::Unavailable { version }) => {
            put_err(&mut p, &StoreError::Unavailable { version: *version })
        }
        Ok(resp) => {
            p.push(0);
            put_resp(&mut p, resp);
        }
        Err(err) => put_err(&mut p, err),
    }
    p
}

/// The typed oversize signal: a [`StoreError::Corrupt`] whose detail names
/// the dropped result's size, truncated so the whole encoding fits in
/// `budget` bytes (result tag + discriminant + string header cost 6).
fn put_oversize_err(p: &mut Vec<u8>, dropped: usize, budget: usize) {
    let mut detail =
        format!("oversized: {dropped}-byte result exceeds the wire payload cap; narrow the scan");
    detail.truncate(budget.saturating_sub(6)); // ASCII-only: safe to cut anywhere
    put_err(p, &StoreError::Corrupt { detail });
}

fn put_resp(p: &mut Vec<u8>, resp: &StoreResp) {
    match resp {
        StoreResp::Value(v) => {
            p.push(0);
            put_opt_u64(p, *v);
        }
        StoreResp::Cas { ok, actual } => {
            p.push(1);
            p.push(u8::from(*ok));
            put_opt_u64(p, *actual);
        }
        StoreResp::Entries(entries) => {
            p.push(2);
            put_u32(p, entries.len() as u32);
            for (k, v) in entries {
                put_str(p, k);
                put_u64(p, *v);
            }
        }
        // Normalized to errors by `encode_response`; kept total here for
        // direct callers.
        StoreResp::Moved { epoch } => {
            p.push(3);
            put_u64(p, *epoch);
        }
        StoreResp::Unavailable { version } => {
            p.push(4);
            put_u64(p, *version);
        }
    }
}

fn put_err(p: &mut Vec<u8>, err: &StoreError) {
    p.push(1); // result tag: error
    match err {
        StoreError::Moved { epoch } => {
            p.push(err.wire_discriminant());
            put_u64(p, *epoch);
        }
        StoreError::GuestTier => p.push(err.wire_discriminant()),
        StoreError::RetryBudgetExhausted { budget } => {
            p.push(err.wire_discriminant());
            put_u32(p, *budget);
        }
        StoreError::Unavailable { version } => {
            p.push(err.wire_discriminant());
            put_u64(p, *version);
        }
        StoreError::Corrupt { detail } => {
            p.push(err.wire_discriminant());
            put_str(p, detail);
        }
        StoreError::DeadlineExceeded { deadline_ms } => {
            p.push(err.wire_discriminant());
            put_u32(p, *deadline_ms);
        }
        // `StoreError` is non_exhaustive: a variant this codec predates
        // degrades to wire `Corrupt` carrying its display text, so old
        // peers fail closed on the payload rather than misdecoding it.
        other => {
            p.push(5);
            put_str(p, &other.to_string());
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over one payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(CodecError::Truncated { needed: n, available });
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    fn str_(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            found => Err(CodecError::UnknownDiscriminant { what: "option", found }),
        }
    }

    fn list_len(&mut self) -> Result<u32, CodecError> {
        let len = self.u32()?;
        if len > MAX_WIRE_LIST {
            return Err(CodecError::OversizedList { len, max: MAX_WIRE_LIST });
        }
        Ok(len)
    }

    fn finish(self) -> Result<(), CodecError> {
        let extra = self.buf.len() - self.pos;
        if extra > 0 {
            return Err(CodecError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn read_credential(rd: &mut Rd<'_>) -> Result<TierCredential, CodecError> {
    match rd.u8()? {
        0 => Ok(TierCredential::Guest),
        1 => Ok(TierCredential::Vip { token: rd.u64()? }),
        found => Err(CodecError::UnknownDiscriminant { what: "credential", found }),
    }
}

fn read_op(rd: &mut Rd<'_>) -> Result<StoreOp, CodecError> {
    match rd.u8()? {
        0 => Ok(StoreOp::Get(rd.str_()?)),
        1 => Ok(StoreOp::Put(rd.str_()?, rd.u64()?)),
        2 => Ok(StoreOp::Remove(rd.str_()?)),
        3 => Ok(StoreOp::Cas { key: rd.str_()?, expect: rd.opt_u64()?, new: rd.u64()? }),
        4 => Ok(StoreOp::Scan { from: rd.str_()?, to: rd.str_()? }),
        found => Err(CodecError::UnknownDiscriminant { what: "op", found }),
    }
}

fn read_result(rd: &mut Rd<'_>) -> Result<WireResult, CodecError> {
    match rd.u8()? {
        0 => {
            let resp = match rd.u8()? {
                0 => StoreResp::Value(rd.opt_u64()?),
                1 => {
                    let ok = match rd.u8()? {
                        0 => false,
                        1 => true,
                        found => {
                            return Err(CodecError::UnknownDiscriminant { what: "bool", found })
                        }
                    };
                    StoreResp::Cas { ok, actual: rd.opt_u64()? }
                }
                2 => {
                    let len = rd.list_len()?;
                    let mut entries = Vec::new();
                    for _ in 0..len {
                        let k = rd.str_()?;
                        let v = rd.u64()?;
                        entries.push((k, v));
                    }
                    StoreResp::Entries(entries)
                }
                3 => StoreResp::Moved { epoch: rd.u64()? },
                4 => StoreResp::Unavailable { version: rd.u64()? },
                found => return Err(CodecError::UnknownDiscriminant { what: "resp", found }),
            };
            Ok(Ok(resp))
        }
        1 => {
            let err = match rd.u8()? {
                1 => StoreError::Moved { epoch: rd.u64()? },
                2 => StoreError::GuestTier,
                3 => StoreError::RetryBudgetExhausted { budget: rd.u32()? },
                4 => StoreError::Unavailable { version: rd.u64()? },
                5 => StoreError::Corrupt { detail: rd.str_()? },
                6 => StoreError::DeadlineExceeded { deadline_ms: rd.u32()? },
                found => return Err(CodecError::UnknownDiscriminant { what: "error", found }),
            };
            Ok(Err(err))
        }
        found => Err(CodecError::UnknownDiscriminant { what: "result", found }),
    }
}

/// Decodes one complete frame payload (as returned by
/// [`FrameReader::next_payload`]) into a [`Message`]. Fails closed on any
/// structural fault.
pub fn decode_message(payload: &[u8]) -> Result<Message, CodecError> {
    let mut rd = Rd::new(payload);
    let version = rd.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError::BadVersion { found: version });
    }
    let kind = rd.u8()?;
    let msg = match kind {
        KIND_HELLO => Message::Hello(read_credential(&mut rd)?),
        KIND_REQUEST => {
            let id = rd.u64()?;
            let durability = match rd.u8()? {
                0 => DurabilityClass::Group,
                1 => DurabilityClass::Sync,
                found => return Err(CodecError::UnknownDiscriminant { what: "durability", found }),
            };
            let deadline_ms = match rd.u8()? {
                0 => None,
                1 => Some(rd.u32()?),
                found => return Err(CodecError::UnknownDiscriminant { what: "deadline", found }),
            };
            let retry_budget = rd.u32()?;
            let credential = read_credential(&mut rd)?;
            let n = rd.list_len()?;
            let mut ops = Vec::new();
            for _ in 0..n {
                ops.push(read_op(&mut rd)?);
            }
            Message::Request {
                id,
                req: Request { ops, credential, durability, deadline_ms, retry_budget },
            }
        }
        KIND_RESPONSE => {
            let id = rd.u64()?;
            let n = rd.list_len()?;
            let mut results = Vec::new();
            for _ in 0..n {
                results.push(read_result(&mut rd)?);
            }
            Message::Response { id, results }
        }
        found => return Err(CodecError::UnknownDiscriminant { what: "kind", found }),
    };
    rd.finish()?;
    Ok(msg)
}

/// The streaming frame extractor: push raw connection bytes in, pull
/// complete checksum-verified payloads out.
///
/// Mirrors the WAL's torn-tail policy: an incomplete frame is `Ok(None)`
/// ("await more bytes") while the stream lives; [`FrameReader::buffered`]
/// at stream close detects the torn tail so the connection can fail
/// closed. A structurally wrong frame — oversized length prefix, checksum
/// mismatch — is an immediate error and poisons the stream (every later
/// call returns the same error).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    poisoned: Option<CodecError>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends raw bytes received from the connection.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame. Non-zero
    /// at stream close means a torn tail.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete, checksum-verified frame payload.
    /// `Ok(None)` means "no complete frame yet — feed more bytes".
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut lb = [0u8; 4];
        lb.copy_from_slice(&self.buf[..4]);
        let len = u32::from_le_bytes(lb);
        if len > MAX_WIRE_PAYLOAD {
            let err = CodecError::FrameTooLarge { len, max: MAX_WIRE_PAYLOAD };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        let total = 4 + len as usize + 8;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len as usize].to_vec();
        let mut cb = [0u8; 8];
        cb.copy_from_slice(&self.buf[4 + len as usize..total]);
        if fnv1a64(&payload) != u64::from_le_bytes(cb) {
            let err = CodecError::ChecksumMismatch;
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::new(vec![
            StoreOp::Get("alpha".into()),
            StoreOp::Put("beta".into(), 7),
            StoreOp::Cas { key: "gamma".into(), expect: Some(1), new: 2 },
            StoreOp::Scan { from: "a".into(), to: "z".into() },
            StoreOp::Remove("delta".into()),
        ])
        .credential(TierCredential::Vip { token: 42 })
        .durability(DurabilityClass::Sync)
        .deadline_ms(250)
        .retry_budget(8)
    }

    fn decode_one(frame: &[u8]) -> Message {
        let mut reader = FrameReader::new();
        reader.push(frame);
        let payload = reader.next_payload().unwrap().expect("one complete frame");
        assert_eq!(reader.buffered(), 0);
        decode_message(&payload).unwrap()
    }

    #[test]
    fn request_roundtrips() {
        let req = sample_request();
        let msg = decode_one(&encode_request(99, &req));
        assert_eq!(msg, Message::Request { id: 99, req });
    }

    #[test]
    fn hello_roundtrips() {
        for cred in [TierCredential::Guest, TierCredential::Vip { token: u64::MAX }] {
            assert_eq!(decode_one(&encode_hello(&cred)), Message::Hello(cred));
        }
    }

    #[test]
    fn response_roundtrips_and_normalizes_legacy_rejections() {
        let results: Vec<WireResult> = vec![
            Ok(StoreResp::Value(Some(3))),
            Ok(StoreResp::Cas { ok: true, actual: None }),
            Ok(StoreResp::Entries(vec![("k".into(), 9)])),
            Ok(StoreResp::Moved { epoch: 4 }),
            Ok(StoreResp::Unavailable { version: 6 }),
            Err(StoreError::GuestTier),
            Err(StoreError::RetryBudgetExhausted { budget: 5 }),
            Err(StoreError::Corrupt { detail: "flush failed".into() }),
            Err(StoreError::DeadlineExceeded { deadline_ms: 250 }),
        ];
        let msg = decode_one(&encode_response(7, &results));
        let Message::Response { id, results: decoded } = msg else { panic!("expected a response") };
        assert_eq!(id, 7);
        assert_eq!(decoded[3], Err(StoreError::Moved { epoch: 4 }));
        assert_eq!(decoded[4], Err(StoreError::Unavailable { version: 6 }));
        assert_eq!(decoded[..3], results[..3]);
        assert_eq!(decoded[5..], results[5..]);
    }

    #[test]
    fn deadline_exceeded_roundtrips_discriminant_6() {
        let results: Vec<WireResult> = vec![Err(StoreError::DeadlineExceeded { deadline_ms: 50 })];
        let frame = encode_response(1, &results);
        // The wire byte itself is pinned: version, kind, id, count, result
        // tag, then discriminant 6.
        let payload_start = 4; // skip the length prefix
        assert_eq!(frame[payload_start + 1], KIND_RESPONSE);
        assert_eq!(frame[payload_start + 2 + 8 + 4], 1, "error result tag");
        assert_eq!(frame[payload_start + 2 + 8 + 4 + 1], 6, "DeadlineExceeded discriminant");
        let Message::Response { results: decoded, .. } = decode_one(&frame) else {
            panic!("expected a response")
        };
        assert_eq!(decoded, results);
    }

    #[test]
    fn oversized_entries_are_replaced_with_typed_corrupt_at_encode() {
        // One Scan reply bigger than the whole payload cap, flanked by
        // small results that must survive untouched.
        let huge: Vec<(String, u64)> =
            (0..40_000).map(|i| (format!("key-{i:08}-{}", "x".repeat(24)), i as u64)).collect();
        let results: Vec<WireResult> = vec![
            Ok(StoreResp::Value(Some(1))),
            Ok(StoreResp::Entries(huge)),
            Err(StoreError::GuestTier),
        ];
        let frame = encode_response(9, &results);
        assert!(
            frame.len() <= MAX_WIRE_PAYLOAD as usize + FRAME_OVERHEAD,
            "encode must never build a frame the peer fails closed on"
        );
        let Message::Response { id, results: decoded } = decode_one(&frame) else {
            panic!("expected a response")
        };
        assert_eq!(id, 9);
        assert_eq!(decoded[0], results[0]);
        assert_eq!(decoded[2], results[2]);
        match &decoded[1] {
            Err(StoreError::Corrupt { detail }) => {
                assert!(detail.starts_with("oversized"), "typed oversize signal, got {detail:?}");
            }
            other => panic!("oversized result must fail closed individually, got {other:?}"),
        }
    }

    #[test]
    fn many_oversized_results_still_fit_the_cap() {
        // Worst case: every result oversized. Fair-share replacement must
        // keep the frame in cap even when each replacement carries detail.
        let big_entries: Vec<(String, u64)> =
            (0..8_000).map(|i| (format!("k{i:06}{}", "y".repeat(120)), i as u64)).collect();
        let results: Vec<WireResult> =
            (0..24).map(|_| Ok(StoreResp::Entries(big_entries.clone()))).collect();
        let frame = encode_response(2, &results);
        assert!(frame.len() <= MAX_WIRE_PAYLOAD as usize + FRAME_OVERHEAD);
        let Message::Response { results: decoded, .. } = decode_one(&frame) else {
            panic!("expected a response")
        };
        assert_eq!(decoded.len(), 24);
        for r in &decoded {
            assert!(
                matches!(r, Err(StoreError::Corrupt { detail }) if detail.starts_with("oversized")),
                "every oversized slot fails closed, got {r:?}"
            );
        }
    }

    #[test]
    fn streaming_reassembles_byte_by_byte() {
        let frame = encode_request(1, &sample_request());
        let mut reader = FrameReader::new();
        for (i, b) in frame.iter().enumerate() {
            reader.push(&[*b]);
            let got = reader.next_payload().unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "no frame before byte {i}");
            } else {
                assert!(got.is_some(), "complete at the last byte");
            }
        }
    }

    #[test]
    fn oversized_length_prefix_fails_closed_and_poisons() {
        let mut reader = FrameReader::new();
        reader.push(&(MAX_WIRE_PAYLOAD + 1).to_le_bytes());
        reader.push(&[0u8; 16]);
        let err = reader.next_payload().unwrap_err();
        assert!(matches!(err, CodecError::FrameTooLarge { .. }));
        // Poisoned: the stream never yields again.
        assert!(reader.next_payload().is_err());
    }

    #[test]
    fn corrupted_byte_fails_the_checksum() {
        let mut frame = encode_hello(&TierCredential::Guest);
        let mid = frame.len() / 2;
        frame[mid] ^= 0x40;
        let mut reader = FrameReader::new();
        reader.push(&frame);
        match reader.next_payload() {
            Err(CodecError::ChecksumMismatch) => {}
            // Flips in the length prefix surface as the other closed
            // failures; a flip that still parses must not decode cleanly.
            Err(_) => {}
            Ok(Some(payload)) => {
                assert!(decode_message(&payload).is_err(), "corrupt frame decoded cleanly");
            }
            Ok(None) => {} // length prefix grew: stream legitimately waits
        }
    }

    #[test]
    fn truncated_tail_is_pending_not_error() {
        let frame = encode_request(3, &sample_request());
        let mut reader = FrameReader::new();
        reader.push(&frame[..frame.len() - 3]);
        assert_eq!(reader.next_payload().unwrap(), None);
        assert!(reader.buffered() > 0, "the torn tail stays visible for close-time checks");
    }

    #[test]
    fn unknown_discriminants_fail_closed() {
        // Unknown kind.
        let mut p = vec![WIRE_VERSION, 0x7f];
        p.extend_from_slice(&[0; 8]);
        assert!(matches!(
            decode_message(&p),
            Err(CodecError::UnknownDiscriminant { what: "kind", .. })
        ));
        // Unknown op tag inside a request.
        let good = encode_request(1, &Request::new(vec![StoreOp::Get("k".into())]));
        let mut reader = FrameReader::new();
        reader.push(&good);
        let mut payload = reader.next_payload().unwrap().expect("frame");
        let last_op_tag = payload.len() - ("k".len() + 4 + 1);
        payload[last_op_tag] = 0x6e;
        assert!(matches!(
            decode_message(&payload),
            Err(CodecError::UnknownDiscriminant { what: "op", .. })
        ));
    }

    #[test]
    fn trailing_bytes_fail_closed() {
        let frame = encode_hello(&TierCredential::Guest);
        let mut reader = FrameReader::new();
        reader.push(&frame);
        let mut payload = reader.next_payload().unwrap().expect("frame");
        payload.push(0);
        assert!(matches!(decode_message(&payload), Err(CodecError::TrailingBytes { extra: 1 })));
    }

    #[test]
    fn oversized_list_fails_closed_without_allocation() {
        // A request claiming 2^20 ops in a tiny payload must be rejected
        // by the list cap, not by attempting to materialize the list.
        let mut p = vec![WIRE_VERSION, KIND_REQUEST];
        p.extend_from_slice(&7u64.to_le_bytes()); // id
        p.push(0); // durability
        p.push(0); // deadline
        p.extend_from_slice(&4u32.to_le_bytes()); // budget
        p.push(0); // guest credential
        p.extend_from_slice(&(1u32 << 20).to_le_bytes()); // op count
        assert!(matches!(decode_message(&p), Err(CodecError::OversizedList { .. })));
    }
}
