//! Simulated duplex connections: the offline stand-in for TCP sockets.
//!
//! The build environment has no network access (and the workspace
//! deliberately hand-rolls its reactor instead of pulling in tokio), so a
//! "connection" here is a pair of in-memory byte pipes shared between a
//! client thread and the reactor. The surface is socket-shaped — send
//! bytes, drain bytes, half-aware close — so a real TCP transport can
//! replace [`sim_pair`] without touching the codec or the reactor logic.
//!
//! Pipes are deliberately *blocking-free*: every operation drains or
//! appends under a short mutex hold and returns immediately — there is no
//! "wait for data" primitive, because the reactor must never park. A
//! poisoned pipe mutex (a peer thread panicked mid-append) degrades to
//! the poisoned guard's data rather than propagating the panic.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// One direction of a duplex connection.
#[derive(Debug, Default)]
struct Pipe {
    buf: VecDeque<u8>,
    closed: bool,
}

fn locked(pipe: &Mutex<Pipe>) -> MutexGuard<'_, Pipe> {
    match pipe.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One endpoint of a simulated duplex connection (cheaply cloneable;
/// clones share the same pipes, like `dup`ed file descriptors).
#[derive(Clone, Debug)]
pub struct ConnEnd {
    /// Bytes this end writes; the peer drains them.
    tx: Arc<Mutex<Pipe>>,
    /// Bytes the peer writes; this end drains them.
    rx: Arc<Mutex<Pipe>>,
}

/// Creates a connected pair of endpoints.
pub fn sim_pair() -> (ConnEnd, ConnEnd) {
    let a2b = Arc::new(Mutex::new(Pipe::default()));
    let b2a = Arc::new(Mutex::new(Pipe::default()));
    (ConnEnd { tx: Arc::clone(&a2b), rx: Arc::clone(&b2a) }, ConnEnd { tx: b2a, rx: a2b })
}

impl ConnEnd {
    /// Appends `bytes` to the outbound pipe. Returns `false` — without
    /// writing — once either side has closed.
    pub fn send(&self, bytes: &[u8]) -> bool {
        let mut pipe = locked(&self.tx);
        if pipe.closed {
            return false;
        }
        pipe.buf.extend(bytes);
        true
    }

    /// Drains every available inbound byte into `out`, returning how many
    /// arrived. Never waits.
    pub fn drain_into(&self, out: &mut Vec<u8>) -> usize {
        let mut pipe = locked(&self.rx);
        let n = pipe.buf.len();
        out.extend(pipe.buf.drain(..));
        n
    }

    /// Hangs up both directions. Buffered inbound bytes remain drainable
    /// (a close with a part-written frame is exactly the torn tail the
    /// codec's close-time check catches).
    pub fn close(&self) {
        locked(&self.tx).closed = true;
        locked(&self.rx).closed = true;
    }

    /// True once either side has hung up.
    pub fn is_closed(&self) -> bool {
        locked(&self.tx).closed
    }

    /// Inbound bytes currently buffered and undrained.
    pub fn pending(&self) -> usize {
        locked(&self.rx).buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_flow_both_ways() {
        let (a, b) = sim_pair();
        assert!(a.send(b"ping"));
        assert!(b.send(b"pong"));
        let mut buf = Vec::new();
        assert_eq!(b.drain_into(&mut buf), 4);
        assert_eq!(buf, b"ping");
        buf.clear();
        assert_eq!(a.drain_into(&mut buf), 4);
        assert_eq!(buf, b"pong");
        assert_eq!(a.drain_into(&mut buf), 0);
    }

    #[test]
    fn close_stops_sends_but_keeps_buffered_bytes() {
        let (a, b) = sim_pair();
        assert!(a.send(b"tail"));
        a.close();
        assert!(!a.send(b"late"));
        assert!(!b.send(b"either"), "close hangs up both directions");
        assert!(b.is_closed());
        let mut buf = Vec::new();
        assert_eq!(b.drain_into(&mut buf), 4, "pre-close bytes survive for torn-tail checks");
    }

    #[test]
    fn clones_share_the_pipes() {
        let (a, b) = sim_pair();
        let a2 = a.clone();
        assert!(a2.send(b"x"));
        assert_eq!(b.pending(), 1);
    }
}
