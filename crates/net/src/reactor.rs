//! The single-threaded reactor: multiplexes many simulated connections
//! onto one [`Store`]'s admission tiers.
//!
//! One [`StoreServer::poll`] call is one reactor turn, in three phases:
//!
//! 1. **Ingest** — drain every connection's bytes, extract complete
//!    frames, finish handshakes ([`Message::Hello`] → admission) and
//!    answer plain-HTTP probes (`GET /metrics` serves the merged
//!    store + net Prometheus scrape). Decoded requests are queued by the
//!    *connection's* admitted tier, never by what the frame claims.
//! 2. **VIP dispatch** — every queued VIP request is served, no cap. The
//!    per-request work is `StoreServer::dispatch_vip`, annotated
//!    `bounded_wait_free` and lint-verified: the whole serve path down to
//!    the store's port commit is a bounded number of steps, so a guest
//!    flood can make this phase *longer* (more conns to drain) but can
//!    never make any single VIP request wait on guest progress.
//! 3. **Guest dispatch** — the turn's guest arrivals join a bounded
//!    backlog ([`ServerConfig::guest_queue_depth`]) behind frames carried
//!    over from earlier turns; up to
//!    [`ServerConfig::guest_dispatch_per_poll`] are served from the
//!    front, oldest first. A frame whose `deadline_ms` expired while it
//!    queued is shed **pre-dispatch** with a typed
//!    [`StoreError::DeadlineExceeded`] — serving it would burn a store
//!    commit whose response the client will discard — and the wait it
//!    did survive is debited from the deadline the store sees. Overflow
//!    beyond the backlog depth is shed from the back (newest arrivals)
//!    with a typed [`StoreError::RetryBudgetExhausted`] (the wire's 429)
//!    instead of buffering unboundedly or blocking the reactor.
//!    Backpressure is a value, not a stall.
//!
//! ## Per-shard batching of pipelined guest envelopes
//!
//! With [`ServerConfig::batch_guest_dispatch`] (the default), the guest
//! envelopes dispatched in one turn are **coalesced** into a single store
//! round via [`apc_store::Client::request_guest_many`]: the store's batch
//! planner splits the combined op vector per shard, so N pipelined
//! single-op requests cost ~one log append per shard instead of N, and
//! the results demultiplex back to each owning `(conn, request-id)`.
//! Batching is transparent — same per-envelope responses, budgets, and
//! deadline errors as per-envelope dispatch (property-tested against the
//! oracle in `tests/store_net.rs`) — and it cannot erode the asymmetric
//! guarantees: the batch runs strictly *after* the VIP phase under the
//! server's own guest session, so coalescing can delay other guests but
//! never a VIP frame. `Sync`-durability and tier-mismatched envelopes
//! keep the per-envelope path. VIP frames are never batched, never
//! queued across turns, never deadline-shed: every VIP frame is still
//! served in its arrival turn.
//!
//! ## Admission is keyed by connection credential
//!
//! A VIP handshake must present a token from
//! [`ServerConfig::vip_tokens`]; the server admits one VIP ticket per
//! distinct token (cached in `vip_sessions`, so reconnects reuse the same
//! port) and refuses unknown tokens or over-capacity admissions with a
//! typed [`StoreError::GuestTier`] response before closing. Guests are
//! admitted unboundedly, one ticket per connection. A serving connection
//! whose request claims a different tier than its handshake earned is
//! answered with `GuestTier` errors — frames cannot escalate privilege.
//!
//! ## The wire never blocks
//!
//! Request retry budgets are clamped to
//! [`ServerConfig::wire_retry_budget_cap`], so the in-process API's
//! blocking "wait for the topology" arm ([`apc_store::UNBOUNDED_RETRIES`])
//! is unreachable from the wire: a reconfiguration race surfaces as a
//! typed `RetryBudgetExhausted` after finitely many re-plans. `Sync`
//! durability is the one deliberate exception — it fsyncs on the reactor
//! thread via the store's own (VIP-gated) blocking arm.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use apc_obs::{encode_prometheus, MetricsSnapshot};
use apc_progress_macros::progress;
use apc_store::{
    ClientTicket, DurabilityClass, ProgressClass, Request, Response, Store, StoreError,
    TierCredential,
};

use crate::codec::{decode_message, encode_hello, encode_request, encode_response};
use crate::codec::{CodecError, FrameReader, Message, WireResult};
use crate::conn::{sim_pair, ConnEnd};
use crate::metrics::NetMetrics;

/// Tuning knobs for a [`StoreServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Tokens whose `Hello` handshake may claim the VIP tier. Each
    /// distinct token is backed by at most one admitted VIP ticket
    /// (reconnects reuse it), so the list's length bounds how much VIP
    /// port capacity the wire can consume.
    pub vip_tokens: Vec<u64>,
    /// Guest requests served per [`StoreServer::poll`]; arrivals beyond
    /// this wait in the backlog (up to
    /// [`ServerConfig::guest_queue_depth`]) or are shed with
    /// [`StoreError::RetryBudgetExhausted`].
    pub guest_dispatch_per_poll: usize,
    /// Guest frames that may carry over between poll turns after the
    /// per-turn dispatch cap is spent. Overflow beyond this depth is shed
    /// (newest first) with the typed 429. `0` restores the legacy
    /// shed-everything-same-turn behavior. A queued frame's wait is
    /// debited from its `deadline_ms`; frames that expire while queued
    /// are shed pre-dispatch with [`StoreError::DeadlineExceeded`].
    pub guest_queue_depth: usize,
    /// Coalesce the turn's dispatched guest envelopes into one store
    /// round through the batch planner (default). Off = per-envelope
    /// dispatch, observationally equivalent but ~one log append per
    /// envelope instead of per shard.
    pub batch_guest_dispatch: bool,
    /// Cap applied to every wire request's retry budget. Keeps the
    /// blocking [`apc_store::UNBOUNDED_RETRIES`] arm unreachable from the
    /// network.
    pub wire_retry_budget_cap: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            vip_tokens: Vec::new(),
            guest_dispatch_per_poll: 256,
            guest_queue_depth: 1024,
            batch_guest_dispatch: true,
            wire_retry_budget_cap: 16,
        }
    }
}

/// What one reactor turn did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Complete frames ingested.
    pub frames: usize,
    /// Requests dispatched to the store (both tiers).
    pub served: usize,
    /// Guest requests shed with `RetryBudgetExhausted`.
    pub shed: usize,
    /// Guest requests shed pre-dispatch with `DeadlineExceeded`.
    pub deadline_shed: usize,
    /// Coalesced guest dispatches performed (0 or 1 per turn).
    pub batches: usize,
    /// Connections that transitioned to closed during the turn.
    pub closed: usize,
}

/// A guest frame waiting in the reactor backlog, stamped with its
/// arrival instant so queue wait can be charged against its deadline.
#[derive(Debug)]
struct QueuedGuest {
    conn: usize,
    id: u64,
    req: Request,
    arrived: Instant,
}

/// Per-connection lifecycle.
#[derive(Debug)]
enum ConnState {
    /// Awaiting the `Hello` frame (or an HTTP sniff).
    Handshake,
    /// Admitted; requests dispatch under this ticket.
    Serving(ClientTicket),
    /// Speaking plain HTTP; accumulating the request head.
    Http(Vec<u8>),
    /// Torn down (either side).
    Closed,
}

#[derive(Debug)]
struct ConnSlot {
    end: ConnEnd,
    reader: FrameReader,
    state: ConnState,
}

/// The reactor: owns the server side of every simulated connection and
/// drives them against one [`Store`].
///
/// Single-threaded by design — progress isolation between tiers comes
/// from the store's port structure and the phase ordering of
/// [`StoreServer::poll`], not from thread scheduling.
#[derive(Debug)]
pub struct StoreServer<'a> {
    store: &'a Store,
    cfg: ServerConfig,
    metrics: NetMetrics,
    /// One admitted VIP ticket per authorized token, reused across
    /// reconnects so a flapping VIP client cannot leak ports.
    vip_sessions: BTreeMap<u64, ClientTicket>,
    conns: Vec<ConnSlot>,
    /// Guest frames carried over between poll turns, oldest first.
    guest_backlog: VecDeque<QueuedGuest>,
    /// The server's own guest session: coalesced dispatches commit under
    /// this ticket (guest ports are interchangeable shared slots, so the
    /// batch riding one fixed port changes nothing observable).
    batch_ticket: ClientTicket,
}

impl<'a> StoreServer<'a> {
    /// A reactor over `store` with the given tuning.
    pub fn new(store: &'a Store, cfg: ServerConfig) -> StoreServer<'a> {
        StoreServer {
            store,
            cfg,
            metrics: NetMetrics::new(),
            vip_sessions: BTreeMap::new(),
            conns: Vec::new(),
            guest_backlog: VecDeque::new(),
            batch_ticket: store.admit_guest(),
        }
    }

    /// Opens a new simulated connection and returns the client endpoint.
    /// The connection serves nothing until its `Hello` handshake lands in
    /// a later [`StoreServer::poll`].
    pub fn connect(&mut self) -> ConnEnd {
        let (client, server) = sim_pair();
        self.conns.push(ConnSlot {
            end: server,
            reader: FrameReader::new(),
            state: ConnState::Handshake,
        });
        client
    }

    /// The net-layer instruments (live; scrape any time).
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Connections registered with the reactor (any state).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// The merged scrape: the store's own series plus `store_net_*`.
    pub fn scrape(&self) -> MetricsSnapshot {
        let mut snap = self.store.scrape();
        snap.merge(self.metrics.scrape());
        snap
    }

    /// One reactor turn: ingest, VIP dispatch, guest dispatch + shed.
    pub fn poll(&mut self) -> PollStats {
        let mut stats = PollStats::default();
        let closed_before = self.closed_count();
        let mut vip_q: Vec<(usize, u64, Request)> = Vec::new();
        let mut guest_q: Vec<(usize, u64, Request)> = Vec::new();
        let mut scratch = Vec::new();

        // Phase 1: ingest every connection.
        for i in 0..self.conns.len() {
            if matches!(self.conns[i].state, ConnState::Closed) {
                continue;
            }
            scratch.clear();
            self.conns[i].end.drain_into(&mut scratch);

            // HTTP sniff: a fresh connection whose first bytes spell
            // "GET " is a plain-HTTP probe, not a codec peer. (The sniff
            // needs the prefix in one chunk — true of any real client,
            // which writes the request head with a single send.)
            if matches!(self.conns[i].state, ConnState::Handshake)
                && self.conns[i].reader.buffered() == 0
                && scratch.starts_with(b"GET ")
            {
                self.conns[i].state = ConnState::Http(Vec::new());
            }

            match self.conns[i].state {
                ConnState::Http(_) => self.ingest_http(i, &scratch),
                ConnState::Handshake | ConnState::Serving(_) => {
                    self.conns[i].reader.push(&scratch);
                    self.ingest_frames(i, &mut stats, &mut vip_q, &mut guest_q);
                }
                ConnState::Closed => {}
            }

            // Peer hang-up: any bytes still buffered are a torn tail —
            // the stream died mid-frame — and fail closed, mirroring the
            // WAL's recovery policy.
            if !matches!(self.conns[i].state, ConnState::Closed) && self.conns[i].end.is_closed() {
                let torn = self.conns[i].reader.buffered() > 0;
                self.close_conn(i, torn);
            }
        }

        // Phase 2: serve every VIP request — no cap, by construction.
        for (i, id, req) in vip_q {
            let ticket = match &self.conns[i].state {
                ConnState::Serving(t) => *t,
                _ => continue,
            };
            let resp = self.serve_request(ticket, req);
            self.send_response(i, id, &resp.results);
            stats.served += 1;
        }

        // Phase 3: the turn's guest arrivals join the backlog behind any
        // carried-over frames; serve from the front, oldest first.
        let now = Instant::now();
        for (i, id, req) in guest_q {
            self.guest_backlog.push_back(QueuedGuest { conn: i, id, req, arrived: now });
        }
        let cap = self.cfg.guest_dispatch_per_poll;
        let mut dispatch: Vec<QueuedGuest> = Vec::new();
        while dispatch.len() < cap {
            let Some(mut q) = self.guest_backlog.pop_front() else { break };
            if !matches!(self.conns[q.conn].state, ConnState::Serving(_)) {
                continue;
            }
            // Queue wait is charged against the frame's own deadline:
            // an expired frame is shed here, before it burns a store
            // commit whose response the client will discard; a live one
            // carries only its *remaining* deadline into dispatch.
            if let Some(ms) = q.req.deadline_ms {
                let waited = q.arrived.elapsed().as_millis();
                if waited >= u128::from(ms) {
                    self.metrics.record_deadline_shed(false);
                    let err = StoreError::DeadlineExceeded { deadline_ms: ms };
                    let resp = Response::fail_all(q.req.ops.len(), err);
                    self.send_response(q.conn, q.id, &resp.results);
                    stats.deadline_shed += 1;
                    continue;
                }
                q.req.deadline_ms = Some(ms - waited as u32);
            }
            dispatch.push(q);
        }
        // Overflow beyond the backlog depth is shed from the back — the
        // newest arrivals lose, so a queued frame's position only ever
        // improves.
        while self.guest_backlog.len() > self.cfg.guest_queue_depth {
            let Some(q) = self.guest_backlog.pop_back() else { break };
            if !matches!(self.conns[q.conn].state, ConnState::Serving(_)) {
                continue;
            }
            self.metrics.record_shed(false);
            let err = StoreError::RetryBudgetExhausted { budget: q.req.retry_budget };
            let resp = Response::fail_all(q.req.ops.len(), err);
            self.send_response(q.conn, q.id, &resp.results);
            stats.shed += 1;
        }
        self.metrics.record_queue_depth(self.guest_backlog.len() as u64);

        if self.cfg.batch_guest_dispatch {
            self.serve_guest_turn_batched(dispatch, &mut stats);
        } else {
            for q in dispatch {
                let ticket = match &self.conns[q.conn].state {
                    ConnState::Serving(t) => *t,
                    _ => continue,
                };
                let resp = self.serve_request(ticket, q.req);
                self.send_response(q.conn, q.id, &resp.results);
                stats.served += 1;
            }
        }

        stats.closed = self.closed_count() - closed_before;
        stats
    }

    /// Serves one turn's guest dispatch set, coalescing every batchable
    /// envelope into a single store round. `Sync`-durability and
    /// tier-mismatched envelopes take the per-envelope path (for guests
    /// both are state-free refusals, so their relative order against the
    /// batch is unobservable).
    fn serve_guest_turn_batched(&mut self, dispatch: Vec<QueuedGuest>, stats: &mut PollStats) {
        let mut owners: Vec<(usize, u64, u64)> = Vec::new(); // (conn, id, ops)
        let mut reqs: Vec<Request> = Vec::new();
        for q in dispatch {
            let ticket = match &self.conns[q.conn].state {
                ConnState::Serving(t) => *t,
                _ => continue,
            };
            let mut req = q.req;
            // The same admission gates as `serve_request`, applied
            // before the envelope may join the batch.
            if req.credential.class() != ticket.class() {
                let resp = Response::fail_all(req.ops.len(), StoreError::GuestTier);
                self.send_response(q.conn, q.id, &resp.results);
                stats.served += 1;
                continue;
            }
            if req.durability == DurabilityClass::Sync {
                let resp = self.serve_request(ticket, req);
                self.send_response(q.conn, q.id, &resp.results);
                stats.served += 1;
                continue;
            }
            req.retry_budget = req.retry_budget.min(self.cfg.wire_retry_budget_cap);
            req.credential = TierCredential::for_ticket(&self.batch_ticket);
            owners.push((q.conn, q.id, req.ops.len() as u64));
            reqs.push(req);
        }
        if reqs.is_empty() {
            return;
        }
        let started = Instant::now();
        let envelopes = reqs.len() as u64;
        let responses = self.dispatch_guest_batch(reqs);
        let ns = elapsed_ns(started);
        self.metrics.record_batch(envelopes);
        stats.batches += 1;
        for ((conn, id, ops), resp) in owners.into_iter().zip(responses) {
            self.metrics.record_request(false, ops, ns);
            self.send_response(conn, id, &resp.results);
            stats.served += 1;
        }
    }

    fn closed_count(&self) -> usize {
        self.conns.iter().filter(|c| matches!(c.state, ConnState::Closed)).count()
    }

    /// Extracts and handles every complete frame buffered on conn `i`.
    fn ingest_frames(
        &mut self,
        i: usize,
        stats: &mut PollStats,
        vip_q: &mut Vec<(usize, u64, Request)>,
        guest_q: &mut Vec<(usize, u64, Request)>,
    ) {
        loop {
            let payload = match self.conns[i].reader.next_payload() {
                Ok(Some(p)) => p,
                Ok(None) => return,
                Err(_) => {
                    self.close_conn(i, true);
                    return;
                }
            };
            self.metrics.record_frame_in();
            stats.frames += 1;
            let msg = match decode_message(&payload) {
                Ok(m) => m,
                Err(_) => {
                    self.close_conn(i, true);
                    return;
                }
            };
            match msg {
                Message::Hello(cred) => {
                    if matches!(self.conns[i].state, ConnState::Handshake) {
                        self.finish_handshake(i, cred);
                        if matches!(self.conns[i].state, ConnState::Closed) {
                            return;
                        }
                    } else {
                        // A second Hello is a protocol violation.
                        self.close_conn(i, true);
                        return;
                    }
                }
                Message::Request { id, req } => match &self.conns[i].state {
                    ConnState::Serving(t) => match t.class() {
                        ProgressClass::Vip => vip_q.push((i, id, req)),
                        ProgressClass::Guest => guest_q.push((i, id, req)),
                    },
                    // Requests before the handshake are a violation.
                    _ => {
                        self.close_conn(i, true);
                        return;
                    }
                },
                // Clients do not send responses.
                Message::Response { .. } => {
                    self.close_conn(i, true);
                    return;
                }
            }
        }
    }

    /// Admits (or refuses) a handshake credential on conn `i`.
    fn finish_handshake(&mut self, i: usize, cred: TierCredential) {
        match cred {
            TierCredential::Vip { token } => {
                let ticket = if self.cfg.vip_tokens.contains(&token) {
                    match self.vip_sessions.get(&token) {
                        Some(t) => Some(*t),
                        None => match self.store.admit_vip() {
                            Ok(t) => {
                                self.vip_sessions.insert(token, t);
                                Some(t)
                            }
                            Err(_) => None,
                        },
                    }
                } else {
                    None
                };
                match ticket {
                    Some(t) => {
                        self.conns[i].state = ConnState::Serving(t);
                        self.metrics.record_accept(true);
                    }
                    None => {
                        // Unknown token or VIP capacity exhausted: the
                        // credential does not grant the claimed tier.
                        self.metrics.record_deny(true);
                        self.send_response(i, 0, &[Err(StoreError::GuestTier)]);
                        self.close_conn(i, false);
                    }
                }
            }
            TierCredential::Guest => {
                let t = self.store.admit_guest();
                self.conns[i].state = ConnState::Serving(t);
                self.metrics.record_accept(false);
            }
        }
    }

    /// Accumulates HTTP bytes on conn `i`; answers and closes once the
    /// request head is complete.
    fn ingest_http(&mut self, i: usize, bytes: &[u8]) {
        let head = if let ConnState::Http(buf) = &mut self.conns[i].state {
            buf.extend_from_slice(bytes);
            find_subsequence(buf, b"\r\n\r\n")
                .map(|pos| String::from_utf8_lossy(&buf[..pos]).into_owned())
        } else {
            None
        };
        if let Some(head) = head {
            self.metrics.record_http_hit();
            let response = self.http_response(&head);
            self.conns[i].end.send(response.as_bytes());
            self.close_conn(i, false);
        }
    }

    fn http_response(&self, head: &str) -> String {
        let path = head.split_whitespace().nth(1).unwrap_or("");
        if path == "/metrics" {
            let body = encode_prometheus(&self.scrape());
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        } else {
            let body = "not found\n";
            format!(
                "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        }
    }

    /// Dispatches one admitted request under the connection's ticket.
    fn serve_request(&self, ticket: ClientTicket, mut req: Request) -> Response {
        // Frames cannot escalate: the request's claimed tier must match
        // what the handshake earned.
        if req.credential.class() != ticket.class() {
            return Response::fail_all(req.ops.len(), StoreError::GuestTier);
        }
        // The wire never reaches the blocking unbounded-retry arm.
        req.retry_budget = req.retry_budget.min(self.cfg.wire_retry_budget_cap);
        req.credential = TierCredential::for_ticket(&ticket);
        match (req.durability, ticket.class()) {
            (DurabilityClass::Sync, _) => self.dispatch_durable(ticket, req),
            (DurabilityClass::Group, ProgressClass::Vip) => self.dispatch_vip(ticket, req),
            (DurabilityClass::Group, ProgressClass::Guest) => self.dispatch_guest(ticket, req),
        }
    }

    /// The VIP serve path: a bounded number of the reactor's own steps
    /// from envelope to committed response — lint-verified down through
    /// [`apc_store::Client::request_vip`] and the store's port commit.
    #[progress(bounded_wait_free)]
    fn dispatch_vip(&self, ticket: ClientTicket, req: Request) -> Response {
        let started = Instant::now();
        let ops = req.ops.len() as u64;
        let mut client = self.store.client(ticket);
        let resp = client.request_vip(req);
        self.metrics.record_request(true, ops, elapsed_ns(started));
        resp
    }

    /// The guest serve path: obstruction-free, like the tier it serves.
    #[progress(obstruction_free)]
    fn dispatch_guest(&self, ticket: ClientTicket, req: Request) -> Response {
        let started = Instant::now();
        let ops = req.ops.len() as u64;
        let mut client = self.store.client(ticket);
        let resp = client.request_guest(req);
        self.metrics.record_request(false, ops, elapsed_ns(started));
        resp
    }

    /// The coalesced guest serve path: every batchable envelope
    /// dispatched this turn rides one store round under the server's own
    /// guest session — the store's batch planner turns N pipelined
    /// single-op envelopes into ~one log append per shard. Runs strictly
    /// after the VIP phase, so coalescing can delay other guests but
    /// never a VIP frame; obstruction-free like the tier it serves.
    #[progress(obstruction_free)]
    fn dispatch_guest_batch(&self, reqs: Vec<Request>) -> Vec<Response> {
        let mut client = self.store.client(self.batch_ticket);
        client.request_guest_many(reqs)
    }

    /// `Sync` durability fsyncs on the reactor thread — deliberately
    /// blocking, and VIP-gated by the store itself.
    #[progress(blocking)]
    fn dispatch_durable(&self, ticket: ClientTicket, req: Request) -> Response {
        let started = Instant::now();
        let vip = ticket.class() == ProgressClass::Vip;
        let ops = req.ops.len() as u64;
        let mut client = self.store.client(ticket);
        let resp = client.request(req);
        self.metrics.record_request(vip, ops, elapsed_ns(started));
        resp
    }

    fn send_response(&self, i: usize, id: u64, results: &[WireResult]) {
        let frame = encode_response(id, results);
        if self.conns[i].end.send(&frame) {
            self.metrics.record_frame_out();
        }
    }

    fn close_conn(&mut self, i: usize, fault: bool) {
        if matches!(self.conns[i].state, ConnState::Closed) {
            return;
        }
        if fault {
            self.metrics.record_codec_error();
        }
        self.conns[i].end.close();
        self.conns[i].state = ConnState::Closed;
        self.metrics.record_close();
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// A client-side convenience wrapper over one [`ConnEnd`]: correlation-id
/// bookkeeping plus frame reassembly. This is what the loadgen and tests
/// drive; it is intentionally dumb — no retries, no reconnects.
#[derive(Debug)]
pub struct NetClient {
    end: ConnEnd,
    reader: FrameReader,
    next_id: u64,
}

impl NetClient {
    /// Opens a connection on `server` and sends the `Hello` handshake.
    pub fn connect(server: &mut StoreServer<'_>, credential: TierCredential) -> NetClient {
        NetClient::from_end(server.connect(), credential)
    }

    /// Wraps an already-opened endpoint (for loadgen threads that receive
    /// their `ConnEnd`s from the reactor thread) and sends the handshake.
    pub fn from_end(end: ConnEnd, credential: TierCredential) -> NetClient {
        end.send(&encode_hello(&credential));
        NetClient { end, reader: FrameReader::new(), next_id: 1 }
    }

    /// Sends one request frame; returns its correlation id.
    pub fn send(&mut self, req: &Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.end.send(&encode_request(id, req));
        id
    }

    /// Drains every complete response currently buffered.
    pub fn drain(&mut self) -> Result<Vec<(u64, Vec<WireResult>)>, CodecError> {
        let mut raw = Vec::new();
        self.end.drain_into(&mut raw);
        self.reader.push(&raw);
        let mut out = Vec::new();
        while let Some(payload) = self.reader.next_payload()? {
            match decode_message(&payload)? {
                Message::Response { id, results } => out.push((id, results)),
                Message::Hello(_) => {
                    return Err(CodecError::UnknownDiscriminant {
                        what: "server frame kind",
                        found: crate::codec::KIND_HELLO,
                    })
                }
                Message::Request { .. } => {
                    return Err(CodecError::UnknownDiscriminant {
                        what: "server frame kind",
                        found: crate::codec::KIND_REQUEST,
                    })
                }
            }
        }
        Ok(out)
    }

    /// True once the server (or this side) hung up.
    pub fn is_closed(&self) -> bool {
        self.end.is_closed()
    }

    /// Hangs up.
    pub fn close(&self) {
        self.end.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_store::{StoreBuilder, StoreOp, StoreResp};

    fn server_fixture(store: &Store) -> StoreServer<'_> {
        // Legacy shed-same-turn semantics (`guest_queue_depth: 0`) keep
        // the overflow tests deterministic about *which turn* sheds.
        StoreServer::new(
            store,
            ServerConfig {
                vip_tokens: vec![7],
                guest_dispatch_per_poll: 4,
                guest_queue_depth: 0,
                ..ServerConfig::default()
            },
        )
    }

    #[test]
    fn handshake_then_request_roundtrip() {
        let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let mut vip = NetClient::connect(&mut server, TierCredential::Vip { token: 7 });
        vip.send(
            &Request::new(vec![StoreOp::Put("k".into(), 5), StoreOp::Get("k".into())])
                .credential(TierCredential::Vip { token: 7 }),
        );
        let stats = server.poll();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.shed, 0);
        let got = vip.drain().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1[1], Ok(StoreResp::Value(Some(5))));
    }

    #[test]
    fn unknown_vip_token_is_refused_with_guest_tier() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let mut intruder = NetClient::connect(&mut server, TierCredential::Vip { token: 999 });
        server.poll();
        let got = intruder.drain().unwrap();
        assert_eq!(got, vec![(0, vec![Err(StoreError::GuestTier)])]);
        assert!(intruder.is_closed());
        assert_eq!(
            server.metrics().scrape().value("store_net_conns_denied_total", &[("tier", "vip")]),
            Some(1)
        );
    }

    #[test]
    fn guest_overflow_is_shed_with_typed_429() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let mut guests: Vec<NetClient> =
            (0..6).map(|_| NetClient::connect(&mut server, TierCredential::Guest)).collect();
        for (n, g) in guests.iter_mut().enumerate() {
            g.send(&Request::new(vec![StoreOp::Put(format!("g/{n}"), n as u64)]));
        }
        let stats = server.poll();
        assert_eq!(stats.served, 4, "guest_dispatch_per_poll caps the turn");
        assert_eq!(stats.shed, 2);
        let mut shed_seen = 0;
        for g in &mut guests {
            for (_, results) in g.drain().unwrap() {
                if matches!(results[0], Err(StoreError::RetryBudgetExhausted { .. })) {
                    shed_seen += 1;
                } else {
                    assert!(results[0].is_ok());
                }
            }
        }
        assert_eq!(shed_seen, 2);
    }

    #[test]
    fn pipelined_guests_coalesce_into_one_batch() {
        let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
        // Default queue depth: the second wave waits in the backlog
        // instead of being shed same-turn.
        let mut server = StoreServer::new(
            &store,
            ServerConfig { guest_dispatch_per_poll: 4, ..ServerConfig::default() },
        );
        let mut guests: Vec<NetClient> =
            (0..4).map(|_| NetClient::connect(&mut server, TierCredential::Guest)).collect();
        for (n, g) in guests.iter_mut().enumerate() {
            g.send(&Request::new(vec![StoreOp::Put(format!("b/{n}"), n as u64)]));
            g.send(&Request::new(vec![StoreOp::Get(format!("b/{n}"))]));
        }
        // 8 envelopes, cap 4: the first turn serves one 4-envelope batch.
        let stats = server.poll();
        assert_eq!(stats.served, 4);
        assert_eq!(stats.batches, 1, "the turn's guests ride one coalesced dispatch");
        server.poll();
        for (n, g) in guests.iter_mut().enumerate() {
            let got = g.drain().unwrap();
            assert_eq!(got.len(), 2, "guest {n} got both responses");
            assert_eq!(got[0].1, vec![Ok(StoreResp::Value(None))], "Put acks");
            assert_eq!(got[1].1, vec![Ok(StoreResp::Value(Some(n as u64)))], "Get sees its Put");
        }
        let snap = server.metrics().scrape();
        assert_eq!(snap.value("store_net_batch_dispatches_total", &[]), Some(2));
        assert_eq!(snap.value("store_net_requests_total", &[("tier", "guest")]), Some(8));
    }

    #[test]
    fn expired_guest_frame_is_shed_pre_dispatch_as_deadline_exceeded() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let mut guest = NetClient::connect(&mut server, TierCredential::Guest);
        let mut vip = NetClient::connect(&mut server, TierCredential::Vip { token: 7 });
        // A zero deadline is expired on arrival — the guest frame must be
        // shed with the typed deadline error, never dispatched.
        guest.send(&Request::new(vec![StoreOp::Put("k".into(), 1)]).deadline_ms(0));
        // The VIP frame with the same zero deadline is still served:
        // VIP frames are never shed, never deadline-adjusted.
        vip.send(
            &Request::new(vec![StoreOp::Put("v".into(), 2)])
                .credential(TierCredential::Vip { token: 7 })
                .deadline_ms(0),
        );
        let stats = server.poll();
        assert_eq!(stats.deadline_shed, 1);
        assert_eq!(stats.shed, 0, "a deadline shed is not a 429");
        assert_eq!(stats.served, 1, "the VIP frame");
        let got = guest.drain().unwrap();
        assert_eq!(got[0].1, vec![Err(StoreError::DeadlineExceeded { deadline_ms: 0 })]);
        assert_eq!(vip.drain().unwrap()[0].1, vec![Ok(StoreResp::Value(None))]);
        let snap = server.metrics().scrape();
        assert_eq!(snap.value("store_net_deadline_shed_total", &[("tier", "guest")]), Some(1));
        assert_eq!(snap.value("store_net_deadline_shed_total", &[("tier", "vip")]), Some(0));
    }

    #[test]
    fn backlog_carries_guests_across_turns_up_to_depth() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = StoreServer::new(
            &store,
            ServerConfig {
                guest_dispatch_per_poll: 2,
                guest_queue_depth: 2,
                ..ServerConfig::default()
            },
        );
        let mut guests: Vec<NetClient> =
            (0..6).map(|_| NetClient::connect(&mut server, TierCredential::Guest)).collect();
        for (n, g) in guests.iter_mut().enumerate() {
            g.send(&Request::new(vec![StoreOp::Put(format!("q/{n}"), n as u64)]));
        }
        // Turn 1: 2 served, 2 queued, the 2 newest shed as 429.
        let stats = server.poll();
        assert_eq!((stats.served, stats.shed), (2, 2));
        assert_eq!(
            server.metrics().scrape().value("store_net_guest_queue_depth", &[]),
            Some(2),
            "the survivors wait in the backlog"
        );
        // Turn 2: the backlog drains — no new arrivals needed.
        let stats = server.poll();
        assert_eq!((stats.served, stats.shed), (2, 0));
        assert_eq!(server.metrics().scrape().value("store_net_guest_queue_depth", &[]), Some(0));
        let mut ok = 0;
        let mut shed = 0;
        for g in &mut guests {
            for (_, results) in g.drain().unwrap() {
                match &results[0] {
                    Ok(_) => ok += 1,
                    Err(StoreError::RetryBudgetExhausted { .. }) => shed += 1,
                    other => panic!("unexpected result: {other:?}"),
                }
            }
        }
        assert_eq!((ok, shed), (4, 2));
    }

    #[test]
    fn unbatched_dispatch_still_serves_pipelines() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = StoreServer::new(
            &store,
            ServerConfig { batch_guest_dispatch: false, ..ServerConfig::default() },
        );
        let mut guest = NetClient::connect(&mut server, TierCredential::Guest);
        guest.send(&Request::new(vec![StoreOp::Put("u".into(), 9)]));
        guest.send(&Request::new(vec![StoreOp::Get("u".into())]));
        let stats = server.poll();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.batches, 0);
        let got = guest.drain().unwrap();
        assert_eq!(got[1].1, vec![Ok(StoreResp::Value(Some(9)))]);
    }

    #[test]
    fn frames_cannot_escalate_tier() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let mut guest = NetClient::connect(&mut server, TierCredential::Guest);
        // A guest connection sending a VIP-credentialed request frame.
        guest.send(
            &Request::new(vec![StoreOp::Get("k".into())])
                .credential(TierCredential::Vip { token: 7 }),
        );
        server.poll();
        let got = guest.drain().unwrap();
        assert_eq!(got[0].1, vec![Err(StoreError::GuestTier)]);
    }

    #[test]
    fn http_metrics_endpoint_serves_merged_scrape() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let mut guest = NetClient::connect(&mut server, TierCredential::Guest);
        guest.send(&Request::new(vec![StoreOp::Put("k".into(), 1)]));
        server.poll();
        let probe = server.connect();
        probe.send(b"GET /metrics HTTP/1.1\r\nHost: sim\r\n\r\n");
        server.poll();
        let mut body = Vec::new();
        probe.drain_into(&mut body);
        let text = String::from_utf8(body).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
        assert!(text.contains("store_net_requests_total{tier=\"guest\"} 1"), "got: {text}");
        assert!(probe.is_closed(), "metrics probes are one-shot");
        // Unknown paths 404.
        let probe2 = server.connect();
        probe2.send(b"GET /nope HTTP/1.1\r\n\r\n");
        server.poll();
        let mut body2 = Vec::new();
        probe2.drain_into(&mut body2);
        assert!(String::from_utf8(body2).unwrap().starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn garbage_frames_fail_closed() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let raw = server.connect();
        raw.send(&[0xff; 64]);
        server.poll();
        assert!(raw.is_closed());
        assert_eq!(server.metrics().scrape().value("store_net_codec_errors_total", &[]), Some(1));
    }

    #[test]
    fn torn_tail_at_close_counts_as_codec_error() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let guest = NetClient::connect(&mut server, TierCredential::Guest);
        server.poll();
        // Send half a frame, then hang up.
        let frame = encode_request(9, &Request::new(vec![StoreOp::Get("k".into())]));
        guest.end.send(&frame[..frame.len() / 2]);
        guest.close();
        server.poll();
        assert_eq!(server.metrics().scrape().value("store_net_codec_errors_total", &[]), Some(1));
    }

    #[test]
    fn vip_sessions_are_reused_across_reconnects() {
        let store = StoreBuilder::new().shards(1).vip_capacity(1).build().unwrap();
        let mut server = server_fixture(&store);
        let a = NetClient::connect(&mut server, TierCredential::Vip { token: 7 });
        server.poll();
        a.close();
        server.poll();
        // VIP capacity is 1, yet the same token reconnects fine: the
        // session ticket is cached, not re-admitted.
        let mut b = NetClient::connect(&mut server, TierCredential::Vip { token: 7 });
        b.send(
            &Request::new(vec![StoreOp::Get("k".into())])
                .credential(TierCredential::Vip { token: 7 }),
        );
        let stats = server.poll();
        assert_eq!(stats.served, 1);
        assert_eq!(b.drain().unwrap().len(), 1);
    }
}
