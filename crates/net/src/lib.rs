//! # `apc-net` — the wire-protocol front-end for `apc-store`
//!
//! Puts the store's unified [`Request`](apc_store::Request)`→`
//! [`Response`](apc_store::Response) envelope on a wire: a length-prefixed
//! binary codec ([`codec`]), simulated in-memory connections ([`conn`] —
//! the offline stand-in for TCP), and a hand-rolled single-threaded
//! reactor ([`reactor`]) that multiplexes thousands of connections onto
//! the admission layer's asymmetric tiers.
//!
//! The design carries the paper's asymmetric progress guarantees across
//! the network boundary instead of flattening them:
//!
//! * **VIP isolation** — admission is keyed by connection credential
//!   (a token from [`ServerConfig::vip_tokens`]), each reactor turn
//!   serves *every* VIP request through a lint-verified
//!   `bounded_wait_free` dispatch path, and guest load can only add
//!   drain work, never make a VIP request wait on guest progress.
//! * **Backpressure as a value** — guest overload is shed with a typed
//!   [`StoreError::RetryBudgetExhausted`](apc_store::StoreError) response
//!   (the wire's 429), and every wire retry budget is clamped finite so
//!   the in-process API's blocking arm is unreachable from the network.
//! * **Fail-closed framing** — the codec mirrors the WAL's torn-tail
//!   policy: incomplete frames wait, structurally wrong frames (bad
//!   checksum, oversized prefix, unknown discriminant) poison the
//!   connection.
//!
//! The reactor's listener also answers plain `GET /metrics` with the
//! merged store + `store_net_*` Prometheus scrape (see `METRICS.md`), so
//! one simulated port serves both the binary protocol and observability.
//!
//! Protocol spec: `docs/WIRE.md`.
//!
//! ## Example
//!
//! ```
//! use apc_net::{NetClient, ServerConfig, StoreServer};
//! use apc_store::{Request, StoreBuilder, StoreOp, StoreResp, TierCredential};
//!
//! let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
//! let cfg = ServerConfig { vip_tokens: vec![0xfeed], ..ServerConfig::default() };
//! let mut server = StoreServer::new(&store, cfg);
//!
//! let vip = TierCredential::Vip { token: 0xfeed };
//! let mut client = NetClient::connect(&mut server, vip);
//! client.send(&Request::new(vec![
//!     StoreOp::Put("wire/1".into(), 11),
//!     StoreOp::Get("wire/1".into()),
//! ]).credential(vip));
//!
//! server.poll();
//! let responses = client.drain().unwrap();
//! assert_eq!(responses[0].1[1], Ok(StoreResp::Value(Some(11))));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod conn;
pub mod metrics;
pub mod reactor;

pub use codec::{
    decode_message, encode_hello, encode_request, encode_response, CodecError, FrameReader,
    Message, WireResult, MAX_WIRE_LIST, MAX_WIRE_PAYLOAD, WIRE_VERSION,
};
pub use conn::{sim_pair, ConnEnd};
pub use metrics::{NetMetrics, NET_LATENCY_NS_BOUNDS};
pub use reactor::{NetClient, PollStats, ServerConfig, StoreServer};
