//! Property tests for the wire codec: every encodable message roundtrips
//! bit-exactly, and *no* byte-level corruption ever decodes cleanly — the
//! adversarial half of the WAL-mirrored fail-closed policy.

use proptest::prelude::*;

use apc_net::{
    decode_message, encode_hello, encode_request, encode_response, CodecError, FrameReader,
    Message, WireResult, MAX_WIRE_PAYLOAD,
};
use apc_store::{DurabilityClass, Request, StoreError, StoreOp, StoreResp, TierCredential};

/// Decodes a generated tuple into an arbitrary operation (small key space,
/// arbitrary values — including empty and non-ASCII-adjacent keys).
fn decode_op(kind: u8, key: u8, val: u64) -> StoreOp {
    let k = match key % 4 {
        0 => String::new(),
        1 => format!("k/{key}"),
        2 => format!("π/{val}"), // multi-byte UTF-8 survives the wire
        _ => "x".repeat(usize::from(key % 32)),
    };
    match kind % 5 {
        0 => StoreOp::Get(k),
        1 => StoreOp::Put(k, val),
        2 => StoreOp::Remove(k),
        3 => StoreOp::Cas { key: k, expect: val.is_multiple_of(2).then_some(val / 2), new: val },
        _ => StoreOp::Scan { from: k, to: format!("z{val}") },
    }
}

fn decode_request(
    encoded: &[(u8, u8, u64)],
    cred: u8,
    durability: bool,
    deadline: Option<u32>,
    budget: u32,
) -> Request {
    let ops = encoded.iter().map(|(k, key, v)| decode_op(*k, *key, *v)).collect();
    let credential = if cred.is_multiple_of(2) {
        TierCredential::Guest
    } else {
        TierCredential::Vip { token: u64::from(cred) << 32 }
    };
    let mut req = Request::new(ops).credential(credential).retry_budget(budget);
    if durability {
        req = req.durability(DurabilityClass::Sync);
    }
    if let Some(ms) = deadline {
        req = req.deadline_ms(ms);
    }
    req
}

fn decode_result(tag: u8, a: u64, b: u64) -> WireResult {
    match tag % 9 {
        0 => Ok(StoreResp::Value(a.is_multiple_of(2).then_some(b))),
        1 => {
            Ok(StoreResp::Cas { ok: a.is_multiple_of(2), actual: b.is_multiple_of(2).then_some(a) })
        }
        2 => Ok(StoreResp::Entries(vec![(format!("e/{a}"), b)])),
        3 => Err(StoreError::Moved { epoch: a }),
        4 => Err(StoreError::GuestTier),
        5 => Err(StoreError::RetryBudgetExhausted { budget: a as u32 }),
        6 => Err(StoreError::Unavailable { version: a }),
        7 => Err(StoreError::DeadlineExceeded { deadline_ms: a as u32 }),
        _ => Err(StoreError::Corrupt { detail: format!("detail/{a}/{b}") }),
    }
}

/// One frame through the streaming reader.
fn reframe(frame: &[u8]) -> Vec<u8> {
    let mut reader = FrameReader::new();
    reader.push(frame);
    let payload = reader.next_payload().expect("well-formed").expect("complete");
    assert_eq!(reader.buffered(), 0, "one frame consumes exactly its bytes");
    payload
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests of arbitrary shape roundtrip bit-exactly.
    #[test]
    fn request_roundtrips(
        encoded in proptest::collection::vec((0u8..5, 0u8..=255, 0u64..1000), 0..12),
        id in 0u64..u64::MAX,
        cred in 0u8..=255,
        durability_tag in 0u8..2,
        deadline_tag in 0u8..2,
        deadline_ms in 0u32..100_000,
        budget in 0u32..=u32::MAX,
    ) {
        let deadline = (deadline_tag == 1).then_some(deadline_ms);
        let req = decode_request(&encoded, cred, durability_tag == 1, deadline, budget);
        let payload = reframe(&encode_request(id, &req));
        prop_assert_eq!(decode_message(&payload).unwrap(), Message::Request { id, req });
    }

    /// Responses roundtrip, with the legacy in-band rejections normalized
    /// to their consolidated error twins.
    #[test]
    fn response_roundtrips(
        encoded in proptest::collection::vec((0u8..9, 0u64..1000, 0u64..1000), 0..16),
        id in 0u64..u64::MAX,
    ) {
        let results: Vec<WireResult> =
            encoded.iter().map(|(t, a, b)| decode_result(*t, *a, *b)).collect();
        let payload = reframe(&encode_response(id, &results));
        let Message::Response { id: got_id, results: got } = decode_message(&payload).unwrap()
        else { panic!("expected a response") };
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, results);
    }

    /// The encode-side payload cap: no generated result set — including
    /// `Entries` bodies far beyond the cap — ever produces a frame the
    /// peer's decoder rejects. Oversized slots degrade to a typed
    /// `Corrupt { detail: "oversized..." }`; in-share slots are verbatim.
    #[test]
    fn encode_response_never_exceeds_the_payload_cap(
        encoded in proptest::collection::vec((0u8..9, 0u64..1000, 0u64..1000), 0..8),
        huge_positions in proptest::collection::vec(0usize..8, 0..3),
        entry_count in 1usize..60_000,
        id in 0u64..u64::MAX,
    ) {
        let mut results: Vec<WireResult> =
            encoded.iter().map(|(t, a, b)| decode_result(*t, *a, *b)).collect();
        for pos in huge_positions {
            if results.is_empty() { break; }
            let slot = pos % results.len();
            let entries = (0..entry_count)
                .map(|i| (format!("bulk/{i:06}/{}", "p".repeat(20)), i as u64))
                .collect();
            results[slot] = Ok(StoreResp::Entries(entries));
        }
        let frame = encode_response(id, &results);
        // The streaming reader is the peer's cap oracle: it must accept
        // the frame whole rather than failing closed on its length.
        let payload = reframe(&frame);
        prop_assert!(payload.len() <= MAX_WIRE_PAYLOAD as usize);
        let Message::Response { id: got_id, results: got } = decode_message(&payload).unwrap()
        else { panic!("expected a response") };
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got.len(), results.len());
        for (g, want) in got.iter().zip(&results) {
            let replaced =
                matches!(g, Err(StoreError::Corrupt { detail }) if detail.starts_with("oversized"));
            prop_assert!(g == want || replaced, "slot neither verbatim nor typed-oversized");
        }
    }

    /// Hello frames roundtrip for every credential shape.
    #[test]
    fn hello_roundtrips(cred in 0u8..=255, token in 0u64..u64::MAX) {
        let credential = if cred.is_multiple_of(2) {
            TierCredential::Guest
        } else {
            TierCredential::Vip { token }
        };
        let payload = reframe(&encode_hello(&credential));
        prop_assert_eq!(decode_message(&payload).unwrap(), Message::Hello(credential));
    }

    /// Adversarial single-byte corruption anywhere in a frame never
    /// decodes into a *different* clean message: it is caught by the
    /// checksum, a structural check, or (for length-prefix growth) held
    /// as an incomplete frame — never silently misdecoded.
    #[test]
    fn single_byte_corruption_fails_closed(
        encoded in proptest::collection::vec((0u8..5, 0u8..=255, 0u64..100), 1..6),
        pos_seed in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let req = decode_request(&encoded, 1, false, Some(9), 3);
        let clean = encode_request(5, &req);
        let mut frame = clean.clone();
        let pos = pos_seed % frame.len();
        frame[pos] ^= flip;

        let mut reader = FrameReader::new();
        reader.push(&frame);
        match reader.next_payload() {
            Err(_) => {} // oversized prefix or checksum mismatch: closed
            Ok(None) => {
                // The length prefix grew: the frame legitimately waits for
                // bytes that will never come — at stream close this is the
                // torn tail and fails closed.
                prop_assert!(reader.buffered() > 0);
            }
            Ok(Some(payload)) => {
                // The checksum cannot catch a flip confined to the length
                // prefix that still frames a checksummed payload — but
                // that can only *shrink* the frame, and the decoder then
                // fails on the truncated body or trailing bytes. A clean
                // decode must reproduce the original message exactly.
                match decode_message(&payload) {
                    Err(_) => {}
                    Ok(msg) => prop_assert_eq!(msg, Message::Request { id: 5, req }),
                }
            }
        }
    }

    /// Truncating a frame at any boundary is pending (never an error,
    /// never a partial decode) until the stream closes.
    #[test]
    fn truncation_is_pending(
        encoded in proptest::collection::vec((0u8..5, 0u8..=255, 0u64..100), 1..6),
        cut_seed in 0usize..10_000,
    ) {
        let frame = encode_request(1, &decode_request(&encoded, 0, false, None, 1));
        let cut = 1 + cut_seed % (frame.len() - 1);
        let mut reader = FrameReader::new();
        reader.push(&frame[..cut]);
        prop_assert_eq!(reader.next_payload().unwrap(), None);
        prop_assert!(reader.buffered() > 0, "torn tail stays visible");
        // Feeding the remainder completes the frame exactly.
        reader.push(&frame[cut..]);
        let payload = reader.next_payload().unwrap().expect("now complete");
        prop_assert!(decode_message(&payload).is_ok());
    }

    /// Arbitrary garbage never panics the decoder and never yields a
    /// frame whose claimed length exceeds the cap.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        match reader.next_payload() {
            Ok(Some(payload)) => {
                prop_assert!(payload.len() <= MAX_WIRE_PAYLOAD as usize);
                let _ = decode_message(&payload); // must not panic
            }
            Ok(None) => {}
            Err(e) => {
                let structural = matches!(
                    e,
                    CodecError::FrameTooLarge { .. } | CodecError::ChecksumMismatch
                );
                prop_assert!(structural, "unexpected stream error: {e}");
            }
        }
    }
}
