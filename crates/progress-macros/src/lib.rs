//! # `apc-progress-macros` — declared progress classes
//!
//! The paper attaches a *progress condition to each process*: VIP ports are
//! (bounded) wait-free, guests are obstruction-free. This crate makes the
//! corresponding *per-function* promises part of the source text:
//! [`macro@progress`] is an **inert** attribute that records which progress
//! class a function's implementation is claimed to provide.
//!
//! The attribute changes nothing about the annotated item — it validates its
//! argument and passes the item through untouched. The claims it records are
//! enforced *statically* by the `apc-lint` analyzer (see `crates/lint`),
//! which builds a call graph over the workspace and rejects, e.g., a
//! `wait_free` function that can transitively reach `Mutex::lock`.
//!
//! ## Classes
//!
//! In decreasing order of strength:
//!
//! | Class | Meaning |
//! |-------|---------|
//! | `wait_free` | terminates in a finite number of the caller's own steps |
//! | `bounded_wait_free` | wait-free with an a-priori bound on those steps |
//! | `lock_free` | some concurrent caller always makes progress |
//! | `obstruction_free` | terminates when run long enough in isolation |
//! | `blocking` | may wait on other processes indefinitely (by design) |
//!
//! ## Example
//!
//! ```
//! use apc_progress_macros::progress;
//!
//! #[progress(wait_free)]
//! fn decide(slot: &std::sync::atomic::AtomicU64, v: u64) -> u64 {
//!     match slot.compare_exchange(
//!         0,
//!         v,
//!         std::sync::atomic::Ordering::AcqRel,
//!         std::sync::atomic::Ordering::Acquire,
//!     ) {
//!         Ok(_) => v,
//!         Err(prev) => prev,
//!     }
//! }
//! assert_eq!(decide(&std::sync::atomic::AtomicU64::new(0), 7), 7);
//! ```
//!
//! An unknown class is rejected at compile time:
//!
//! ```compile_fail
//! use apc_progress_macros::progress;
//!
//! #[progress(sometimes_fast)]
//! fn nope() {}
//! ```

use proc_macro::{TokenStream, TokenTree};

/// The classes accepted by [`macro@progress`], strongest first.
const CLASSES: [&str; 5] =
    ["wait_free", "bounded_wait_free", "lock_free", "obstruction_free", "blocking"];

/// Declares the progress class of a function (or other item).
///
/// Takes exactly one argument, one of `wait_free`, `bounded_wait_free`,
/// `lock_free`, `obstruction_free`, or `blocking`. The item itself is
/// emitted unchanged; the annotation is consumed by the `apc-lint` static
/// analyzer, which checks the declared classes against the workspace call
/// graph.
#[proc_macro_attribute]
pub fn progress(attr: TokenStream, item: TokenStream) -> TokenStream {
    match validate(attr) {
        Ok(()) => item,
        Err(msg) => {
            // Emit the error *and* the original item, so downstream name
            // resolution still sees the function and reports only one error.
            let error: TokenStream =
                format!("::core::compile_error!({msg:?});").parse().expect("valid error tokens");
            error.into_iter().chain(item).collect()
        }
    }
}

/// Checks that the attribute argument is exactly one known class identifier.
fn validate(attr: TokenStream) -> Result<(), String> {
    let mut trees = attr.into_iter();
    let first = trees.next();
    let rest = trees.next();
    match (first, rest) {
        (Some(TokenTree::Ident(ident)), None) => {
            let name = ident.to_string();
            if CLASSES.contains(&name.as_str()) {
                Ok(())
            } else {
                Err(format!(
                    "unknown progress class `{name}`; expected one of: {}",
                    CLASSES.join(", ")
                ))
            }
        }
        (None, _) => Err(format!(
            "#[progress(..)] needs exactly one class argument; expected one of: {}",
            CLASSES.join(", ")
        )),
        _ => Err(format!(
            "#[progress(..)] takes exactly one class argument; expected one of: {}",
            CLASSES.join(", ")
        )),
    }
}
