//! # `apc-obs` — wait-free observability primitives
//!
//! Hand-rolled, offline Prometheus-style metrics for a system whose whole
//! point is **asymmetric progress guarantees**: a scrape that touched a
//! consensus log or a blocking primitive would let a dashboard poller
//! steal progress from wait-free VIP clients, so every record and read
//! path here is a bounded number of the caller's own atomic steps — no
//! locks, no channels, no retry loops whose length depends on other
//! threads.
//!
//! Three instrument kinds, mirroring the Prometheus data model:
//!
//! * [`Counter`] — a monotone event count (one `fetch_add`);
//! * [`Gauge`] — a last-write-wins level (one `store`);
//! * [`FixedHistogram`] — a fixed-bucket distribution: the bucket bounds
//!   are chosen at construction time, so an [`FixedHistogram::observe`]
//!   is a bounded scan over a compile-time-small bounds slice plus three
//!   `fetch_add`s. No resizing, no quantile sketch, no allocation on the
//!   record path.
//!
//! Reads ([`Counter::get`], [`FixedHistogram::snapshot`], …) are equally
//! wait-free and *torn-tolerant by design*: a snapshot taken while writers
//! are racing may observe bucket counts from slightly different instants
//! (each component is individually monotone), exactly like any live
//! Prometheus scrape. Nothing here ever blocks a writer to get a
//! consistent cut — consistency is the job of the store's
//! `SwmrSnapshot`-based digest path, which feeds these instruments.
//!
//! [`MetricsSnapshot`] is the scrape output — a flat list of [`Sample`]s —
//! and [`encode_prometheus`] renders it in the Prometheus text exposition
//! format for `examples/store_bench.rs` and any future network front-end.
//!
//! Every fn on the record/read path is annotated `#[progress(wait_free)]`
//! and the workspace's `apc-lint --deny` gate mechanically proves none of
//! them reaches a blocking primitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use apc_progress_macros::progress;

/// A monotone event counter (Prometheus `counter`).
///
/// # Examples
///
/// ```
/// use apc_obs::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(2);
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one event: a single `fetch_add`.
    #[progress(wait_free)]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events: a single `fetch_add`.
    #[progress(wait_free)]
    pub fn add(&self, n: u64) {
        // RELAXED: monotone event counter — scrapes need atomicity, not
        // cross-thread ordering against the events being counted.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count: a single atomic load.
    #[progress(wait_free)]
    pub fn get(&self) -> u64 {
        // RELAXED: reading a monotone counter; no ordering obligations.
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level (Prometheus `gauge`).
///
/// # Examples
///
/// ```
/// use apc_obs::Gauge;
/// let g = Gauge::new();
/// g.set(7);
/// assert_eq!(g.get(), 7);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge { value: AtomicU64::new(0) }
    }

    /// Sets the level: a single atomic store.
    #[progress(wait_free)]
    pub fn set(&self, v: u64) {
        // RELAXED: last-write-wins level; scrapes read whatever the most
        // recent publication was, no ordering obligations.
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current level: a single atomic load.
    #[progress(wait_free)]
    pub fn get(&self) -> u64 {
        // RELAXED: see `set`.
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram (Prometheus `histogram`).
///
/// Bucket upper bounds are fixed at construction, so the record path is a
/// bounded scan over a small slice plus three `fetch_add`s — wait-free by
/// construction, never an allocation. Values above the last bound land in
/// the implicit `+Inf` bucket.
///
/// # Examples
///
/// ```
/// use apc_obs::FixedHistogram;
/// let h = FixedHistogram::new(&[10, 100]);
/// h.observe(5);
/// h.observe(50);
/// h.observe(5000); // +Inf bucket
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 3);
/// assert_eq!(snap.sum, 5055);
/// assert_eq!(snap.buckets, vec![1, 1, 1]);
/// ```
#[derive(Debug)]
pub struct FixedHistogram {
    /// Strictly increasing upper bounds; the `+Inf` bucket is implicit.
    bounds: Vec<u64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl FixedHistogram {
    /// A histogram over `bounds` (strictly increasing upper bucket
    /// bounds; the `+Inf` bucket is added implicitly).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing (a construction-time
    /// configuration error, never a runtime one).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must strictly increase");
        FixedHistogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation: a bounded bounds scan + three `fetch_add`s.
    #[progress(wait_free)]
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        // RELAXED: monotone histogram components; a scrape may see the three
        // updates at slightly different instants (torn-tolerant by design,
        // like any live Prometheus scrape) — monotonicity is all it needs.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // RELAXED: see above.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // RELAXED: see above.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The configured bucket upper bounds (exclusive of the implicit
    /// `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// A point-in-time read of every component (individually monotone;
    /// the cut across components is not atomic — see the module docs).
    #[progress(wait_free)]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            // RELAXED: reading monotone components; no ordering needed.
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            // RELAXED: see above.
            sum: self.sum.load(Ordering::Relaxed),
            // RELAXED: see above.
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// The frozen state of a [`FixedHistogram`] at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds, one per non-`+Inf` bucket.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` slots; the last
    /// is the `+Inf` overflow bucket). **Not** cumulative — the encoder
    /// accumulates for the Prometheus `le` convention.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

/// The value of one exported sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// A monotone count.
    Counter(u64),
    /// A last-write-wins level.
    Gauge(u64),
    /// A bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// One exported series sample: a metric name, its label set, and a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (Prometheus conventions: `snake_case`, unit-suffixed).
    pub name: &'static str,
    /// One-line help text for the `# HELP` exposition line.
    pub help: &'static str,
    /// Label pairs, e.g. `[("tier", "vip".into())]`.
    pub labels: Vec<(&'static str, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// A scrape result: a flat list of samples, ready for
/// [`encode_prometheus`].
///
/// # Examples
///
/// ```
/// use apc_obs::{encode_prometheus, MetricsSnapshot, Sample, SampleValue};
/// let snap = MetricsSnapshot {
///     samples: vec![Sample {
///         name: "requests_total",
///         help: "Requests served.",
///         labels: vec![("tier", "vip".into())],
///         value: SampleValue::Counter(3),
///     }],
/// };
/// let text = encode_prometheus(&snap);
/// assert!(text.contains("requests_total{tier=\"vip\"} 3"));
/// assert_eq!(snap.value("requests_total", &[("tier", "vip")]), Some(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All samples, in export order.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Appends every sample of `other` (for composing scrapes from
    /// several sources, e.g. a store and its persister).
    #[progress(wait_free)]
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.samples.extend(other.samples);
    }

    /// Looks up the scalar value of the sample named `name` whose label
    /// set contains every pair in `labels` (counter and gauge samples
    /// only; histograms answer `None`). The first match wins.
    #[progress(wait_free)]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .find(|s| {
                labels.iter().all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .and_then(|s| match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => Some(*v),
                SampleValue::Histogram(_) => None,
            })
    }

    /// Looks up the histogram sample named `name` whose label set
    /// contains every pair in `labels`.
    #[progress(wait_free)]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .find(|s| {
                labels.iter().all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .and_then(|s| match &s.value {
                SampleValue::Histogram(h) => Some(h),
                _ => None,
            })
    }
}

/// Renders a label set as `{k="v",…}` (empty string for no labels), with
/// Prometheus text-format escaping of label values.
fn encode_labels(out: &mut String, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (*k, v.as_str())).chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Encodes a scrape in the Prometheus text exposition format.
///
/// Samples sharing a name are grouped under one `# HELP`/`# TYPE` header
/// (first occurrence's order and help text win); histograms expand into
/// the conventional cumulative `_bucket{le=…}` series plus `_sum` and
/// `_count`.
#[progress(wait_free)]
pub fn encode_prometheus(snap: &MetricsSnapshot) -> String {
    // Group by name in first-seen order.
    let mut order: Vec<&'static str> = Vec::new();
    for s in &snap.samples {
        if !order.contains(&s.name) {
            order.push(s.name);
        }
    }
    let mut out = String::new();
    for name in order {
        let group: Vec<&Sample> = snap.samples.iter().filter(|s| s.name == name).collect();
        let first = match group.first() {
            Some(f) => f,
            None => continue,
        };
        let kind = match first.value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        };
        let _ = writeln!(out, "# HELP {name} {}", first.help);
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for s in group {
            match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    out.push_str(name);
                    encode_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &bucket) in h.buckets.iter().enumerate() {
                        cumulative += bucket;
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = write!(out, "{name}_bucket");
                        encode_labels(&mut out, &s.labels, Some(("le", &le)));
                        let _ = writeln!(out, " {cumulative}");
                    }
                    let _ = write!(out, "{name}_sum");
                    encode_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.sum);
                    let _ = write!(out, "{name}_count");
                    encode_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        let g = Gauge::new();
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(7);
        assert_eq!(g.get(), 7, "gauges are last-write-wins, not monotone");
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = FixedHistogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 101, 1000, 1001, 9999] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // ≤10: {1,10}; ≤100: {11,100}; ≤1000: {101,1000}; +Inf: {1001,9999}.
        assert_eq!(snap.buckets, vec![2, 2, 2, 2]);
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 1 + 10 + 11 + 100 + 101 + 1000 + 1001 + 9999);
    }

    #[test]
    fn histogram_is_exact_under_contention() {
        let h = FixedHistogram::new(&[8]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..500 {
                        h.observe(if (t + i) % 2 == 0 { 1 } else { 100 });
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 2000);
        assert_eq!(snap.buckets[0] + snap.buckets[1], 2000);
        assert_eq!(snap.buckets[0], 1000);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = FixedHistogram::new(&[10, 10]);
    }

    #[test]
    fn encode_groups_types_and_accumulates_buckets() {
        let h = FixedHistogram::new(&[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let snap = MetricsSnapshot {
            samples: vec![
                Sample {
                    name: "x_total",
                    help: "Events.",
                    labels: vec![("tier", "vip".into())],
                    value: SampleValue::Counter(3),
                },
                Sample {
                    name: "x_total",
                    help: "Events.",
                    labels: vec![("tier", "guest".into())],
                    value: SampleValue::Counter(4),
                },
                Sample {
                    name: "lat_ns",
                    help: "Latency.",
                    labels: Vec::new(),
                    value: SampleValue::Histogram(h.snapshot()),
                },
            ],
        };
        let text = encode_prometheus(&snap);
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1, "one header per name");
        assert!(text.contains("x_total{tier=\"vip\"} 3"));
        assert!(text.contains("x_total{tier=\"guest\"} 4"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 2"), "buckets are cumulative");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 555"));
        assert!(text.contains("lat_ns_count 3"));
    }

    #[test]
    fn encode_escapes_label_values() {
        let snap = MetricsSnapshot {
            samples: vec![Sample {
                name: "m",
                help: "h",
                labels: vec![("k", "a\"b\\c\nd".into())],
                value: SampleValue::Gauge(1),
            }],
        };
        let text = encode_prometheus(&snap);
        assert!(text.contains(r#"m{k="a\"b\\c\nd"} 1"#), "got: {text}");
    }

    #[test]
    fn snapshot_lookup_and_merge() {
        let mut a = MetricsSnapshot {
            samples: vec![Sample {
                name: "n",
                help: "h",
                labels: vec![("shard", "0".into())],
                value: SampleValue::Counter(5),
            }],
        };
        let b = MetricsSnapshot {
            samples: vec![Sample {
                name: "n",
                help: "h",
                labels: vec![("shard", "1".into())],
                value: SampleValue::Gauge(9),
            }],
        };
        a.merge(b);
        assert_eq!(a.value("n", &[("shard", "0")]), Some(5));
        assert_eq!(a.value("n", &[("shard", "1")]), Some(9));
        assert_eq!(a.value("n", &[("shard", "2")]), None);
        assert_eq!(a.value("missing", &[]), None);
    }
}
