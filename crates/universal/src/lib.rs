//! # `apc-universal` — what consensus buys you
//!
//! Herlihy's universality theorem (reference \[7\] of the paper) says any
//! object with a sequential specification has a wait-free implementation
//! from consensus objects and registers. This crate implements that
//! construction and — the novel twist enabled by *asymmetric progress
//! conditions* — parameterizes it by the **consensus factory**:
//!
//! * plug in wait-free (`CasConsensus`) cells → the classic wait-free
//!   universal object;
//! * plug in `(n,x)`-live (`AsymmetricConsensus`) cells → an `(n,x)`-live
//!   universal object: operations by the `x` privileged processes are
//!   wait-free, everyone else is obstruction-free. This is the constructive
//!   reading of the paper's hierarchy (Theorem 3): `x+1` matters because it
//!   bounds which *groups of processes* can be given hard guarantees.
//!
//! The construction is the standard announce-and-help log: operations are
//! placed into a linked list of cells, each cell's order decided by one
//! consensus instance; helping (cell `k` prefers the announcement of
//! process `k mod n`) makes placement wait-free whenever the cell consensus
//! is.
//!
//! The log additionally supports **checkpoint cells**
//! ([`Handle::checkpoint`]): any port can seal its fully-replayed state
//! through the same consensus path, after which fresh handles bootstrap
//! from the sealed state and replay only the post-checkpoint suffix
//! (O(delta) instead of O(history)), the retired prefix becomes
//! reclaimable, and a persistence layer can rebuild the object from a
//! durable snapshot via [`Universal::recovered`]; and **reconfig cells**
//! ([`Handle::reconfigure`]): an operation that also seals the state after
//! itself, so a service layer can linearize a live reconfiguration (e.g. a
//! shard-topology bump) against concurrent operations in one agreed cell.
//!
//! ## Example
//!
//! ```
//! use apc_universal::{seq::Counter, Universal, CasFactory};
//! use apc_core::liveness::Liveness;
//!
//! let obj = Universal::new(Counter, CasFactory::new(Liveness::new_first_n(2, 2)), 2);
//! let mut h0 = obj.handle(0).unwrap();
//! let mut h1 = obj.handle(1).unwrap();
//! h0.apply(apc_universal::seq::CounterOp::Add(2));
//! h1.apply(apc_universal::seq::CounterOp::Add(3));
//! assert_eq!(h1.apply(apc_universal::seq::CounterOp::Get), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod seq;

mod factory;
mod herlihy;

pub use factory::{AsymmetricFactory, CasFactory, ConsensusFactory};
pub use herlihy::{
    CheckpointRecord, Handle, LogRecord, LogRecordOf, OpRecord, OwnedHandle, ReconfigRecord,
    Universal, UniversalError,
};
