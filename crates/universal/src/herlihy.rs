//! The announce-and-help universal construction (Herlihy [7]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use apc_core::error::ConsensusError;
use apc_core::consensus::Consensus;
use apc_registers::AtomicCell;

use crate::factory::ConsensusFactory;
use crate::seq::SequentialSpec;

/// Errors of the universal object.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UniversalError {
    /// The process index is not a port of the underlying consensus spec.
    NotAPort {
        /// The offending process index.
        pid: usize,
    },
    /// A handle for this process was already taken (one handle per process).
    HandleTaken {
        /// The offending process index.
        pid: usize,
    },
}

impl fmt::Display for UniversalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniversalError::NotAPort { pid } => {
                write!(f, "process {pid} is not a port of the universal object")
            }
            UniversalError::HandleTaken { pid } => {
                write!(f, "a handle for process {pid} already exists")
            }
        }
    }
}

impl std::error::Error for UniversalError {}

/// An operation stamped with its invoker and per-invoker sequence number —
/// the value the per-cell consensus objects agree on.
///
/// Appears in the [`ConsensusFactory`] bound of [`Universal`]; its fields
/// are an implementation detail.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpRecord<O> {
    pid: u8,
    seq: u64,
    op: O,
}

/// A per-process announcement: "my operation `seq` is `op`, please help".
#[derive(Clone, PartialEq, Eq, Debug)]
struct Announce<O> {
    seq: u64,
    op: O,
}

/// One cell of the operation log.
struct CellNode<O, C> {
    cons: C,
    next: AtomicCell<Arc<CellNode<O, C>>>,
    _marker: std::marker::PhantomData<O>,
}

impl<O, C> CellNode<O, C> {
    fn new(cons: C) -> Self {
        CellNode { cons, next: AtomicCell::new(), _marker: std::marker::PhantomData }
    }
}

/// A linearizable shared object built from a sequential specification and a
/// consensus factory (see the crate docs).
///
/// Operations go through per-process [`Handle`]s (one per process index),
/// which carry the replayed local copy of the state.
pub struct Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    spec: S,
    factory: F,
    n: usize,
    announce: Vec<AtomicCell<Announce<S::Op>>>,
    head: Arc<CellNode<S::Op, F::Object>>,
    handles: AtomicU64,
}

/// The record type agreed on by each log cell for spec `S`.
///
/// (Public in the factory bound, opaque otherwise.)
pub type OpRecordOf<S> = OpRecord<<S as SequentialSpec>::Op>;

impl<S, F> Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    /// Creates a universal object for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn new(spec: S, factory: F, n: usize) -> Self {
        assert!((1..=64).contains(&n), "n must be in 1..=64");
        let head = Arc::new(CellNode::new(factory.create()));
        Universal {
            spec,
            factory,
            n,
            announce: (0..n).map(|_| AtomicCell::new()).collect(),
            head,
            handles: AtomicU64::new(0),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Claims the port bit for `pid` and builds its initial replay state.
    fn take_port(&self, pid: usize) -> Result<Replay<S, F::Object>, UniversalError> {
        if pid >= self.n || !self.factory.spec().is_port(pid) {
            return Err(UniversalError::NotAPort { pid });
        }
        let bit = 1u64 << pid;
        if self.handles.fetch_or(bit, Ordering::AcqRel) & bit != 0 {
            return Err(UniversalError::HandleTaken { pid });
        }
        Ok(Replay {
            pid,
            seq: 0,
            cursor: Arc::clone(&self.head),
            cell_index: 0,
            state: self.spec.init(),
            applied: vec![0; self.n],
        })
    }

    /// Takes the (unique) operation handle for process `pid`.
    ///
    /// # Errors
    ///
    /// * [`UniversalError::NotAPort`] if `pid` is not a port of the
    ///   factory's liveness spec;
    /// * [`UniversalError::HandleTaken`] if the handle was already taken.
    pub fn handle(&self, pid: usize) -> Result<Handle<'_, S, F>, UniversalError> {
        Ok(Handle { obj: self, replay: self.take_port(pid)? })
    }

    /// Takes the (unique) handle for process `pid` as an owned value keeping
    /// the object alive through an [`Arc`].
    ///
    /// This is the form service layers want: the handle can be stored next
    /// to (or instead of) the object without borrowing it, e.g. in a pool of
    /// per-port slots.
    ///
    /// # Errors
    ///
    /// Same as [`Universal::handle`].
    pub fn owned_handle(self: &Arc<Self>, pid: usize) -> Result<OwnedHandle<S, F>, UniversalError> {
        Ok(OwnedHandle { obj: Arc::clone(self), replay: self.take_port(pid)? })
    }
}

impl<S, F> fmt::Debug for Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Universal").field("n", &self.n).finish()
    }
}

/// The per-port replay state shared by [`Handle`] and [`OwnedHandle`]: the
/// cursor into the operation log and the local state replica.
struct Replay<S, C>
where
    S: SequentialSpec,
{
    pid: usize,
    /// Sequence number of my most recent operation.
    seq: u64,
    /// The next undecided-or-unapplied cell.
    cursor: Arc<CellNode<S::Op, C>>,
    cell_index: u64,
    /// Local replayed state.
    state: S::State,
    /// `applied[p]` = highest sequence number of `p` applied so far.
    applied: Vec<u64>,
}

impl<S, F> Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    /// Applies `op` through the given replay state (the shared body of
    /// [`Handle::apply`] and [`OwnedHandle::apply`]).
    fn apply_through(&self, replay: &mut Replay<S, F::Object>, op: S::Op) -> S::Resp {
        replay.seq += 1;
        let my_seq = replay.seq;
        self.announce[replay.pid].store(Announce { seq: my_seq, op: op.clone() });
        loop {
            let decided = self.decide_current_cell(replay, &op, my_seq);
            // Apply the decided operation to the local replica.
            let resp = self.spec.apply(&mut replay.state, &decided.op);
            replay.applied[decided.pid as usize] = decided.seq;
            self.advance(replay);
            if decided.pid as usize == replay.pid && decided.seq == my_seq {
                return resp;
            }
        }
    }

    /// Produces (or learns) the decision of the cursor cell.
    fn decide_current_cell(
        &self,
        replay: &Replay<S, F::Object>,
        my_op: &S::Op,
        my_seq: u64,
    ) -> OpRecord<S::Op> {
        if let Some(d) = replay.cursor.cons.peek() {
            return d;
        }
        // Helping rule: cell k prefers the announcement of process k mod n,
        // if it is pending (announced and not yet applied in my replay —
        // which is exact for all cells before this one).
        let slot = (replay.cell_index as usize) % self.n;
        let candidate = self.announce[slot]
            .load()
            .filter(|a| a.seq > replay.applied[slot])
            .map(|a| OpRecord { pid: slot as u8, seq: a.seq, op: a.op });
        let proposal = match candidate {
            Some(rec) => rec,
            None => OpRecord { pid: replay.pid as u8, seq: my_seq, op: my_op.clone() },
        };
        match replay.cursor.cons.propose(replay.pid, proposal) {
            Ok(decided) => decided,
            Err(ConsensusError::AlreadyProposed { .. }) => replay
                .cursor
                .cons
                .peek()
                .expect("a proposed-to cell that rejects re-proposals has decided"),
            Err(ConsensusError::NotAPort { pid }) => {
                unreachable!("handle creation verified port membership for {pid}")
            }
        }
    }

    /// Moves the cursor to the next cell, creating it if necessary.
    fn advance(&self, replay: &mut Replay<S, F::Object>) {
        let next = replay
            .cursor
            .next
            .load_or_init(|| Arc::new(CellNode::new(self.factory.create())));
        replay.cursor = next;
        replay.cell_index += 1;
    }
}

/// A per-process handle on a [`Universal`] object.
///
/// Holds the process's replay cursor and local state copy; `apply` is
/// linearizable across handles, with the progress condition of the
/// underlying consensus factory (wait-free for the factory's wait-free set,
/// obstruction-free for the rest).
pub struct Handle<'a, S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    obj: &'a Universal<S, F>,
    replay: Replay<S, F::Object>,
}

impl<S, F> Handle<'_, S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    /// The process this handle belongs to.
    pub fn pid(&self) -> usize {
        self.replay.pid
    }

    /// Applies `op` to the shared object, returning its response at its
    /// linearization point.
    ///
    /// Progress: wait-free if `pid` is in the factory's wait-free set
    /// (placement within ~2·n cells by the helping rule); otherwise
    /// obstruction-free.
    pub fn apply(&mut self, op: S::Op) -> S::Resp {
        self.obj.apply_through(&mut self.replay, op)
    }

    /// The number of log cells this handle has replayed.
    pub fn replayed_cells(&self) -> u64 {
        self.replay.cell_index
    }

    /// Read-only access to the local replica (exact as of the last `apply`).
    pub fn local_state(&self) -> &S::State {
        &self.replay.state
    }
}

impl<S, F> fmt::Debug for Handle<'_, S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Handle")
            .field("pid", &self.replay.pid)
            .field("replayed_cells", &self.replay.cell_index)
            .finish()
    }
}

/// An owned per-process handle keeping its [`Universal`] object alive.
///
/// Identical to [`Handle`] except that it co-owns the object through an
/// [`Arc`], so it can be stored in long-lived structures (port pools,
/// per-client sessions) without a borrow. Created by
/// [`Universal::owned_handle`].
pub struct OwnedHandle<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    obj: Arc<Universal<S, F>>,
    replay: Replay<S, F::Object>,
}

impl<S, F> OwnedHandle<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    /// The process this handle belongs to.
    pub fn pid(&self) -> usize {
        self.replay.pid
    }

    /// Applies `op` to the shared object; see [`Handle::apply`].
    pub fn apply(&mut self, op: S::Op) -> S::Resp {
        self.obj.apply_through(&mut self.replay, op)
    }

    /// The number of log cells this handle has replayed.
    pub fn replayed_cells(&self) -> u64 {
        self.replay.cell_index
    }

    /// Read-only access to the local replica (exact as of the last `apply`).
    pub fn local_state(&self) -> &S::State {
        &self.replay.state
    }

    /// The shared object this handle operates on.
    pub fn object(&self) -> &Arc<Universal<S, F>> {
        &self.obj
    }
}

impl<S, F> fmt::Debug for OwnedHandle<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<OpRecordOf<S>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OwnedHandle")
            .field("pid", &self.replay.pid)
            .field("replayed_cells", &self.replay.cell_index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{AsymmetricFactory, CasFactory};
    use crate::seq::{Counter, CounterOp, KvOp, KvStore, Queue, QueueOp};
    use apc_core::liveness::Liveness;
    use std::sync::Mutex;

    fn wait_free_counter(n: usize) -> Universal<Counter, CasFactory> {
        Universal::new(Counter, CasFactory::new(Liveness::new_first_n(n, n)), n)
    }

    #[test]
    fn sequential_counter() {
        let obj = wait_free_counter(2);
        let mut h = obj.handle(0).unwrap();
        assert_eq!(h.apply(CounterOp::Add(5)), 5);
        assert_eq!(h.apply(CounterOp::Add(5)), 10);
        assert_eq!(h.apply(CounterOp::Get), 10);
        assert_eq!(h.replayed_cells(), 3);
    }

    #[test]
    fn two_handles_see_each_other() {
        let obj = wait_free_counter(2);
        let mut h0 = obj.handle(0).unwrap();
        let mut h1 = obj.handle(1).unwrap();
        h0.apply(CounterOp::Add(1));
        h1.apply(CounterOp::Add(2));
        assert_eq!(h0.apply(CounterOp::Get), 3);
    }

    #[test]
    fn one_handle_per_pid() {
        let obj = wait_free_counter(2);
        let _h = obj.handle(0).unwrap();
        assert_eq!(obj.handle(0).unwrap_err(), UniversalError::HandleTaken { pid: 0 });
        assert_eq!(obj.handle(9).unwrap_err(), UniversalError::NotAPort { pid: 9 });
    }

    #[test]
    fn concurrent_counter_total_is_exact() {
        // n−1 workers increment concurrently; a late reader must observe the
        // exact total (no lost updates).
        let n = 6;
        let per_thread = 50;
        let obj = wait_free_counter(n);
        std::thread::scope(|s| {
            for pid in 0..n - 1 {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for _ in 0..per_thread {
                        h.apply(CounterOp::Add(1));
                    }
                });
            }
        });
        let mut late = obj.handle(n - 1).unwrap();
        assert_eq!(late.apply(CounterOp::Get), ((n - 1) * per_thread) as u64);
    }

    #[test]
    fn queue_is_fifo_under_concurrency() {
        // Concurrent enqueues then a drain: the drain must see every element
        // exactly once, and per-producer subsequences must stay ordered.
        let n = 4;
        let per_thread = 25u64;
        let obj = Universal::new(Queue, CasFactory::new(Liveness::new_first_n(n, n)), n);
        std::thread::scope(|s| {
            for pid in 0..n - 1 {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for i in 0..per_thread {
                        h.apply(QueueOp::Enqueue(pid as u64 * 1000 + i));
                    }
                });
            }
        });
        let mut consumer = obj.handle(n - 1).unwrap();
        let mut seen: Vec<u64> = Vec::new();
        while let Some(v) = consumer.apply(QueueOp::Dequeue) {
            seen.push(v);
        }
        assert_eq!(seen.len(), (n - 1) * per_thread as usize);
        // Per-producer order is preserved.
        for pid in 0..(n - 1) as u64 {
            let mine: Vec<u64> = seen.iter().copied().filter(|v| v / 1000 == pid).collect();
            let mut sorted = mine.clone();
            sorted.sort_unstable();
            assert_eq!(mine, sorted, "producer {pid} order violated");
        }
    }

    #[test]
    fn kv_store_linearizes_puts() {
        let n = 4;
        let obj = Universal::new(KvStore, CasFactory::new(Liveness::new_first_n(n, n)), n);
        std::thread::scope(|s| {
            for pid in 0..n - 1 {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    h.apply(KvOp::Put(format!("k{pid}"), pid as u64));
                });
            }
        });
        let mut reader = obj.handle(n - 1).unwrap();
        for pid in 0..n - 1 {
            assert_eq!(reader.apply(KvOp::Get(format!("k{pid}"))), Some(pid as u64));
        }
        assert_eq!(reader.apply(KvOp::Get("missing".into())), None);
    }

    #[test]
    fn asymmetric_factory_wait_free_members_progress_under_contention() {
        // (4,1)-live cells: pid 0 is wait-free. Guests hammer the object
        // while pid 0 performs operations; pid 0 must complete all of them.
        let n = 4;
        let obj = Universal::new(
            Counter,
            AsymmetricFactory::new(Liveness::new_first_n(n, 1)),
            n,
        );
        let done = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 1..n {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for _ in 0..20 {
                        h.apply(CounterOp::Add(1));
                    }
                });
            }
            let obj = &obj;
            let done = &done;
            s.spawn(move || {
                let mut h = obj.handle(0).unwrap();
                for _ in 0..20 {
                    let v = h.apply(CounterOp::Add(1));
                    done.lock().unwrap().push(v);
                }
            });
        });
        let done = done.into_inner().unwrap();
        assert_eq!(done.len(), 20, "the wait-free member completed every operation");
        // Counter responses are strictly increasing (linearizable Adds).
        for w in done.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn owned_handles_interoperate_with_borrowed_ones() {
        let obj = Arc::new(wait_free_counter(3));
        let mut owned = obj.owned_handle(0).unwrap();
        let mut borrowed = obj.handle(1).unwrap();
        assert_eq!(obj.owned_handle(0).unwrap_err(), UniversalError::HandleTaken { pid: 0 });
        owned.apply(CounterOp::Add(4));
        borrowed.apply(CounterOp::Add(5));
        assert_eq!(owned.apply(CounterOp::Get), 9);
        assert_eq!(owned.pid(), 0);
        assert!(owned.replayed_cells() >= 2);
        assert_eq!(owned.object().n(), 3);
        // The owned handle keeps the object alive on its own.
        let mut survivor = obj.owned_handle(2).unwrap();
        drop(borrowed);
        drop(obj);
        assert_eq!(survivor.apply(CounterOp::Get), 9);
    }

    #[test]
    fn local_state_reflects_replay() {
        let obj = wait_free_counter(2);
        let mut h = obj.handle(0).unwrap();
        h.apply(CounterOp::Add(7));
        assert_eq!(*h.local_state(), 7);
    }
}
