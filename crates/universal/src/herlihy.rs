//! The announce-and-help universal construction (Herlihy [7]), extended
//! with **checkpoint cells**.
//!
//! Checkpoints ride the same consensus path as operations: any port may
//! propose a [`CheckpointRecord`] — its fully-replayed state sealed at a log
//! index — into the next free cell. Once a checkpoint is agreed, it is a
//! no-op for replicas that are already past it (by determinism its sealed
//! state equals their replayed prefix), but it becomes the **anchor** for
//! everyone arriving later: fresh handles bootstrap from the latest agreed
//! checkpoint and replay only the post-checkpoint suffix, so handle
//! creation costs O(delta) instead of O(history), and the pre-checkpoint
//! prefix of the log becomes reclaimable (memory is capped by checkpoint
//! cadence, not by lifetime).
//!
//! Progress: operation placement keeps its original guarantee (wait-free
//! for the factory's wait-free set via the helping rule, obstruction-free
//! otherwise). Checkpoint placement is **lock-free** for every port —
//! checkpoints are not announced, so nobody helps them, but each failed
//! placement attempt means some *operation* committed instead (system-wide
//! progress). Checkpoint proposers still obey the helping rule, so they
//! never undermine the wait-free bound of the privileged set.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use apc_core::consensus::Consensus;
use apc_core::error::ConsensusError;
use apc_progress_macros::progress;
use apc_registers::AtomicCell;

use crate::factory::ConsensusFactory;
use crate::seq::SequentialSpec;

/// Errors of the universal object.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UniversalError {
    /// The process index is not a port of the underlying consensus spec.
    NotAPort {
        /// The offending process index.
        pid: usize,
    },
    /// A handle for this process was already taken (one handle per process).
    HandleTaken {
        /// The offending process index.
        pid: usize,
    },
}

impl fmt::Display for UniversalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniversalError::NotAPort { pid } => {
                write!(f, "process {pid} is not a port of the universal object")
            }
            UniversalError::HandleTaken { pid } => {
                write!(f, "a handle for process {pid} already exists")
            }
        }
    }
}

impl std::error::Error for UniversalError {}

/// An operation stamped with its invoker and per-invoker sequence number.
///
/// Appears inside [`LogRecord`]; its fields are an implementation detail.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpRecord<O> {
    pid: u8,
    seq: u64,
    op: O,
}

/// An agreed checkpoint: the object state sealed at a log index.
///
/// The sealed `state` is exactly the result of replaying log cells
/// `[0, index)`; the cell at `index` is the checkpoint cell itself and
/// contributes no operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointRecord<T> {
    pid: u8,
    /// Log index of the checkpoint cell (= number of sealed prefix cells).
    index: u64,
    /// The state after replaying the sealed prefix. `Arc`-shared: the seal
    /// is immutable once proposed, and consensus cells clone records on
    /// every propose/peek — sharing keeps those clones O(1) instead of
    /// O(state size).
    state: Arc<T>,
    /// Per-process highest applied sequence numbers in the sealed prefix.
    applied: Vec<u64>,
}

impl<T> CheckpointRecord<T> {
    /// The log index this checkpoint seals (number of prefix cells).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The sealed state.
    pub fn state(&self) -> &T {
        &self.state
    }
}

/// An agreed **reconfiguration**: an operation that also seals the post-op
/// state — the topology-bump record of service layers.
///
/// A reconfig cell behaves like an ordinary operation cell (its `op` is
/// applied through the sequential spec at the cell's position in the log)
/// *and* like a checkpoint cell (the state after the op is sealed and
/// published as the bootstrap anchor). The combination is what makes live
/// reconfiguration linearizable in one step: the proposer learns exactly
/// which operations committed before the bump — the sealed state — and
/// every replica deterministically applies the bump at the same log index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReconfigRecord<O, T> {
    pid: u8,
    seq: u64,
    /// The reconfiguration operation, applied through the ordinary spec.
    op: O,
    /// The state *after* applying `op` to the agreed prefix. Proposed
    /// speculatively from the proposer's replayed state; correct whenever
    /// the record is the one agreed (the proposer's cursor state *is* the
    /// agreed prefix state, and `apply` is deterministic).
    state: Arc<T>,
}

impl<O, T> ReconfigRecord<O, T> {
    /// The reconfiguration operation.
    pub fn op(&self) -> &O {
        &self.op
    }

    /// The sealed post-reconfiguration state.
    pub fn state(&self) -> &T {
        &self.state
    }
}

/// The value one log cell agrees on: an operation, a checkpoint, or a
/// reconfiguration.
///
/// This is the value type of the [`ConsensusFactory`] bound of
/// [`Universal`] (see [`LogRecordOf`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogRecord<O, T> {
    /// A client operation (the common case).
    Op(OpRecord<O>),
    /// A checkpoint sealing the log prefix before its cell.
    Checkpoint(CheckpointRecord<T>),
    /// An operation that also seals the state after itself (see
    /// [`ReconfigRecord`]).
    Reconfig(ReconfigRecord<O, T>),
}

/// The record type agreed on by each log cell for spec `S`.
pub type LogRecordOf<S> = LogRecord<<S as SequentialSpec>::Op, <S as SequentialSpec>::State>;

/// A per-process announcement: "my operation `seq` is `op`, please help".
#[derive(Clone, PartialEq, Eq, Debug)]
struct Announce<O> {
    seq: u64,
    op: O,
}

/// One cell of the operation log.
struct CellNode<C> {
    cons: C,
    next: AtomicCell<Arc<CellNode<C>>>,
}

impl<C> CellNode<C> {
    fn new(cons: C) -> Self {
        CellNode { cons, next: AtomicCell::new() }
    }
}

impl<C> Drop for CellNode<C> {
    fn drop(&mut self) {
        // Unlink the tail iteratively: once a checkpoint retires a long
        // prefix, the naive recursive drop (cell 0 drops cell 1 drops …)
        // would overflow the stack. Each hop either takes sole ownership of
        // the next cell (and keeps walking) or stops at a cell someone else
        // still references.
        let mut cur = self.next.take_mut();
        while let Some(node) = cur {
            cur = match Arc::try_unwrap(node) {
                Ok(mut inner) => inner.next.take_mut(),
                Err(_) => None,
            };
        }
    }
}

/// The latest known agreed checkpoint: where fresh handles bootstrap.
struct Anchor<S, C>
where
    S: SequentialSpec,
{
    /// Log index of `cell` (the first cell a bootstrapping replay consumes).
    index: u64,
    state: Arc<S::State>,
    applied: Vec<u64>,
    cell: Arc<CellNode<C>>,
}

/// A linearizable shared object built from a sequential specification and a
/// consensus factory (see the crate docs).
///
/// Operations go through per-process [`Handle`]s (one per process index),
/// which carry the replayed local copy of the state.
pub struct Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    spec: S,
    factory: F,
    n: usize,
    announce: Vec<AtomicCell<Announce<S::Op>>>,
    /// Latest agreed checkpoint (initially the empty prefix at the head).
    /// Monotone in `index`; never `⊥`.
    anchor: AtomicCell<Arc<Anchor<S, F::Object>>>,
    handles: AtomicU64,
}

impl<S, F> Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    /// Creates a universal object for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn new(spec: S, factory: F, n: usize) -> Self {
        let init = spec.init();
        Self::with_anchor(spec, factory, n, init, 0)
    }

    /// Creates a universal object whose log *starts* at `index` with the
    /// given `state` — the recovery constructor.
    ///
    /// The cells `[0, index)` are not materialized: the object behaves as if
    /// a checkpoint sealing `state` had been agreed at `index`, so fresh
    /// handles begin replay there. This is how a persistence layer rebuilds
    /// an object from a durable snapshot taken at log index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn recovered(spec: S, factory: F, n: usize, state: S::State, index: u64) -> Self {
        Self::with_anchor(spec, factory, n, state, index)
    }

    fn with_anchor(spec: S, factory: F, n: usize, state: S::State, index: u64) -> Self {
        assert!((1..=64).contains(&n), "n must be in 1..=64");
        let head = Arc::new(CellNode::new(factory.create()));
        let anchor = Anchor { index, state: Arc::new(state), applied: vec![0; n], cell: head };
        Universal {
            spec,
            factory,
            n,
            announce: (0..n).map(|_| AtomicCell::new()).collect(),
            anchor: AtomicCell::with_value(Arc::new(anchor)),
            handles: AtomicU64::new(0),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Log index of the latest agreed checkpoint this object knows about
    /// (0 if none was ever taken): where a fresh handle starts replaying.
    #[progress(wait_free)]
    pub fn anchor_index(&self) -> u64 {
        self.latest_anchor().index
    }

    fn latest_anchor(&self) -> Arc<Anchor<S, F::Object>> {
        self.anchor.load().expect("the anchor is initialized and never cleared")
    }

    /// Claims the port bit for `pid` and builds its initial replay state
    /// from the latest checkpoint anchor.
    #[progress(wait_free)]
    fn take_port(&self, pid: usize) -> Result<Replay<S, F::Object>, UniversalError> {
        if pid >= self.n || !self.factory.spec().is_port(pid) {
            return Err(UniversalError::NotAPort { pid });
        }
        let bit = 1u64 << pid;
        if self.handles.fetch_or(bit, Ordering::AcqRel) & bit != 0 {
            return Err(UniversalError::HandleTaken { pid });
        }
        let anchor = self.latest_anchor();
        Ok(Replay {
            pid,
            seq: 0,
            cursor: Arc::clone(&anchor.cell),
            cell_index: anchor.index,
            state: S::State::clone(&anchor.state),
            applied: anchor.applied.clone(),
            steps: 0,
        })
    }

    /// Takes the (unique) operation handle for process `pid`.
    ///
    /// # Errors
    ///
    /// * [`UniversalError::NotAPort`] if `pid` is not a port of the
    ///   factory's liveness spec;
    /// * [`UniversalError::HandleTaken`] if the handle was already taken.
    #[progress(wait_free)]
    pub fn handle(&self, pid: usize) -> Result<Handle<'_, S, F>, UniversalError> {
        Ok(Handle { obj: self, replay: self.take_port(pid)? })
    }

    /// Takes the (unique) handle for process `pid` as an owned value keeping
    /// the object alive through an [`Arc`].
    ///
    /// This is the form service layers want: the handle can be stored next
    /// to (or instead of) the object without borrowing it, e.g. in a pool of
    /// per-port slots.
    ///
    /// # Errors
    ///
    /// Same as [`Universal::handle`].
    #[progress(wait_free)]
    pub fn owned_handle(self: &Arc<Self>, pid: usize) -> Result<OwnedHandle<S, F>, UniversalError> {
        Ok(OwnedHandle { obj: Arc::clone(self), replay: self.take_port(pid)? })
    }
}

impl<S, F> fmt::Debug for Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Universal")
            .field("n", &self.n)
            .field("anchor_index", &self.anchor_index())
            .finish()
    }
}

/// The per-port replay state shared by [`Handle`] and [`OwnedHandle`]: the
/// cursor into the operation log and the local state replica.
struct Replay<S, C>
where
    S: SequentialSpec,
{
    pid: usize,
    /// Sequence number of my most recent operation.
    seq: u64,
    /// The next undecided-or-unapplied cell.
    cursor: Arc<CellNode<C>>,
    /// Absolute log index of `cursor`.
    cell_index: u64,
    /// Local replayed state.
    state: S::State,
    /// `applied[p]` = highest sequence number of `p` applied so far.
    applied: Vec<u64>,
    /// Log cells this handle consumed itself (excludes the checkpointed
    /// prefix it bootstrapped from) — the replay-work meter.
    steps: u64,
}

impl<S, F> Universal<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    /// Applies `op` through the given replay state (the shared body of
    /// [`Handle::apply`] and [`OwnedHandle::apply`]).
    #[progress(bounded_wait_free)]
    fn apply_through(&self, replay: &mut Replay<S, F::Object>, op: S::Op) -> S::Resp {
        replay.seq += 1;
        let my_seq = replay.seq;
        self.announce[replay.pid].store(Announce { seq: my_seq, op: op.clone() });
        loop {
            let decided = self.decide_current_cell(replay, || {
                LogRecord::Op(OpRecord { pid: replay.pid as u8, seq: my_seq, op: op.clone() })
            });
            match decided {
                LogRecord::Op(rec) => {
                    let mine = rec.pid as usize == replay.pid && rec.seq == my_seq;
                    let resp = self.absorb_op(replay, &rec);
                    if mine {
                        return resp;
                    }
                }
                LogRecord::Checkpoint(ck) => self.absorb_checkpoint(replay, &ck),
                LogRecord::Reconfig(rec) => {
                    let _ = self.absorb_reconfig(replay, &rec);
                }
            }
        }
    }

    /// Places a reconfiguration through the replay state (the shared body of
    /// [`Handle::reconfigure`] and [`OwnedHandle::reconfigure`]); returns
    /// the log index of the agreed reconfig cell and the op's response at
    /// that linearization point.
    ///
    /// Like checkpoints, reconfig proposals are not announced (nobody helps
    /// them), so placement is lock-free: each failed attempt means some
    /// other port's record committed instead. The proposer still obeys the
    /// helping rule, so it never undermines the wait-free bound of the
    /// privileged set.
    #[progress(lock_free)]
    fn reconfigure_through(&self, replay: &mut Replay<S, F::Object>, op: S::Op) -> (u64, S::Resp) {
        replay.seq += 1;
        let my_seq = replay.seq;
        loop {
            let decided = self.decide_current_cell(replay, || {
                // Speculate the sealed post-state from the fully-replayed
                // prefix; exact whenever this record is the one agreed.
                let mut post = replay.state.clone();
                let _ = self.spec.apply(&mut post, &op);
                LogRecord::Reconfig(ReconfigRecord {
                    pid: replay.pid as u8,
                    seq: my_seq,
                    op: op.clone(),
                    state: Arc::new(post),
                })
            });
            match decided {
                LogRecord::Op(rec) => {
                    let _ = self.absorb_op(replay, &rec);
                }
                LogRecord::Checkpoint(ck) => self.absorb_checkpoint(replay, &ck),
                LogRecord::Reconfig(rec) => {
                    let mine = rec.pid as usize == replay.pid && rec.seq == my_seq;
                    let index = replay.cell_index;
                    let resp = self.absorb_reconfig(replay, &rec);
                    if mine {
                        return (index, resp);
                    }
                }
            }
        }
    }

    /// Proposes a checkpoint through the replay state (the shared body of
    /// [`Handle::checkpoint`] and [`OwnedHandle::checkpoint`]); returns the
    /// log index of the agreed checkpoint cell.
    #[progress(lock_free)]
    fn checkpoint_through(&self, replay: &mut Replay<S, F::Object>) -> u64 {
        loop {
            let decided = self.decide_current_cell(replay, || {
                LogRecord::Checkpoint(CheckpointRecord {
                    pid: replay.pid as u8,
                    index: replay.cell_index,
                    state: Arc::new(replay.state.clone()),
                    applied: replay.applied.clone(),
                })
            });
            match decided {
                LogRecord::Op(rec) => {
                    // Another operation claimed the cell; absorb it and
                    // re-seal at the next index (lock-free: their progress).
                    let _ = self.absorb_op(replay, &rec);
                }
                LogRecord::Checkpoint(ck) => {
                    // Any checkpoint agreed at my cursor cell seals exactly
                    // my replayed prefix (determinism), so it serves whether
                    // or not I proposed it.
                    let index = ck.index;
                    self.absorb_checkpoint(replay, &ck);
                    return index;
                }
                LogRecord::Reconfig(rec) => {
                    // A reconfiguration claimed the cell: absorb it (it
                    // seals its own anchor) and re-seal at the next index so
                    // the checkpoint contract — sealed state excludes the
                    // checkpoint cell — stays exact.
                    let _ = self.absorb_reconfig(replay, &rec);
                }
            }
        }
    }

    /// Produces (or learns) the decision of the cursor cell. `fallback` is
    /// the record to propose when the helping rule yields no candidate.
    fn decide_current_cell(
        &self,
        replay: &Replay<S, F::Object>,
        fallback: impl FnOnce() -> LogRecordOf<S>,
    ) -> LogRecordOf<S> {
        if let Some(d) = replay.cursor.cons.peek() {
            return d;
        }
        // Helping rule: cell k prefers the announcement of process k mod n,
        // if it is pending (announced and not yet applied in my replay —
        // which is exact for all cells before this one).
        let slot = (replay.cell_index as usize) % self.n;
        let candidate = self.announce[slot]
            .load()
            .filter(|a| a.seq > replay.applied[slot])
            .map(|a| LogRecord::Op(OpRecord { pid: slot as u8, seq: a.seq, op: a.op }));
        let proposal = candidate.unwrap_or_else(fallback);
        // APC-LINT: allow(progress): dynamic dispatch through the factory's consensus object; its class is the factory's liveness spec (wait-free for the VIP set), checked at the object, not here
        match replay.cursor.cons.propose(replay.pid, proposal) {
            Ok(decided) => decided,
            Err(ConsensusError::AlreadyProposed { .. }) => replay
                .cursor
                .cons
                .peek()
                .expect("a proposed-to cell that rejects re-proposals has decided"),
            Err(ConsensusError::NotAPort { pid }) => {
                unreachable!("handle creation verified port membership for {pid}")
            }
        }
    }

    /// Applies a decided operation record to the local replica and moves on.
    fn absorb_op(&self, replay: &mut Replay<S, F::Object>, rec: &OpRecord<S::Op>) -> S::Resp {
        let resp = self.spec.apply(&mut replay.state, &rec.op);
        replay.applied[rec.pid as usize] = rec.seq;
        self.advance(replay);
        resp
    }

    /// Passes a decided checkpoint cell: the sealed state equals the local
    /// replica already (determinism), so the cell contributes no operation;
    /// publish it as the bootstrap anchor for future handles.
    fn absorb_checkpoint(
        &self,
        replay: &mut Replay<S, F::Object>,
        ck: &CheckpointRecord<S::State>,
    ) {
        debug_assert_eq!(ck.index, replay.cell_index, "checkpoint index matches its cell");
        self.advance(replay);
        let anchor_index = replay.cell_index;
        if self.latest_anchor().index >= anchor_index {
            return; // someone already published this checkpoint (or a later one)
        }
        let anchor = Arc::new(Anchor {
            index: anchor_index,
            // Share the sealed state straight out of the record: the seal
            // equals the local replica here (determinism), no clone needed.
            state: Arc::clone(&ck.state),
            applied: replay.applied.clone(),
            cell: Arc::clone(&replay.cursor),
        });
        // Monotone publish: racing replicas can only move the anchor forward.
        self.anchor.update_if(anchor, |cur| cur.is_none_or(|a| a.index < anchor_index));
    }

    /// Applies a decided reconfiguration to the local replica, publishes its
    /// sealed post-state as the bootstrap anchor, and moves on.
    fn absorb_reconfig(
        &self,
        replay: &mut Replay<S, F::Object>,
        rec: &ReconfigRecord<S::Op, S::State>,
    ) -> S::Resp {
        let resp = self.spec.apply(&mut replay.state, &rec.op);
        debug_assert!(*rec.state == replay.state, "sealed reconfig state matches the replica");
        replay.applied[rec.pid as usize] = rec.seq;
        self.advance(replay);
        let anchor_index = replay.cell_index;
        if self.latest_anchor().index < anchor_index {
            let anchor = Arc::new(Anchor {
                index: anchor_index,
                // The seal equals the local replica here (determinism);
                // share it straight out of the record.
                state: Arc::clone(&rec.state),
                applied: replay.applied.clone(),
                cell: Arc::clone(&replay.cursor),
            });
            self.anchor.update_if(anchor, |cur| cur.is_none_or(|a| a.index < anchor_index));
        }
        resp
    }

    /// Moves the cursor to the next cell, creating it if necessary.
    fn advance(&self, replay: &mut Replay<S, F::Object>) {
        let next =
            replay.cursor.next.load_or_init(|| Arc::new(CellNode::new(self.factory.create())));
        replay.cursor = next;
        replay.cell_index += 1;
        replay.steps += 1;
    }
}

/// A per-process handle on a [`Universal`] object.
///
/// Holds the process's replay cursor and local state copy; `apply` is
/// linearizable across handles, with the progress condition of the
/// underlying consensus factory (wait-free for the factory's wait-free set,
/// obstruction-free for the rest).
pub struct Handle<'a, S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    obj: &'a Universal<S, F>,
    replay: Replay<S, F::Object>,
}

impl<S, F> Handle<'_, S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    /// The process this handle belongs to.
    pub fn pid(&self) -> usize {
        self.replay.pid
    }

    /// Applies `op` to the shared object, returning its response at its
    /// linearization point.
    ///
    /// Progress: wait-free if `pid` is in the factory's wait-free set
    /// (placement within ~2·n cells by the helping rule); otherwise
    /// obstruction-free.
    #[progress(bounded_wait_free)]
    #[progress(bounded_wait_free)]
    pub fn apply(&mut self, op: S::Op) -> S::Resp {
        self.obj.apply_through(&mut self.replay, op)
    }

    /// Seals this handle's fully-replayed state into a checkpoint cell
    /// agreed through the same consensus path as operations; returns the
    /// log index of the checkpoint cell.
    ///
    /// After agreement, fresh handles bootstrap from the sealed state and
    /// replay only the post-checkpoint suffix (O(delta) instead of
    /// O(history)), and the pre-checkpoint cells become reclaimable.
    ///
    /// Progress: lock-free — each failed placement attempt is another
    /// port's operation committing.
    #[progress(lock_free)]
    pub fn checkpoint(&mut self) -> u64 {
        self.obj.checkpoint_through(&mut self.replay)
    }

    /// Applies `op` **and** seals the post-op state in a single agreed
    /// [`ReconfigRecord`] cell, returning the cell's log index and the op's
    /// response at its linearization point.
    ///
    /// This is the live-reconfiguration primitive: the op observes exactly
    /// the operations that committed before the bump, every replica applies
    /// it at the same log index, and fresh handles bootstrap from the sealed
    /// post-state (the cell doubles as a checkpoint anchor).
    ///
    /// Progress: lock-free, like [`Handle::checkpoint`] — each failed
    /// placement attempt is another port's record committing.
    #[progress(lock_free)]
    pub fn reconfigure(&mut self, op: S::Op) -> (u64, S::Resp) {
        self.obj.reconfigure_through(&mut self.replay, op)
    }

    /// The absolute log index of this handle's replay cursor (all cells
    /// before it are reflected in [`Self::local_state`]).
    pub fn replayed_cells(&self) -> u64 {
        self.replay.cell_index
    }

    /// Log cells this handle has consumed itself — the replay-work meter.
    ///
    /// A handle bootstrapped from a checkpoint does **not** count the sealed
    /// prefix: this is the regression guard for the O(delta) replay claim.
    pub fn replay_steps(&self) -> u64 {
        self.replay.steps
    }

    /// Read-only access to the local replica (exact as of the last `apply`).
    pub fn local_state(&self) -> &S::State {
        &self.replay.state
    }
}

impl<S, F> fmt::Debug for Handle<'_, S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Handle")
            .field("pid", &self.replay.pid)
            .field("replayed_cells", &self.replay.cell_index)
            .finish()
    }
}

/// An owned per-process handle keeping its [`Universal`] object alive.
///
/// Identical to [`Handle`] except that it co-owns the object through an
/// [`Arc`], so it can be stored in long-lived structures (port pools,
/// per-client sessions) without a borrow. Created by
/// [`Universal::owned_handle`].
pub struct OwnedHandle<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    obj: Arc<Universal<S, F>>,
    replay: Replay<S, F::Object>,
}

impl<S, F> OwnedHandle<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    /// The process this handle belongs to.
    pub fn pid(&self) -> usize {
        self.replay.pid
    }

    /// Applies `op` to the shared object; see [`Handle::apply`].
    #[progress(bounded_wait_free)]
    #[progress(bounded_wait_free)]
    pub fn apply(&mut self, op: S::Op) -> S::Resp {
        self.obj.apply_through(&mut self.replay, op)
    }

    /// Seals a checkpoint; see [`Handle::checkpoint`].
    #[progress(lock_free)]
    pub fn checkpoint(&mut self) -> u64 {
        // Split the borrow: `obj` and `replay` are disjoint fields.
        let OwnedHandle { obj, replay } = self;
        obj.checkpoint_through(replay)
    }

    /// Applies `op` and seals the post-op state in one agreed cell; see
    /// [`Handle::reconfigure`].
    #[progress(lock_free)]
    pub fn reconfigure(&mut self, op: S::Op) -> (u64, S::Resp) {
        let OwnedHandle { obj, replay } = self;
        obj.reconfigure_through(replay, op)
    }

    /// The absolute log index of this handle's replay cursor.
    pub fn replayed_cells(&self) -> u64 {
        self.replay.cell_index
    }

    /// Log cells this handle has consumed itself; see
    /// [`Handle::replay_steps`].
    pub fn replay_steps(&self) -> u64 {
        self.replay.steps
    }

    /// Read-only access to the local replica (exact as of the last `apply`).
    pub fn local_state(&self) -> &S::State {
        &self.replay.state
    }

    /// The shared object this handle operates on.
    pub fn object(&self) -> &Arc<Universal<S, F>> {
        &self.obj
    }
}

impl<S, F> fmt::Debug for OwnedHandle<S, F>
where
    S: SequentialSpec,
    F: ConsensusFactory<LogRecordOf<S>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OwnedHandle")
            .field("pid", &self.replay.pid)
            .field("replayed_cells", &self.replay.cell_index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{AsymmetricFactory, CasFactory};
    use crate::seq::{Counter, CounterOp, KvOp, KvStore, Queue, QueueOp};
    use apc_core::liveness::Liveness;
    use std::sync::Mutex;

    fn wait_free_counter(n: usize) -> Universal<Counter, CasFactory> {
        Universal::new(Counter, CasFactory::new(Liveness::new_first_n(n, n)), n)
    }

    #[test]
    fn sequential_counter() {
        let obj = wait_free_counter(2);
        let mut h = obj.handle(0).unwrap();
        assert_eq!(h.apply(CounterOp::Add(5)), 5);
        assert_eq!(h.apply(CounterOp::Add(5)), 10);
        assert_eq!(h.apply(CounterOp::Get), 10);
        assert_eq!(h.replayed_cells(), 3);
    }

    #[test]
    fn two_handles_see_each_other() {
        let obj = wait_free_counter(2);
        let mut h0 = obj.handle(0).unwrap();
        let mut h1 = obj.handle(1).unwrap();
        h0.apply(CounterOp::Add(1));
        h1.apply(CounterOp::Add(2));
        assert_eq!(h0.apply(CounterOp::Get), 3);
    }

    #[test]
    fn one_handle_per_pid() {
        let obj = wait_free_counter(2);
        let _h = obj.handle(0).unwrap();
        assert_eq!(obj.handle(0).unwrap_err(), UniversalError::HandleTaken { pid: 0 });
        assert_eq!(obj.handle(9).unwrap_err(), UniversalError::NotAPort { pid: 9 });
    }

    #[test]
    fn concurrent_counter_total_is_exact() {
        // n−1 workers increment concurrently; a late reader must observe the
        // exact total (no lost updates).
        let n = 6;
        let per_thread = 50;
        let obj = wait_free_counter(n);
        std::thread::scope(|s| {
            for pid in 0..n - 1 {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for _ in 0..per_thread {
                        h.apply(CounterOp::Add(1));
                    }
                });
            }
        });
        let mut late = obj.handle(n - 1).unwrap();
        assert_eq!(late.apply(CounterOp::Get), ((n - 1) * per_thread) as u64);
    }

    #[test]
    fn queue_is_fifo_under_concurrency() {
        // Concurrent enqueues then a drain: the drain must see every element
        // exactly once, and per-producer subsequences must stay ordered.
        let n = 4;
        let per_thread = 25u64;
        let obj = Universal::new(Queue, CasFactory::new(Liveness::new_first_n(n, n)), n);
        std::thread::scope(|s| {
            for pid in 0..n - 1 {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for i in 0..per_thread {
                        h.apply(QueueOp::Enqueue(pid as u64 * 1000 + i));
                    }
                });
            }
        });
        let mut consumer = obj.handle(n - 1).unwrap();
        let mut seen: Vec<u64> = Vec::new();
        while let Some(v) = consumer.apply(QueueOp::Dequeue) {
            seen.push(v);
        }
        assert_eq!(seen.len(), (n - 1) * per_thread as usize);
        // Per-producer order is preserved.
        for pid in 0..(n - 1) as u64 {
            let mine: Vec<u64> = seen.iter().copied().filter(|v| v / 1000 == pid).collect();
            let mut sorted = mine.clone();
            sorted.sort_unstable();
            assert_eq!(mine, sorted, "producer {pid} order violated");
        }
    }

    #[test]
    fn kv_store_linearizes_puts() {
        let n = 4;
        let obj = Universal::new(KvStore, CasFactory::new(Liveness::new_first_n(n, n)), n);
        std::thread::scope(|s| {
            for pid in 0..n - 1 {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    h.apply(KvOp::Put(format!("k{pid}"), pid as u64));
                });
            }
        });
        let mut reader = obj.handle(n - 1).unwrap();
        for pid in 0..n - 1 {
            assert_eq!(reader.apply(KvOp::Get(format!("k{pid}"))), Some(pid as u64));
        }
        assert_eq!(reader.apply(KvOp::Get("missing".into())), None);
    }

    #[test]
    fn asymmetric_factory_wait_free_members_progress_under_contention() {
        // (4,1)-live cells: pid 0 is wait-free. Guests hammer the object
        // while pid 0 performs operations; pid 0 must complete all of them.
        let n = 4;
        let obj = Universal::new(Counter, AsymmetricFactory::new(Liveness::new_first_n(n, 1)), n);
        let done = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for pid in 1..n {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for _ in 0..20 {
                        h.apply(CounterOp::Add(1));
                    }
                });
            }
            let obj = &obj;
            let done = &done;
            s.spawn(move || {
                let mut h = obj.handle(0).unwrap();
                for _ in 0..20 {
                    let v = h.apply(CounterOp::Add(1));
                    done.lock().unwrap().push(v);
                }
            });
        });
        let done = done.into_inner().unwrap();
        assert_eq!(done.len(), 20, "the wait-free member completed every operation");
        // Counter responses are strictly increasing (linearizable Adds).
        for w in done.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn owned_handles_interoperate_with_borrowed_ones() {
        let obj = Arc::new(wait_free_counter(3));
        let mut owned = obj.owned_handle(0).unwrap();
        let mut borrowed = obj.handle(1).unwrap();
        assert_eq!(obj.owned_handle(0).unwrap_err(), UniversalError::HandleTaken { pid: 0 });
        owned.apply(CounterOp::Add(4));
        borrowed.apply(CounterOp::Add(5));
        assert_eq!(owned.apply(CounterOp::Get), 9);
        assert_eq!(owned.pid(), 0);
        assert!(owned.replayed_cells() >= 2);
        assert_eq!(owned.object().n(), 3);
        // The owned handle keeps the object alive on its own.
        let mut survivor = obj.owned_handle(2).unwrap();
        drop(borrowed);
        drop(obj);
        assert_eq!(survivor.apply(CounterOp::Get), 9);
    }

    #[test]
    fn local_state_reflects_replay() {
        let obj = wait_free_counter(2);
        let mut h = obj.handle(0).unwrap();
        h.apply(CounterOp::Add(7));
        assert_eq!(*h.local_state(), 7);
    }

    #[test]
    fn checkpoint_seals_state_and_ops_continue() {
        let obj = wait_free_counter(2);
        let mut h = obj.handle(0).unwrap();
        h.apply(CounterOp::Add(3));
        h.apply(CounterOp::Add(4));
        let index = h.checkpoint();
        assert_eq!(index, 2, "two op cells precede the checkpoint cell");
        assert_eq!(obj.anchor_index(), 3, "anchor points past the checkpoint cell");
        // Operations after the checkpoint see the sealed state.
        assert_eq!(h.apply(CounterOp::Add(1)), 8);
        let mut h1 = obj.handle(1).unwrap();
        assert_eq!(h1.apply(CounterOp::Get), 8);
    }

    #[test]
    fn fresh_handle_after_checkpoint_replays_o_delta() {
        let n = 3;
        let history = 200u64;
        let obj = wait_free_counter(n);
        let mut h0 = obj.handle(0).unwrap();
        for _ in 0..history {
            h0.apply(CounterOp::Add(1));
        }
        h0.checkpoint();
        // A few post-checkpoint ops: the delta.
        let delta = 5u64;
        for _ in 0..delta {
            h0.apply(CounterOp::Add(1));
        }
        // The fresh handle must bootstrap from the checkpoint, not replay
        // the whole history.
        let mut h1 = obj.handle(1).unwrap();
        assert_eq!(h1.apply(CounterOp::Get), history + delta);
        assert!(
            h1.replay_steps() <= delta + 2,
            "fresh handle replayed {} cells for a delta of {}",
            h1.replay_steps(),
            delta
        );
        // But its absolute position covers the whole log.
        assert_eq!(h1.replayed_cells(), history + delta + 2);
    }

    #[test]
    fn replay_steps_meter_counts_own_work() {
        let obj = wait_free_counter(2);
        let mut h = obj.handle(0).unwrap();
        assert_eq!(h.replay_steps(), 0);
        h.apply(CounterOp::Add(1));
        h.apply(CounterOp::Add(1));
        assert_eq!(h.replay_steps(), 2);
    }

    #[test]
    fn checkpoint_races_with_concurrent_ops_keep_totals_exact() {
        // Workers hammer the counter while one port checkpoints repeatedly:
        // no committed Add may be dropped or double-applied, and a late
        // reader (which bootstraps from whatever anchor the race produced)
        // must observe the exact total.
        let n = 5;
        let workers = 3u64;
        let per_thread = 60u64;
        let obj = wait_free_counter(n);
        std::thread::scope(|s| {
            for pid in 0..workers as usize {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for _ in 0..per_thread {
                        h.apply(CounterOp::Add(1));
                    }
                });
            }
            let obj = &obj;
            s.spawn(move || {
                let mut h = obj.handle(3).unwrap();
                for _ in 0..10 {
                    h.checkpoint();
                }
            });
        });
        assert!(obj.anchor_index() > 0, "at least one checkpoint installed");
        let mut reader = obj.handle(4).unwrap();
        assert_eq!(reader.apply(CounterOp::Get), workers * per_thread);
    }

    #[test]
    fn checkpoints_may_be_taken_by_any_port_and_stack() {
        let obj = wait_free_counter(3);
        let mut h0 = obj.handle(0).unwrap();
        let mut h1 = obj.handle(1).unwrap();
        h0.apply(CounterOp::Add(2));
        let first = h0.checkpoint();
        h1.apply(CounterOp::Add(5));
        let second = h1.checkpoint();
        assert!(second > first, "later checkpoint seals a longer prefix");
        assert_eq!(obj.anchor_index(), second + 1);
        let mut h2 = obj.handle(2).unwrap();
        assert_eq!(h2.apply(CounterOp::Get), 7);
        assert!(h2.replay_steps() <= 2, "bootstrapped from the latest anchor");
    }

    #[test]
    fn reconfigure_applies_and_seals_in_one_cell() {
        let obj = wait_free_counter(3);
        let mut h = obj.handle(0).unwrap();
        h.apply(CounterOp::Add(3));
        h.apply(CounterOp::Add(4));
        let (index, resp) = h.reconfigure(CounterOp::Add(10));
        assert_eq!(index, 2, "two op cells precede the reconfig cell");
        assert_eq!(resp, 17, "the op observed everything committed before the bump");
        assert_eq!(obj.anchor_index(), 3, "anchor points past the reconfig cell");
        // Fresh handles bootstrap from the sealed post-reconfig state.
        let mut h1 = obj.handle(1).unwrap();
        assert_eq!(h1.apply(CounterOp::Get), 17);
        assert!(h1.replay_steps() <= 1, "the reconfig cell doubles as a checkpoint");
    }

    #[test]
    fn reconfigure_races_with_concurrent_ops_keep_totals_exact() {
        // Workers hammer the counter while one port installs reconfig bumps
        // (each adding a marker amount): no committed Add may be dropped or
        // double-applied, and the bump responses are exact prefix sums.
        let n = 5;
        let workers = 3u64;
        let per_thread = 40u64;
        let bumps = 4u64;
        let obj = wait_free_counter(n);
        std::thread::scope(|s| {
            for pid in 0..workers as usize {
                let obj = &obj;
                s.spawn(move || {
                    let mut h = obj.handle(pid).unwrap();
                    for _ in 0..per_thread {
                        h.apply(CounterOp::Add(1));
                    }
                });
            }
            let obj = &obj;
            s.spawn(move || {
                let mut h = obj.handle(3).unwrap();
                let mut last = 0;
                for _ in 0..bumps {
                    let (_, total) = h.reconfigure(CounterOp::Add(1_000));
                    assert!(total > last, "bump responses are strictly increasing");
                    last = total;
                }
            });
        });
        assert!(obj.anchor_index() > 0, "at least one reconfig anchor installed");
        let mut reader = obj.handle(4).unwrap();
        assert_eq!(reader.apply(CounterOp::Get), workers * per_thread + bumps * 1_000);
    }

    #[test]
    fn checkpoint_after_reconfig_reseals_cleanly() {
        let obj = wait_free_counter(2);
        let mut h = obj.handle(0).unwrap();
        h.apply(CounterOp::Add(1));
        let (bump_index, _) = h.reconfigure(CounterOp::Add(2));
        let ck_index = h.checkpoint();
        assert!(ck_index > bump_index);
        assert_eq!(obj.anchor_index(), ck_index + 1);
        let mut h1 = obj.handle(1).unwrap();
        assert_eq!(h1.apply(CounterOp::Get), 3);
    }

    #[test]
    fn recovered_object_starts_at_the_given_index_and_state() {
        let obj: Universal<Counter, CasFactory> =
            Universal::recovered(Counter, CasFactory::new(Liveness::new_first_n(2, 2)), 2, 41, 100);
        assert_eq!(obj.anchor_index(), 100);
        let mut h = obj.handle(0).unwrap();
        assert_eq!(h.replayed_cells(), 100, "cursor starts at the recovery index");
        assert_eq!(h.apply(CounterOp::Add(1)), 42, "recovered state is live");
        assert_eq!(h.replay_steps(), 1, "no pre-recovery replay work");
    }

    #[test]
    fn long_compacted_log_drops_without_stack_overflow() {
        // Build a long log, checkpoint it, drop every strong reference to
        // the prefix: the iterative CellNode drop must unwind it safely.
        let n = 2;
        let obj = wait_free_counter(n);
        let mut h = obj.handle(0).unwrap();
        for _ in 0..50_000 {
            h.apply(CounterOp::Add(1));
        }
        h.checkpoint();
        drop(h);
        drop(obj);
    }

    #[test]
    fn asymmetric_checkpoint_respects_helping() {
        // A guest checkpoints while the VIP operates: the VIP's operations
        // all complete (the checkpointer helps pending announcements).
        let n = 3;
        let obj = Universal::new(Counter, AsymmetricFactory::new(Liveness::new_first_n(n, 1)), n);
        std::thread::scope(|s| {
            let obj = &obj;
            s.spawn(move || {
                let mut vip = obj.handle(0).unwrap();
                for _ in 0..30 {
                    vip.apply(CounterOp::Add(1));
                }
            });
            s.spawn(move || {
                let mut g = obj.handle(1).unwrap();
                for _ in 0..5 {
                    g.checkpoint();
                }
            });
        });
        let mut reader = obj.handle(2).unwrap();
        assert_eq!(reader.apply(CounterOp::Get), 30);
    }
}
