//! Consensus factories: which progress condition each log cell gets.

use apc_core::consensus::{AsymmetricConsensus, CasConsensus, Consensus};
use apc_core::liveness::Liveness;

/// Creates one consensus object per log cell.
///
/// The factory determines the progress condition of the entire universal
/// object: wait-free cells yield a wait-free object; `(n,x)`-live cells
/// yield an `(n,x)`-live object.
pub trait ConsensusFactory<T>: Send + Sync {
    /// The consensus object type produced.
    type Object: Consensus<T>;

    /// Creates a fresh single-shot consensus instance.
    fn create(&self) -> Self::Object;

    /// The liveness specification of the produced objects.
    fn spec(&self) -> Liveness;
}

/// Factory of wait-free CAS-based consensus cells.
#[derive(Copy, Clone, Debug)]
pub struct CasFactory {
    spec: Liveness,
}

impl CasFactory {
    /// A factory producing wait-free consensus for the ports of `spec`.
    pub fn new(spec: Liveness) -> Self {
        CasFactory { spec }
    }
}

impl<T: Clone + Send + Sync> ConsensusFactory<T> for CasFactory {
    type Object = CasConsensus<T>;

    fn create(&self) -> CasConsensus<T> {
        CasConsensus::new(self.spec)
    }

    fn spec(&self) -> Liveness {
        self.spec
    }
}

/// Factory of `(y,x)`-live asymmetric consensus cells.
#[derive(Copy, Clone, Debug)]
pub struct AsymmetricFactory {
    spec: Liveness,
}

impl AsymmetricFactory {
    /// A factory producing `(y,x)`-live consensus with the given spec.
    pub fn new(spec: Liveness) -> Self {
        AsymmetricFactory { spec }
    }
}

impl<T: Clone + Eq + Send + Sync> ConsensusFactory<T> for AsymmetricFactory {
    type Object = AsymmetricConsensus<T>;

    fn create(&self) -> AsymmetricConsensus<T> {
        AsymmetricConsensus::new(self.spec)
    }

    fn spec(&self) -> Liveness {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_factory_creates_fresh_objects() {
        let f = CasFactory::new(Liveness::new_first_n(2, 2));
        let a: CasConsensus<u64> = f.create();
        let b: CasConsensus<u64> = f.create();
        assert_eq!(a.propose(0, 1).unwrap(), 1);
        assert_eq!(b.propose(0, 2).unwrap(), 2, "objects are independent");
        assert_eq!(ConsensusFactory::<u64>::spec(&f).y(), 2);
    }

    #[test]
    fn asymmetric_factory_respects_spec() {
        let f = AsymmetricFactory::new(Liveness::new_first_n(3, 1));
        let obj: AsymmetricConsensus<u64> = f.create();
        assert_eq!(obj.spec().x(), 1);
        assert_eq!(ConsensusFactory::<u64>::spec(&f).consensus_number(), 2);
    }
}
