//! Deterministic sequential object specifications.
//!
//! A [`SequentialSpec`] is the input to the universal construction: any
//! deterministic single-threaded object. The specs here double as the
//! example applications of the repository (a counter, a FIFO queue, a
//! key-value store, an append-only log).

use std::collections::VecDeque;

/// A deterministic sequential object: state, operations, responses.
pub trait SequentialSpec: Send + Sync {
    /// The object's state.
    ///
    /// `Eq + Send + Sync` because sealed state travels through checkpoint
    /// cells: a [`CheckpointRecord`](crate::CheckpointRecord) is a consensus
    /// value, and consensus values are compared and shared across threads.
    type State: Clone + Eq + Send + Sync;
    /// Operation descriptors (the *invocation*, not the effect).
    type Op: Clone + Eq + Send + Sync;
    /// Operation responses.
    type Resp: Send;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Applies `op`, mutating the state and producing the response.
    fn apply(&self, state: &mut Self::State, op: &Self::Op) -> Self::Resp;
}

/// A shared counter.
#[derive(Copy, Clone, Debug, Default)]
pub struct Counter;

/// Operations of [`Counter`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CounterOp {
    /// Add to the counter; responds with the new value.
    Add(u64),
    /// Read the counter.
    Get,
}

impl SequentialSpec for Counter {
    type State = u64;
    type Op = CounterOp;
    type Resp = u64;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, state: &mut u64, op: &CounterOp) -> u64 {
        match op {
            CounterOp::Add(k) => {
                *state += k;
                *state
            }
            CounterOp::Get => *state,
        }
    }
}

/// A FIFO queue of `u64`s.
#[derive(Copy, Clone, Debug, Default)]
pub struct Queue;

/// Operations of [`Queue`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum QueueOp {
    /// Enqueue a value (responds `None`).
    Enqueue(u64),
    /// Dequeue the head (responds the removed value, or `None` if empty).
    Dequeue,
}

impl SequentialSpec for Queue {
    type State = VecDeque<u64>;
    type Op = QueueOp;
    type Resp = Option<u64>;

    fn init(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn apply(&self, state: &mut VecDeque<u64>, op: &QueueOp) -> Option<u64> {
        match op {
            QueueOp::Enqueue(v) => {
                state.push_back(*v);
                None
            }
            QueueOp::Dequeue => state.pop_front(),
        }
    }
}

/// A small key→value store over string keys.
#[derive(Copy, Clone, Debug, Default)]
pub struct KvStore;

/// Operations of [`KvStore`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum KvOp {
    /// Insert or replace a key (responds the previous value).
    Put(String, u64),
    /// Look up a key.
    Get(String),
    /// Remove a key (responds the removed value).
    Remove(String),
}

impl SequentialSpec for KvStore {
    type State = std::collections::BTreeMap<String, u64>;
    type Op = KvOp;
    type Resp = Option<u64>;

    fn init(&self) -> Self::State {
        std::collections::BTreeMap::new()
    }

    fn apply(&self, state: &mut Self::State, op: &KvOp) -> Option<u64> {
        match op {
            KvOp::Put(k, v) => state.insert(k.clone(), *v),
            KvOp::Get(k) => state.get(k).copied(),
            KvOp::Remove(k) => state.remove(k),
        }
    }
}

/// An append-only log: appends return the entry's index.
#[derive(Copy, Clone, Debug, Default)]
pub struct Logbook;

/// Operations of [`Logbook`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LogOp {
    /// Append an entry; responds with its index.
    Append(String),
    /// Read the current length.
    Len,
}

/// Response of [`Logbook`] operations.
pub type LogResp = u64;

impl SequentialSpec for Logbook {
    type State = Vec<String>;
    type Op = LogOp;
    type Resp = LogResp;

    fn init(&self) -> Vec<String> {
        Vec::new()
    }

    fn apply(&self, state: &mut Vec<String>, op: &LogOp) -> u64 {
        match op {
            LogOp::Append(entry) => {
                state.push(entry.clone());
                (state.len() - 1) as u64
            }
            LogOp::Len => state.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_spec() {
        let spec = Counter;
        let mut s = spec.init();
        assert_eq!(spec.apply(&mut s, &CounterOp::Add(2)), 2);
        assert_eq!(spec.apply(&mut s, &CounterOp::Add(3)), 5);
        assert_eq!(spec.apply(&mut s, &CounterOp::Get), 5);
    }

    #[test]
    fn queue_spec_fifo_order() {
        let spec = Queue;
        let mut s = spec.init();
        assert_eq!(spec.apply(&mut s, &QueueOp::Dequeue), None);
        spec.apply(&mut s, &QueueOp::Enqueue(1));
        spec.apply(&mut s, &QueueOp::Enqueue(2));
        assert_eq!(spec.apply(&mut s, &QueueOp::Dequeue), Some(1));
        assert_eq!(spec.apply(&mut s, &QueueOp::Dequeue), Some(2));
    }

    #[test]
    fn kv_spec() {
        let spec = KvStore;
        let mut s = spec.init();
        assert_eq!(spec.apply(&mut s, &KvOp::Put("a".into(), 1)), None);
        assert_eq!(spec.apply(&mut s, &KvOp::Put("a".into(), 2)), Some(1));
        assert_eq!(spec.apply(&mut s, &KvOp::Get("a".into())), Some(2));
        assert_eq!(spec.apply(&mut s, &KvOp::Remove("a".into())), Some(2));
        assert_eq!(spec.apply(&mut s, &KvOp::Get("a".into())), None);
    }

    #[test]
    fn logbook_spec() {
        let spec = Logbook;
        let mut s = spec.init();
        assert_eq!(spec.apply(&mut s, &LogOp::Append("x".into())), 0);
        assert_eq!(spec.apply(&mut s, &LogOp::Append("y".into())), 1);
        assert_eq!(spec.apply(&mut s, &LogOp::Len), 2);
    }
}
