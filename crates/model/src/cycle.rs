//! Non-termination certificates via cycle detection.
//!
//! The impossibility proofs of the paper exhibit *infinite* runs in which
//! some process never decides. An implementation cannot run forever, but it
//! can do something just as convincing: run a **deterministic cyclic
//! schedule** and detect that the global state after `a` periods equals the
//! state after `b > a` periods. Determinism then implies the run repeats the
//! `b − a` period segment forever — a finite, machine-checkable certificate
//! of non-termination.

use std::collections::HashMap;
use std::fmt;

use crate::pid::ProcessSet;
use crate::program::Program;
use crate::schedule::Schedule;
use crate::system::System;

/// A machine-checked certificate that repeating `period` forever from some
/// initial system never terminates.
///
/// Produced by [`detect_cycle`]; the equality of the two states has been
/// verified structurally (full `Eq` on the global state, not hashes).
#[derive(Clone, Debug)]
pub struct NonTerminationCertificate {
    /// Number of schedule periods before the loop starts.
    pub prefix_periods: usize,
    /// Length of the loop, in schedule periods.
    pub loop_periods: usize,
    /// Processes that are still live (undecided and stepping) in the loop.
    pub live_forever: ProcessSet,
    /// Events per period of the repeated schedule.
    pub period_len: usize,
}

impl NonTerminationCertificate {
    /// Total number of events executed to exhibit the cycle.
    pub fn events_to_exhibit(&self) -> usize {
        (self.prefix_periods + self.loop_periods) * self.period_len
    }
}

impl fmt::Display for NonTerminationCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-termination certificate: after {} period(s) the global state repeats with loop \
             length {} period(s) ({} events/period); processes {} take steps forever without \
             deciding",
            self.prefix_periods, self.loop_periods, self.period_len, self.live_forever
        )
    }
}

/// Outcome of driving a system with a repeated deterministic schedule.
#[derive(Clone, Debug)]
pub enum CycleOutcome<P> {
    /// All processes terminated within the budget.
    Terminated {
        /// The final system state.
        system: System<P>,
        /// Periods executed before termination.
        periods: usize,
    },
    /// The state repeated: the schedule loops forever.
    Cycle(NonTerminationCertificate),
    /// Neither termination nor a repeat within `max_periods`
    /// (the state space grows along the run).
    Exhausted {
        /// The state after the last period.
        system: System<P>,
    },
}

impl<P> CycleOutcome<P> {
    /// The certificate, if a cycle was found.
    pub fn certificate(&self) -> Option<&NonTerminationCertificate> {
        match self {
            CycleOutcome::Cycle(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the run terminated.
    pub fn terminated(&self) -> bool {
        matches!(self, CycleOutcome::Terminated { .. })
    }
}

/// Repeats `period` on `system` up to `max_periods` times, looking for a
/// state repeat.
///
/// Returns a [`NonTerminationCertificate`] if the global state after some
/// period equals the state after an earlier period (hence the run loops
/// forever), or reports termination / budget exhaustion.
///
/// The comparison uses full structural equality of [`System`] states —
/// object contents, program states, statuses — so a returned certificate is
/// sound: deterministic programs plus a deterministic schedule plus a state
/// repeat imply an infinite non-terminating run.
pub fn detect_cycle<P: Program>(
    system: System<P>,
    period: &Schedule,
    max_periods: usize,
) -> CycleOutcome<P> {
    assert!(!period.is_empty(), "period schedule must be non-empty");
    // Only processes the schedule actually steps can be expected to finish:
    // the others are simply never scheduled (which models crashes or
    // arbitrarily slow processes).
    let scheduled = period.stepper_set();
    let mut runner = crate::system::Runner::new(system);
    // Map state -> period index at which it was seen (after that many periods).
    let mut seen: HashMap<System<P>, usize> = HashMap::new();
    seen.insert(runner.system().clone(), 0);
    for completed in 1..=max_periods {
        for &event in period.events() {
            runner.execute(event);
        }
        let live = runner.system().live_set();
        if live.intersection(scheduled).is_empty() {
            return CycleOutcome::Terminated {
                system: runner.system().clone(),
                periods: completed,
            };
        }
        if let Some(&earlier) = seen.get(runner.system()) {
            return CycleOutcome::Cycle(NonTerminationCertificate {
                prefix_periods: earlier,
                loop_periods: completed - earlier,
                live_forever: live.intersection(scheduled),
                period_len: period.len(),
            });
        }
        seen.insert(runner.system().clone(), completed);
    }
    CycleOutcome::Exhausted { system: runner.system().clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::{ProcessId, ProcessSet};
    use crate::programs::ProposeProgram;
    use crate::system::SystemBuilder;
    use crate::value::Value;

    #[test]
    fn lockstep_guests_yield_certificate() {
        // Theorem 2's scenario in miniature: two guests of an
        // obstruction-free base object, driven in lockstep, loop forever.
        let mut b = SystemBuilder::new(2);
        let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(2), 1);
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let outcome = detect_cycle(sys, &Schedule::round_robin(2, 1), 100);
        let cert = outcome.certificate().expect("lockstep guests must cycle");
        assert_eq!(cert.live_forever, ProcessSet::first_n(2));
        assert!(cert.loop_periods >= 1);
        assert!(cert.events_to_exhibit() > 0);
        let shown = cert.to_string();
        assert!(shown.contains("non-termination"), "{shown}");
    }

    #[test]
    fn wait_free_proposers_terminate() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_wait_free_consensus(ProcessSet::first_n(2));
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let outcome = detect_cycle(sys, &Schedule::round_robin(2, 1), 100);
        assert!(outcome.terminated());
        assert!(outcome.certificate().is_none());
    }

    #[test]
    fn solo_guest_terminates() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(2), 2);
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let outcome = detect_cycle(sys, &Schedule::solo(ProcessId::new(0), 1), 100);
        match outcome {
            CycleOutcome::Terminated { system, .. } => {
                assert_eq!(system.decision(ProcessId::new(0)), Some(Value::Num(0)));
            }
            other => panic!("expected termination, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_period_rejected() {
        let mut b = SystemBuilder::new(1);
        let _ = b.add_register(Value::Bot);
        let sys = b.build(|_| ProposeProgram::new(crate::ObjectId::new(0), Value::Num(0)));
        let _ = detect_cycle(sys, &Schedule::new(), 10);
    }
}
