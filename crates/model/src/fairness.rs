//! Fair-termination analysis over the finite state graph.
//!
//! The paper's termination properties all have the shape "under conditions C,
//! every correct participating process eventually decides". In a finite state
//! graph this fails exactly when there is a reachable strongly-connected
//! component in which **every live process keeps taking steps yet some
//! required process never decides** — a *fair livelock*. (An infinite run in
//! a finite graph eventually stays inside one SCC; if it is fair, every live
//! process has steps inside that SCC.)
//!
//! [`fair_termination`] builds the reachable state graph, runs Tarjan's SCC
//! algorithm, and reports every fair livelock in which a required process is
//! still live. This machinery turns the paper's liveness *proofs*
//! (Lemmas 10, 12–14) into exhaustive small-configuration checks, and the
//! impossibility scenarios (Theorem 2's lockstep guests) into positive
//! livelock *witnesses*.

use std::collections::HashMap;

use crate::pid::{ProcessId, ProcessSet};
use crate::program::Program;
use crate::system::System;

/// One edge of the state graph: process `pid` steps from state `from` to
/// state `to` (indices into the graph's state table).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source state index.
    pub from: usize,
    /// The process taking the step.
    pub pid: ProcessId,
    /// Destination state index.
    pub to: usize,
}

/// The explicit reachable state graph of a system (step transitions only;
/// crashes are applied up front by the caller if desired).
#[derive(Clone, Debug)]
pub struct StateGraph<P> {
    states: Vec<System<P>>,
    edges: Vec<Edge>,
    truncated: bool,
}

impl<P: Program> StateGraph<P> {
    /// Builds the reachable state graph from `initial`, up to `max_states`
    /// distinct states.
    pub fn build(initial: &System<P>, max_states: usize) -> Self {
        let mut index: HashMap<System<P>, usize> = HashMap::new();
        let mut states: Vec<System<P>> = Vec::new();
        let mut edges: Vec<Edge> = Vec::new();
        let mut truncated = false;

        index.insert(initial.clone(), 0);
        states.push(initial.clone());
        let mut frontier = vec![0usize];
        while let Some(at) = frontier.pop() {
            let state = states[at].clone();
            for pid in state.live_set().iter() {
                let mut next = state.clone();
                next.step(pid);
                let to = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if states.len() >= max_states {
                            truncated = true;
                            continue;
                        }
                        let i = states.len();
                        index.insert(next.clone(), i);
                        states.push(next);
                        frontier.push(i);
                        i
                    }
                };
                edges.push(Edge { from: at, pid, to });
            }
        }
        StateGraph { states, edges, truncated }
    }

    /// The states of the graph (index 0 is the initial state).
    pub fn states(&self) -> &[System<P>] {
        &self.states
    }

    /// All step edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Whether the state budget truncated construction.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Strongly connected components (Tarjan), as lists of state indices.
    /// Components are returned in reverse topological order.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.states.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from].push(e.to);
        }
        tarjan(&adj)
    }
}

/// A *fair livelock*: an SCC in which every live process has internal steps,
/// so a fair scheduler can stay inside forever, yet the live processes never
/// decide.
#[derive(Clone, Debug)]
pub struct LivelockWitness {
    /// State indices of the SCC (into the graph's state table).
    pub scc: Vec<usize>,
    /// The processes still live throughout the SCC.
    pub live: ProcessSet,
    /// A sample state index from the SCC.
    pub sample_state: usize,
}

/// Finds every fair livelock in the graph.
///
/// An SCC qualifies when (1) it contains at least one edge, and (2) every
/// process that is live in its states has at least one edge *internal* to the
/// SCC. Statuses cannot change inside an SCC (deciding, halting and crashing
/// are irreversible), so the live set is constant across it.
pub fn fair_livelocks<P: Program>(graph: &StateGraph<P>) -> Vec<LivelockWitness> {
    let sccs = graph.sccs();
    let mut scc_of: Vec<usize> = vec![0; graph.states.len()];
    for (i, scc) in sccs.iter().enumerate() {
        for &s in scc {
            scc_of[s] = i;
        }
    }
    let mut witnesses = Vec::new();
    for (i, scc) in sccs.iter().enumerate() {
        let sample = scc[0];
        let live = graph.states[sample].live_set();
        if live.is_empty() {
            continue;
        }
        // Internal steppers of this SCC.
        let mut internal = ProcessSet::new();
        let mut has_edge = false;
        for e in &graph.edges {
            if scc_of[e.from] == i && scc_of[e.to] == i {
                internal.insert(e.pid);
                has_edge = true;
            }
        }
        if has_edge && live.is_subset(internal) {
            witnesses.push(LivelockWitness { scc: scc.clone(), live, sample_state: sample });
        }
    }
    witnesses
}

/// Result of a fair-termination check.
#[derive(Clone, Debug)]
pub enum FairTermination {
    /// Every fair run eventually has all required processes decided
    /// (within the explored graph).
    Holds {
        /// Number of states examined.
        states: usize,
    },
    /// A fair livelock exists in which a required process never decides.
    Livelock(LivelockWitness),
    /// A required process terminated without deciding (halted or faulted).
    WrongTermination {
        /// The offending process.
        pid: ProcessId,
        /// State index where it was observed.
        state: usize,
    },
    /// The state budget truncated graph construction; no verdict.
    Truncated,
}

impl FairTermination {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, FairTermination::Holds { .. })
    }
}

/// Checks fair termination: in every fair run, every process selected by
/// `required` eventually decides (unless it crashes).
///
/// `required` receives each process id; return `true` for the processes the
/// paper's progress condition obliges to decide (e.g. "correct participating
/// processes").
pub fn fair_termination<P: Program>(
    graph: &StateGraph<P>,
    required: impl Fn(ProcessId) -> bool,
) -> FairTermination {
    if graph.truncated() {
        return FairTermination::Truncated;
    }
    // A required process must never halt or fault without deciding.
    for (idx, state) in graph.states().iter().enumerate() {
        for i in 0..state.n() {
            let pid = ProcessId::new(i);
            if !required(pid) {
                continue;
            }
            match state.status(pid) {
                crate::system::ProcStatus::Halted | crate::system::ProcStatus::Faulted(_) => {
                    return FairTermination::WrongTermination { pid, state: idx };
                }
                _ => {}
            }
        }
    }
    for witness in fair_livelocks(graph) {
        if witness.live.iter().any(&required) {
            return FairTermination::Livelock(witness);
        }
    }
    FairTermination::Holds { states: graph.states().len() }
}

/// Tarjan's strongly connected components algorithm (iterative).
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeData {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let n = adj.len();
    let mut data = vec![NodeData { index: -1, lowlink: -1, on_stack: false }; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter: i64 = 0;

    // Iterative DFS: (node, child cursor).
    for root in 0..n {
        if data[root].index != -1 {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
            if *cursor == 0 {
                data[v].index = counter;
                data[v].lowlink = counter;
                counter += 1;
                stack.push(v);
                data[v].on_stack = true;
            }
            if *cursor < adj[v].len() {
                let w = adj[v][*cursor];
                *cursor += 1;
                if data[w].index == -1 {
                    call_stack.push((w, 0));
                } else if data[w].on_stack {
                    data[v].lowlink = data[v].lowlink.min(data[w].index);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let low = data[v].lowlink;
                    data[parent].lowlink = data[parent].lowlink.min(low);
                }
                if data[v].lowlink == data[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        data[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::ProcessSet;
    use crate::programs::ProposeProgram;
    use crate::system::SystemBuilder;
    use crate::value::Value;

    fn consensus_system(wait_free: ProcessSet) -> System<ProposeProgram> {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_live_consensus(ProcessSet::first_n(2), wait_free, 1);
        b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)))
    }

    #[test]
    fn wait_free_consensus_has_no_livelock() {
        let sys = consensus_system(ProcessSet::first_n(2));
        let graph = StateGraph::build(&sys, 100_000);
        assert!(!graph.truncated());
        let verdict = fair_termination(&graph, |_| true);
        assert!(verdict.holds(), "{verdict:?}");
    }

    #[test]
    fn obstruction_free_guests_livelock() {
        // Two guests on a (2,0)-live object: the lockstep adversary keeps
        // them pending forever — a fair livelock must be found.
        let sys = consensus_system(ProcessSet::EMPTY);
        let graph = StateGraph::build(&sys, 100_000);
        assert!(!graph.truncated());
        let witnesses = fair_livelocks(&graph);
        assert!(!witnesses.is_empty(), "lockstep guests are a fair livelock");
        let verdict = fair_termination(&graph, |_| true);
        assert!(matches!(verdict, FairTermination::Livelock(_)));
    }

    #[test]
    fn one_wait_free_member_still_livelocks_the_other_guest_only_after_decision_helps() {
        // (2,1)-live object: the guest can always finish once the wait-free
        // member decided or once it runs alone; no fair livelock.
        let sys = consensus_system(ProcessSet::from_indices([0]));
        let graph = StateGraph::build(&sys, 100_000);
        let verdict = fair_termination(&graph, |_| true);
        assert!(verdict.holds(), "{verdict:?}");
    }

    #[test]
    fn tarjan_on_simple_cycle() {
        // 0 -> 1 -> 2 -> 0 and 3 alone.
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let mut sccs = tarjan(&adj);
        for scc in &mut sccs {
            scc.sort_unstable();
        }
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
    }

    #[test]
    fn tarjan_on_dag_gives_singletons() {
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let sccs = tarjan(&adj);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn graph_build_reports_truncation() {
        let sys = consensus_system(ProcessSet::EMPTY);
        let graph = StateGraph::build(&sys, 3);
        assert!(graph.truncated());
        let verdict = fair_termination(&graph, |_| true);
        assert!(matches!(verdict, FairTermination::Truncated));
    }

    #[test]
    fn wrong_termination_detected_for_halting_required_process() {
        use crate::program::MaybeParticipant;
        // An absent process halts immediately; requiring it to decide fails.
        let mut b = SystemBuilder::new(1);
        let _ = b.add_register(Value::Bot);
        let sys = b.build(|_| MaybeParticipant::<ProposeProgram>::Absent);
        let graph = StateGraph::build(&sys, 1000);
        let verdict = fair_termination(&graph, |_| true);
        assert!(matches!(verdict, FairTermination::WrongTermination { .. }));
    }
}
