//! Process identifiers and compact process sets.

use std::fmt;

/// Identifier of one of the `n` processes of the simulated system.
///
/// Process ids are dense indices `0..n`. The paper names processes
/// `p_1 … p_n`; we use zero-based indices and write `p0, p1, …` in output.
///
/// # Examples
///
/// ```
/// use apc_model::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(u8);

impl ProcessId {
    /// Creates a process id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`: the model supports at most 64 processes so
    /// that process sets fit in one machine word.
    pub fn new(index: usize) -> Self {
        assert!(index < 64, "the model supports at most 64 processes, got index {index}");
        ProcessId(index as u8)
    }

    /// Returns the dense index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId::new(index)
    }
}

/// A set of processes, stored as a 64-bit bitset.
///
/// Used for the port set `Y` and the wait-free set `X` of a `(y,x)`-live
/// object, for crash sets, and for participation patterns.
///
/// # Examples
///
/// ```
/// use apc_model::{ProcessId, ProcessSet};
/// let set = ProcessSet::from_indices([0, 2]);
/// assert!(set.contains(ProcessId::new(0)));
/// assert!(!set.contains(ProcessId::new(1)));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ProcessSet(u64);

impl ProcessSet {
    /// The empty set.
    pub const EMPTY: ProcessSet = ProcessSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        ProcessSet(0)
    }

    /// The set `{p_0, …, p_{n-1}}` of the first `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= 64, "at most 64 processes, got {n}");
        if n == 64 {
            ProcessSet(u64::MAX)
        } else {
            ProcessSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from an iterator of dense indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut set = ProcessSet::new();
        for i in indices {
            set.insert(ProcessId::new(i));
        }
        set
    }

    /// Builds a set from an iterator of process ids.
    pub fn from_pids<I: IntoIterator<Item = ProcessId>>(pids: I) -> Self {
        let mut set = ProcessSet::new();
        for p in pids {
            set.insert(p);
        }
        set
    }

    /// Inserts a process; returns `true` if it was newly inserted.
    pub fn insert(&mut self, pid: ProcessId) -> bool {
        let bit = 1u64 << pid.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a process; returns `true` if it was present.
    pub fn remove(&mut self, pid: ProcessId) -> bool {
        let bit = 1u64 << pid.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `pid` is a member.
    pub fn contains(self, pid: ProcessId) -> bool {
        self.0 & (1u64 << pid.index()) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        ProcessSet::from_pids(iter)
    }
}

impl FromIterator<usize> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        ProcessSet::from_indices(iter)
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`], in increasing index order.
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display_and_index() {
        let p = ProcessId::new(5);
        assert_eq!(p.index(), 5);
        assert_eq!(p.to_string(), "p5");
    }

    #[test]
    #[should_panic(expected = "at most 64 processes")]
    fn pid_out_of_range_panics() {
        let _ = ProcessId::new(64);
    }

    #[test]
    fn empty_set() {
        let s = ProcessSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn first_n_contains_exactly_prefix() {
        let s = ProcessSet::first_n(3);
        assert_eq!(s.len(), 3);
        for i in 0..3 {
            assert!(s.contains(ProcessId::new(i)));
        }
        assert!(!s.contains(ProcessId::new(3)));
    }

    #[test]
    fn first_n_full_word() {
        let s = ProcessSet::first_n(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(ProcessId::new(63)));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcessSet::new();
        let p = ProcessId::new(7);
        assert!(s.insert(p));
        assert!(!s.insert(p), "second insert reports not-fresh");
        assert!(s.contains(p));
        assert!(s.remove(p));
        assert!(!s.remove(p), "second remove reports absent");
        assert!(!s.contains(p));
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::from_indices([0, 1, 2]);
        let b = ProcessSet::from_indices([2, 3]);
        assert_eq!(a.union(b), ProcessSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersection(b), ProcessSet::from_indices([2]));
        assert_eq!(a.difference(b), ProcessSet::from_indices([0, 1]));
        assert!(ProcessSet::from_indices([1]).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(ProcessSet::EMPTY.is_subset(b));
    }

    #[test]
    fn iter_in_order() {
        let s = ProcessSet::from_indices([9, 1, 4]);
        let got: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![1, 4, 9]);
    }

    #[test]
    fn debug_format() {
        let s = ProcessSet::from_indices([0, 2]);
        assert_eq!(format!("{s:?}"), "{p0,p2}");
    }

    #[test]
    fn from_iterators() {
        let s: ProcessSet = [0usize, 3].into_iter().collect();
        assert_eq!(s.len(), 2);
        let t: ProcessSet = s.iter().collect();
        assert_eq!(s, t);
    }
}
