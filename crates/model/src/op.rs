//! Shared-memory operations: the atomic events of the model.

use std::fmt;

use crate::object::ObjectId;
use crate::value::Value;

/// One shared-memory operation, performed as a single atomic event.
///
/// This mirrors the paper's event model (§3.3): read events, write events,
/// and accesses to stronger base objects. Every [`crate::Program`] step
/// performs at most one `Op`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Read an atomic register.
    Read(ObjectId),
    /// Write a value to an atomic register.
    Write(ObjectId, Value),
    /// Propose a value to a consensus object (at most once per process).
    Propose(ObjectId, Value),
    /// Test-and-set: returns the previous bit and sets it.
    TestAndSet(ObjectId),
    /// Fetch-and-add: returns the previous count and adds `delta`.
    FetchAndAdd(ObjectId, u32),
    /// Swap: returns the previous value and stores the new one.
    Swap(ObjectId, Value),
}

impl Op {
    /// The object this operation targets.
    pub fn object(self) -> ObjectId {
        match self {
            Op::Read(o)
            | Op::Write(o, _)
            | Op::Propose(o, _)
            | Op::TestAndSet(o)
            | Op::FetchAndAdd(o, _)
            | Op::Swap(o, _) => o,
        }
    }

    /// Whether this operation can mutate object state.
    pub fn is_mutating(self) -> bool {
        !matches!(self, Op::Read(_))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(o) => write!(f, "read({o})"),
            Op::Write(o, v) => write!(f, "write({o},{v})"),
            Op::Propose(o, v) => write!(f, "propose({o},{v})"),
            Op::TestAndSet(o) => write!(f, "test&set({o})"),
            Op::FetchAndAdd(o, d) => write!(f, "fetch&add({o},{d})"),
            Op::Swap(o, v) => write!(f, "swap({o},{v})"),
        }
    }
}

/// Result of attempting an operation on an object.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpOutcome {
    /// The operation completed atomically and returned a value
    /// (writes return [`Value::Bot`]).
    Done(Value),
    /// The operation did not complete (a guest proposal on a `(y,x)`-live
    /// consensus object that is still waiting for isolation). The attempt
    /// itself counts as an event on the object; the process will retry on its
    /// next scheduled step.
    Pending,
}

impl OpOutcome {
    /// Whether the operation completed.
    pub fn is_done(self) -> bool {
        matches!(self, OpOutcome::Done(_))
    }

    /// The returned value, if completed.
    pub fn value(self) -> Option<Value> {
        match self {
            OpOutcome::Done(v) => Some(v),
            OpOutcome::Pending => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_extraction() {
        let o = ObjectId::new(3);
        assert_eq!(Op::Read(o).object(), o);
        assert_eq!(Op::Write(o, Value::Num(1)).object(), o);
        assert_eq!(Op::Propose(o, Value::Num(1)).object(), o);
        assert_eq!(Op::TestAndSet(o).object(), o);
        assert_eq!(Op::FetchAndAdd(o, 2).object(), o);
        assert_eq!(Op::Swap(o, Value::Bot).object(), o);
    }

    #[test]
    fn mutating_classification() {
        let o = ObjectId::new(0);
        assert!(!Op::Read(o).is_mutating());
        assert!(Op::Write(o, Value::Bot).is_mutating());
        assert!(Op::Propose(o, Value::Num(0)).is_mutating());
    }

    #[test]
    fn outcome_accessors() {
        assert!(OpOutcome::Done(Value::Num(1)).is_done());
        assert!(!OpOutcome::Pending.is_done());
        assert_eq!(OpOutcome::Done(Value::Num(1)).value(), Some(Value::Num(1)));
        assert_eq!(OpOutcome::Pending.value(), None);
    }

    #[test]
    fn display() {
        let o = ObjectId::new(2);
        assert_eq!(Op::Read(o).to_string(), "read(obj2)");
        assert_eq!(Op::Propose(o, Value::Num(9)).to_string(), "propose(obj2,9)");
    }
}
