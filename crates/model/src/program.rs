//! Process programs: deterministic state machines driving the model.

use std::fmt::Debug;
use std::hash::Hash;

use crate::op::Op;
use crate::value::Value;

/// What a program wants to do next.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ProgramAction {
    /// Perform one shared-memory operation. The result is delivered to the
    /// next [`Program::resume`] call.
    Invoke(Op),
    /// Terminate, returning a decision value (the `return(v)` of the paper's
    /// pseudo-code).
    Decide(Value),
    /// Terminate without a decision (a non-participating process, or a
    /// program whose result is its side effects).
    Halt,
}

/// A deterministic process: an explicit state machine performing exactly one
/// shared-memory event per step.
///
/// The trait models the paper's deterministic processes (§3.3: "if `x;e_p`
/// and `x;e'_p` are runs then `e_p = e'_p`"). Determinism is structural: the
/// next action depends only on the program state and the last operation
/// result.
///
/// Programs must be `Clone + Eq + Hash` so that the explorer can memoize
/// global states and detect cycles.
///
/// # Examples
///
/// A process that writes `42` to a register and halts:
///
/// ```
/// use apc_model::{Op, Program, ProgramAction, Value, ObjectId};
///
/// #[derive(Clone, PartialEq, Eq, Hash, Debug)]
/// enum WriteOnce { Start(ObjectId), Done }
///
/// impl Program for WriteOnce {
///     fn resume(&mut self, _last: Option<Value>) -> ProgramAction {
///         match *self {
///             WriteOnce::Start(reg) => {
///                 *self = WriteOnce::Done;
///                 ProgramAction::Invoke(Op::Write(reg, Value::Num(42)))
///             }
///             WriteOnce::Done => ProgramAction::Halt,
///         }
///     }
/// }
/// ```
pub trait Program: Clone + Eq + Hash + Debug {
    /// Advances the program.
    ///
    /// `last` is the result of the previously invoked operation (`None` on
    /// the first call, and after an action that performed no operation).
    /// Returns the next action; if it is [`ProgramAction::Invoke`], the
    /// operation is performed as this step's atomic event.
    fn resume(&mut self, last: Option<Value>) -> ProgramAction;

    /// A short human-readable name for traces.
    fn name(&self) -> &'static str {
        "program"
    }
}

/// Wraps a program to model optional participation.
///
/// The paper's progress conditions quantify over *participating* processes
/// (those that invoke the operation). `MaybeParticipant::Absent` halts
/// immediately without any shared-memory event, modelling a process that
/// never participates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MaybeParticipant<P> {
    /// The process participates and runs `P`.
    Present(P),
    /// The process does not participate.
    Absent,
}

impl<P: Program> MaybeParticipant<P> {
    /// Whether the process participates.
    pub fn is_present(&self) -> bool {
        matches!(self, MaybeParticipant::Present(_))
    }
}

impl<P: Program> Program for MaybeParticipant<P> {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self {
            MaybeParticipant::Present(p) => p.resume(last),
            MaybeParticipant::Absent => ProgramAction::Halt,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            MaybeParticipant::Present(p) => p.name(),
            MaybeParticipant::Absent => "absent",
        }
    }
}

/// A program that combines two alternative program types.
///
/// Useful when different processes of one system run structurally different
/// protocols (e.g. owners and guests of an arbiter driven by distinct state
/// machines).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Either<A, B> {
    /// Run the left program.
    Left(A),
    /// Run the right program.
    Right(B),
}

impl<A: Program, B: Program> Program for Either<A, B> {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self {
            Either::Left(a) => a.resume(last),
            Either::Right(b) => b.resume(last),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Either::Left(a) => a.name(),
            Either::Right(b) => b.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct DecideImmediately(u32);

    impl Program for DecideImmediately {
        fn resume(&mut self, _last: Option<Value>) -> ProgramAction {
            ProgramAction::Decide(Value::Num(self.0))
        }
        fn name(&self) -> &'static str {
            "decide-immediately"
        }
    }

    #[test]
    fn absent_halts() {
        let mut p: MaybeParticipant<DecideImmediately> = MaybeParticipant::Absent;
        assert_eq!(p.resume(None), ProgramAction::Halt);
        assert!(!p.is_present());
        assert_eq!(p.name(), "absent");
    }

    #[test]
    fn present_delegates() {
        let mut p = MaybeParticipant::Present(DecideImmediately(5));
        assert_eq!(p.resume(None), ProgramAction::Decide(Value::Num(5)));
        assert!(p.is_present());
        assert_eq!(p.name(), "decide-immediately");
    }

    #[test]
    fn either_delegates_both_sides() {
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct HaltNow;
        impl Program for HaltNow {
            fn resume(&mut self, _last: Option<Value>) -> ProgramAction {
                ProgramAction::Halt
            }
            fn name(&self) -> &'static str {
                "halt-now"
            }
        }
        let mut l: Either<DecideImmediately, HaltNow> = Either::Left(DecideImmediately(1));
        let mut r: Either<DecideImmediately, HaltNow> = Either::Right(HaltNow);
        assert_eq!(l.resume(None), ProgramAction::Decide(Value::Num(1)));
        assert_eq!(r.resume(None), ProgramAction::Halt);
        assert_eq!(l.name(), "decide-immediately");
        assert_eq!(r.name(), "halt-now");
    }

    #[test]
    fn actions_are_comparable() {
        let o = ObjectId::new(0);
        assert_eq!(ProgramAction::Invoke(Op::Read(o)), ProgramAction::Invoke(Op::Read(o)));
        assert_ne!(ProgramAction::Halt, ProgramAction::Decide(Value::Bot));
    }
}
