//! Shared base objects of the simulated system.

use std::collections::VecDeque;
use std::fmt;

use crate::error::Fault;
use crate::op::{Op, OpOutcome};
use crate::pid::{ProcessId, ProcessSet};
use crate::value::Value;

/// Identifier of a shared object, dense within one [`crate::System`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(u16);

impl ObjectId {
    /// Creates an object id from a dense index.
    pub fn new(index: usize) -> Self {
        ObjectId(u16::try_from(index).expect("object index fits in u16"))
    }

    /// Returns the dense index of this object.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// State of a `(y,x)`-live consensus base object.
///
/// The object is **exactly** as live as the paper's definition (§2):
///
/// * **Validity** — the decided value is a proposed value.
/// * **Agreement** — a single value is ever decided.
/// * **Wait-free termination** for processes in `wait_free`: their proposal
///   completes in one event.
/// * **Obstruction-free termination** for the remaining ports: a guest
///   proposal first *registers* (one event) and thereafter completes only
///   when the `isolation_window` events on this object immediately preceding
///   the attempt were all the guest's own — the literal reading of
///   "executes alone during a long enough period of time". Once *any* value
///   is decided, every attempt completes immediately (the paper's remark:
///   "as soon as a value has been decided by a process, any process can
///   decide the very same value").
///
/// Crashed processes stop producing events, so they never block another
/// guest's isolation window — matching the paper's crash semantics.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LiveConsensusState {
    /// Port set `Y`: the only processes allowed to invoke `propose`.
    pub ports: ProcessSet,
    /// Wait-free set `X ⊆ Y`.
    pub wait_free: ProcessSet,
    /// Number of consecutive own events a guest needs before completing.
    pub isolation_window: u8,
    /// The decided value, once any proposal completes.
    pub decided: Option<Value>,
    /// Processes that have invoked `propose` (ports only), with their values.
    /// Kept sorted by process index for canonical state hashing.
    registered: Vec<(ProcessId, Value)>,
    /// The last `isolation_window` event authors on this object.
    recent: VecDeque<ProcessId>,
}

impl LiveConsensusState {
    /// Creates a fresh `(y,x)`-live consensus object.
    ///
    /// # Panics
    ///
    /// Panics if `wait_free ⊄ ports`.
    pub fn new(ports: ProcessSet, wait_free: ProcessSet, isolation_window: u8) -> Self {
        assert!(
            wait_free.is_subset(ports),
            "wait-free set {wait_free} must be a subset of the port set {ports}"
        );
        LiveConsensusState {
            ports,
            wait_free,
            isolation_window,
            decided: None,
            registered: Vec::new(),
            recent: VecDeque::new(),
        }
    }

    /// The value registered by `pid`, if it has proposed.
    pub fn registration(&self, pid: ProcessId) -> Option<Value> {
        self.registered.iter().find(|(p, _)| *p == pid).map(|(_, v)| *v)
    }

    /// Whether the guest `pid` currently satisfies the isolation criterion:
    /// the last `isolation_window` events on this object were all its own.
    fn isolated(&self, pid: ProcessId) -> bool {
        self.recent.len() >= self.isolation_window as usize && self.recent.iter().all(|p| *p == pid)
    }

    /// Records an event by `pid` on this object (for the isolation window).
    fn record_event(&mut self, pid: ProcessId) {
        if self.isolation_window == 0 {
            return;
        }
        if self.recent.len() == self.isolation_window as usize {
            self.recent.pop_front();
        }
        self.recent.push_back(pid);
    }

    /// One propose attempt by `pid` with value `v`.
    fn propose(&mut self, pid: ProcessId, v: Value) -> Result<OpOutcome, Fault> {
        if !self.ports.contains(pid) {
            return Err(Fault::NotAPort);
        }
        let registered_value = self.registration(pid);
        let first_attempt = registered_value.is_none();
        // A re-attempt with a different value would be a second propose().
        if let Some(prev) = registered_value {
            if prev != v {
                return Err(Fault::AlreadyProposed);
            }
        }

        // Already decided: everyone completes immediately (paper remark, §2).
        if let Some(d) = self.decided {
            self.record_event(pid);
            if first_attempt {
                self.register(pid, v);
            }
            return Ok(OpOutcome::Done(d));
        }

        if self.wait_free.contains(pid) {
            // Wait-free path: complete in one event; first completion decides.
            self.record_event(pid);
            self.register(pid, v);
            self.decided = Some(v);
            return Ok(OpOutcome::Done(v));
        }

        // Guest (obstruction-free) path.
        if first_attempt {
            // Registration event; never completes on the first attempt.
            self.register(pid, v);
            self.record_event(pid);
            return Ok(OpOutcome::Pending);
        }
        let isolated = self.isolated(pid);
        self.record_event(pid);
        if isolated {
            self.decided = Some(v);
            Ok(OpOutcome::Done(v))
        } else {
            Ok(OpOutcome::Pending)
        }
    }

    fn register(&mut self, pid: ProcessId, v: Value) {
        if self.registration(pid).is_none() {
            let at = self.registered.partition_point(|(p, _)| *p < pid);
            self.registered.insert(at, (pid, v));
        }
    }
}

/// State of one shared base object.
///
/// Each operation on an object is a single atomic event, matching the
/// paper's model. Registers have consensus number 1; `TestAndSet`,
/// `FetchAndAdd` and `Swap` have consensus number 2 (Common2, §3.5 of the
/// paper); `LiveConsensus` is the `(y,x)`-live consensus base object used by
/// Theorems 1–3.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ObjectState {
    /// A multi-writer multi-reader atomic register.
    Register {
        /// Current content.
        value: Value,
    },
    /// A `(y,x)`-live consensus object.
    LiveConsensus(LiveConsensusState),
    /// A test-and-set bit (initially unset).
    TestAndSet {
        /// Whether the bit has been set.
        set: bool,
    },
    /// A fetch-and-add counter.
    FetchAndAdd {
        /// Current count.
        count: u32,
    },
    /// A swap register.
    Swap {
        /// Current content.
        value: Value,
    },
}

impl ObjectState {
    /// Applies one operation attempt by `pid`.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the operation does not match the object kind,
    /// the process is not a port, or it proposes twice.
    pub fn apply(&mut self, pid: ProcessId, op: Op) -> Result<OpOutcome, Fault> {
        match (self, op) {
            (ObjectState::Register { value }, Op::Read(_)) => Ok(OpOutcome::Done(*value)),
            (ObjectState::Register { value }, Op::Write(_, v)) => {
                *value = v;
                Ok(OpOutcome::Done(Value::Bot))
            }
            (ObjectState::LiveConsensus(state), Op::Propose(_, v)) => state.propose(pid, v),
            (ObjectState::TestAndSet { set }, Op::TestAndSet(_)) => {
                let old = *set;
                *set = true;
                Ok(OpOutcome::Done(Value::Bit(old)))
            }
            (ObjectState::TestAndSet { set }, Op::Read(_)) => Ok(OpOutcome::Done(Value::Bit(*set))),
            (ObjectState::FetchAndAdd { count }, Op::FetchAndAdd(_, delta)) => {
                let old = *count;
                *count = count.wrapping_add(delta);
                Ok(OpOutcome::Done(Value::Num(old)))
            }
            (ObjectState::FetchAndAdd { count }, Op::Read(_)) => {
                Ok(OpOutcome::Done(Value::Num(*count)))
            }
            (ObjectState::Swap { value }, Op::Swap(_, v)) => {
                let old = *value;
                *value = v;
                Ok(OpOutcome::Done(old))
            }
            (ObjectState::Swap { value }, Op::Read(_)) => Ok(OpOutcome::Done(*value)),
            _ => Err(Fault::WrongObjectKind),
        }
    }

    /// The decided value of a consensus object, if this is one and it decided.
    pub fn consensus_decision(&self) -> Option<Value> {
        match self {
            ObjectState::LiveConsensus(s) => s.decided,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn register_read_write() {
        let mut obj = ObjectState::Register { value: Value::Bot };
        let o = ObjectId::new(0);
        assert_eq!(obj.apply(pid(0), Op::Read(o)).unwrap(), OpOutcome::Done(Value::Bot));
        obj.apply(pid(1), Op::Write(o, Value::Num(9))).unwrap();
        assert_eq!(obj.apply(pid(0), Op::Read(o)).unwrap(), OpOutcome::Done(Value::Num(9)));
    }

    #[test]
    fn register_rejects_propose() {
        let mut obj = ObjectState::Register { value: Value::Bot };
        let o = ObjectId::new(0);
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))), Err(Fault::WrongObjectKind));
    }

    #[test]
    fn tas_returns_old_bit_once() {
        let mut obj = ObjectState::TestAndSet { set: false };
        let o = ObjectId::new(0);
        assert_eq!(
            obj.apply(pid(0), Op::TestAndSet(o)).unwrap(),
            OpOutcome::Done(Value::Bit(false))
        );
        assert_eq!(
            obj.apply(pid(1), Op::TestAndSet(o)).unwrap(),
            OpOutcome::Done(Value::Bit(true))
        );
        assert_eq!(obj.apply(pid(2), Op::Read(o)).unwrap(), OpOutcome::Done(Value::Bit(true)));
    }

    #[test]
    fn faa_accumulates() {
        let mut obj = ObjectState::FetchAndAdd { count: 0 };
        let o = ObjectId::new(0);
        assert_eq!(
            obj.apply(pid(0), Op::FetchAndAdd(o, 2)).unwrap(),
            OpOutcome::Done(Value::Num(0))
        );
        assert_eq!(
            obj.apply(pid(1), Op::FetchAndAdd(o, 3)).unwrap(),
            OpOutcome::Done(Value::Num(2))
        );
        assert_eq!(obj.apply(pid(0), Op::Read(o)).unwrap(), OpOutcome::Done(Value::Num(5)));
    }

    #[test]
    fn swap_exchanges() {
        let mut obj = ObjectState::Swap { value: Value::Bot };
        let o = ObjectId::new(0);
        assert_eq!(
            obj.apply(pid(0), Op::Swap(o, Value::Num(1))).unwrap(),
            OpOutcome::Done(Value::Bot)
        );
        assert_eq!(
            obj.apply(pid(1), Op::Swap(o, Value::Num(2))).unwrap(),
            OpOutcome::Done(Value::Num(1))
        );
    }

    fn live(ports: &[usize], wf: &[usize], window: u8) -> ObjectState {
        ObjectState::LiveConsensus(LiveConsensusState::new(
            ProcessSet::from_indices(ports.iter().copied()),
            ProcessSet::from_indices(wf.iter().copied()),
            window,
        ))
    }

    #[test]
    fn wait_free_member_decides_in_one_event() {
        let mut obj = live(&[0, 1, 2], &[0], 1);
        let o = ObjectId::new(0);
        assert_eq!(
            obj.apply(pid(0), Op::Propose(o, Value::Num(7))).unwrap(),
            OpOutcome::Done(Value::Num(7))
        );
        // A later wait-free propose gets the already-decided value.
        let mut obj2 = live(&[0, 1, 2], &[0, 1], 1);
        obj2.apply(pid(0), Op::Propose(o, Value::Num(7))).unwrap();
        assert_eq!(
            obj2.apply(pid(1), Op::Propose(o, Value::Num(8))).unwrap(),
            OpOutcome::Done(Value::Num(7))
        );
    }

    #[test]
    fn guest_needs_isolation() {
        let mut obj = live(&[0, 1], &[], 1);
        let o = ObjectId::new(0);
        // First attempt registers, pending.
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        // Second solo attempt completes: the previous event was its own.
        assert_eq!(
            obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(),
            OpOutcome::Done(Value::Num(1))
        );
    }

    #[test]
    fn lockstep_guests_never_complete() {
        let mut obj = live(&[0, 1], &[], 1);
        let o = ObjectId::new(0);
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        assert_eq!(obj.apply(pid(1), Op::Propose(o, Value::Num(2))).unwrap(), OpOutcome::Pending);
        for _ in 0..100 {
            assert_eq!(
                obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(),
                OpOutcome::Pending
            );
            assert_eq!(
                obj.apply(pid(1), Op::Propose(o, Value::Num(2))).unwrap(),
                OpOutcome::Pending
            );
        }
    }

    #[test]
    fn guest_completes_after_decision_exists() {
        let mut obj = live(&[0, 1], &[0], 1);
        let o = ObjectId::new(0);
        assert_eq!(obj.apply(pid(1), Op::Propose(o, Value::Num(2))).unwrap(), OpOutcome::Pending);
        assert_eq!(
            obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(),
            OpOutcome::Done(Value::Num(1))
        );
        // The guest's next attempt returns the decided value even without isolation.
        assert_eq!(
            obj.apply(pid(1), Op::Propose(o, Value::Num(2))).unwrap(),
            OpOutcome::Done(Value::Num(1))
        );
    }

    #[test]
    fn guest_with_larger_window_needs_more_solo_events() {
        let mut obj = live(&[0, 1], &[], 3);
        let o = ObjectId::new(0);
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        // window=3 needs 3 consecutive own events before the completing attempt.
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        assert_eq!(
            obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(),
            OpOutcome::Done(Value::Num(1))
        );
    }

    #[test]
    fn interference_resets_guest_window() {
        let mut obj = live(&[0, 1], &[], 2);
        let o = ObjectId::new(0);
        obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap();
        obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(); // would complete next
        obj.apply(pid(1), Op::Propose(o, Value::Num(2))).unwrap(); // interference
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        assert_eq!(
            obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(),
            OpOutcome::Done(Value::Num(1))
        );
    }

    #[test]
    fn non_port_is_rejected() {
        let mut obj = live(&[0, 1], &[0], 1);
        let o = ObjectId::new(0);
        assert_eq!(obj.apply(pid(2), Op::Propose(o, Value::Num(3))), Err(Fault::NotAPort));
    }

    #[test]
    fn double_propose_different_value_is_rejected() {
        let mut obj = live(&[0, 1], &[], 1);
        let o = ObjectId::new(0);
        obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap();
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(2))), Err(Fault::AlreadyProposed));
    }

    #[test]
    #[should_panic(expected = "must be a subset")]
    fn wait_free_must_be_subset_of_ports() {
        let _ = LiveConsensusState::new(
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([2]),
            1,
        );
    }

    #[test]
    fn validity_decided_is_registered() {
        let mut obj = live(&[0, 1, 2], &[1], 1);
        let o = ObjectId::new(0);
        obj.apply(pid(0), Op::Propose(o, Value::Num(10))).unwrap();
        obj.apply(pid(1), Op::Propose(o, Value::Num(20))).unwrap();
        let decision = obj.consensus_decision().unwrap();
        assert!(decision == Value::Num(10) || decision == Value::Num(20));
        assert_eq!(decision, Value::Num(20), "wait-free completion decides its own value");
    }

    #[test]
    fn zero_window_guest_completes_right_after_registration() {
        let mut obj = live(&[0, 1], &[], 0);
        let o = ObjectId::new(0);
        assert_eq!(obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(), OpOutcome::Pending);
        assert_eq!(
            obj.apply(pid(0), Op::Propose(o, Value::Num(1))).unwrap(),
            OpOutcome::Done(Value::Num(1))
        );
    }
}
