//! Bounded exhaustive exploration of all schedules, and valence analysis.
//!
//! The explorer enumerates every interleaving of process steps (optionally
//! with a budget of crash events), memoizing on global [`System`] states.
//! This is the strongest verification available for the paper's algorithms
//! at small `n`: safety invariants are checked at *every* reachable state,
//! and the paper's *valence* of a run (§3.3) is computed by exploring all
//! extensions.

use std::collections::{BTreeSet, HashSet};

use crate::pid::{ProcessId, ProcessSet};
use crate::program::Program;
use crate::schedule::ScheduleEvent;
use crate::system::System;
use crate::value::Value;

/// A safety invariant checked at every explored state.
pub trait Invariant<P: Program> {
    /// Checks the invariant; returns a human-readable violation message if it
    /// does not hold.
    fn check(&self, sys: &System<P>) -> Result<(), String>;

    /// Name of the invariant (for reports).
    fn name(&self) -> &str;
}

/// Agreement: no two processes decide different values (the consensus
/// agreement property of §2).
#[derive(Copy, Clone, Debug, Default)]
pub struct Agreement;

impl<P: Program> Invariant<P> for Agreement {
    fn check(&self, sys: &System<P>) -> Result<(), String> {
        let decisions = sys.decisions();
        if let Some(((p1, v1), (p2, v2))) =
            decisions.iter().zip(decisions.iter().skip(1)).find(|((_, a), (_, b))| a != b)
        {
            Err(format!("{p1} decided {v1} but {p2} decided {v2}"))
        } else {
            Ok(())
        }
    }

    fn name(&self) -> &str {
        "agreement"
    }
}

/// Validity: every decided value belongs to the given proposal set (§2).
#[derive(Clone, Debug)]
pub struct ValidityIn {
    allowed: BTreeSet<Value>,
}

impl ValidityIn {
    /// Accepts decisions only within `allowed`.
    pub fn new<I: IntoIterator<Item = Value>>(allowed: I) -> Self {
        ValidityIn { allowed: allowed.into_iter().collect() }
    }
}

impl<P: Program> Invariant<P> for ValidityIn {
    fn check(&self, sys: &System<P>) -> Result<(), String> {
        for (pid, v) in sys.decisions() {
            if !self.allowed.contains(&v) {
                return Err(format!("{pid} decided {v}, not a proposed value"));
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "validity"
    }
}

/// No process ever faults (no protocol error is reachable).
#[derive(Copy, Clone, Debug, Default)]
pub struct NoFaults;

impl<P: Program> Invariant<P> for NoFaults {
    fn check(&self, sys: &System<P>) -> Result<(), String> {
        match sys.first_fault() {
            Some(err) => Err(err.to_string()),
            None => Ok(()),
        }
    }

    fn name(&self) -> &str {
        "no-faults"
    }
}

/// A recorded invariant violation, with the schedule prefix that reproduces it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: String,
    /// Human-readable description.
    pub message: String,
    /// Schedule prefix reaching the violating state from the initial state.
    pub path: Vec<ScheduleEvent>,
}

/// Exploration limits and crash adversary configuration.
#[derive(Copy, Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum number of distinct states to visit before truncating.
    pub max_states: usize,
    /// Maximum run length (schedule events along one path).
    pub max_depth: usize,
    /// Maximum number of crash events the adversary may inject.
    pub crash_budget: usize,
    /// Processes the adversary is allowed to crash.
    pub crashable: ProcessSet,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 1_000_000,
            max_depth: 200,
            crash_budget: 0,
            crashable: ProcessSet::EMPTY,
        }
    }
}

impl ExploreConfig {
    /// A configuration with the given crash adversary.
    pub fn with_crashes(mut self, budget: usize, crashable: ProcessSet) -> Self {
        self.crash_budget = budget;
        self.crashable = crashable;
        self
    }

    /// A configuration with the given state budget.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// A configuration with the given depth budget.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }
}

/// Result of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Every decision value observed at any reachable state.
    pub decisions: BTreeSet<Value>,
    /// Invariant violations (empty when all invariants hold everywhere).
    pub violations: Vec<Violation>,
    /// Number of distinct states visited.
    pub states: usize,
    /// Whether any budget (states / depth) truncated the search.
    pub truncated: bool,
    /// Number of reachable states in which every process has terminated.
    pub terminal_states: usize,
}

impl Exploration {
    /// Whether all invariants held at every visited state.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The valence of a state, following §3.3 of the paper, computed over all
/// explored extensions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Valence {
    /// Extensions deciding two or more distinct values exist. This is a
    /// definitive (existence) result even under truncation.
    Bivalent(BTreeSet<Value>),
    /// Exactly one decided value is reachable and the exploration was
    /// complete: the state is univalent.
    Univalent(Value),
    /// Exactly one decided value was reachable but the exploration was
    /// truncated: univalent *within the explored bound*.
    UnivalentBounded(Value),
    /// No decision is reachable (within the explored bound).
    Undecided,
}

impl Valence {
    /// Whether the state is definitely bivalent.
    pub fn is_bivalent(&self) -> bool {
        matches!(self, Valence::Bivalent(_))
    }
}

/// Bounded exhaustive explorer over all schedules.
///
/// # Examples
///
/// Wait-free consensus satisfies agreement and validity under *every*
/// schedule:
///
/// ```
/// use apc_model::{SystemBuilder, Value, ProcessSet};
/// use apc_model::programs::ProposeProgram;
/// use apc_model::explore::{Explorer, ExploreConfig, Agreement, ValidityIn};
///
/// let mut b = SystemBuilder::new(2);
/// let cons = b.add_wait_free_consensus(ProcessSet::first_n(2));
/// let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
/// let explorer = Explorer::new(ExploreConfig::default());
/// let result = explorer.explore(
///     &sys,
///     &[&Agreement, &ValidityIn::new([Value::Num(0), Value::Num(1)])],
/// );
/// assert!(result.ok());
/// assert!(!result.truncated);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Explorer {
    config: ExploreConfig,
}

impl Explorer {
    /// Creates an explorer with the given configuration.
    pub fn new(config: ExploreConfig) -> Self {
        Explorer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// Exhaustively explores all schedules from `initial`, checking
    /// `invariants` at every state.
    pub fn explore<P: Program>(
        &self,
        initial: &System<P>,
        invariants: &[&dyn Invariant<P>],
    ) -> Exploration {
        let mut result = Exploration {
            decisions: BTreeSet::new(),
            violations: Vec::new(),
            states: 0,
            truncated: false,
            terminal_states: 0,
        };
        let mut visited: HashSet<System<P>> = HashSet::new();
        // Iterative DFS: the stack holds (state, crashes_used, path).
        let mut stack: Vec<(System<P>, usize, Vec<ScheduleEvent>)> = Vec::new();
        if visited.insert(initial.clone()) {
            self.visit(initial, &[], invariants, &mut result);
            stack.push((initial.clone(), 0, Vec::new()));
        }
        while let Some((state, crashes, path)) = stack.pop() {
            if path.len() >= self.config.max_depth {
                result.truncated = true;
                continue;
            }
            for pid in state.live_set().iter() {
                if visited.len() >= self.config.max_states {
                    result.truncated = true;
                    break;
                }
                let mut next = state.clone();
                next.step(pid);
                if visited.insert(next.clone()) {
                    let mut next_path = path.clone();
                    next_path.push(ScheduleEvent::Step(pid));
                    self.visit(&next, &next_path, invariants, &mut result);
                    stack.push((next, crashes, next_path));
                }
                if crashes < self.config.crash_budget && self.config.crashable.contains(pid) {
                    let mut crashed = state.clone();
                    crashed.crash(pid);
                    if visited.insert(crashed.clone()) {
                        let mut next_path = path.clone();
                        next_path.push(ScheduleEvent::Crash(pid));
                        self.visit(&crashed, &next_path, invariants, &mut result);
                        stack.push((crashed, crashes + 1, next_path));
                    }
                }
            }
        }
        result.states = visited.len();
        result
    }

    fn visit<P: Program>(
        &self,
        state: &System<P>,
        path: &[ScheduleEvent],
        invariants: &[&dyn Invariant<P>],
        result: &mut Exploration,
    ) {
        for (_, v) in state.decisions() {
            result.decisions.insert(v);
        }
        if state.all_terminated() {
            result.terminal_states += 1;
        }
        for inv in invariants {
            if let Err(message) = inv.check(state) {
                result.violations.push(Violation {
                    invariant: inv.name().to_owned(),
                    message,
                    path: path.to_vec(),
                });
            }
        }
    }

    /// The set of decision values reachable from `state` (and whether the
    /// search was truncated).
    pub fn reachable_decisions<P: Program>(&self, state: &System<P>) -> (BTreeSet<Value>, bool) {
        let result = self.explore(state, &[]);
        (result.decisions, result.truncated)
    }

    /// Computes the valence of `state` (§3.3) over all explored extensions.
    pub fn valence<P: Program>(&self, state: &System<P>) -> Valence {
        let (decisions, truncated) = self.reachable_decisions(state);
        match decisions.len() {
            0 => Valence::Undecided,
            1 => {
                let v = *decisions.iter().next().expect("one element");
                if truncated {
                    Valence::UnivalentBounded(v)
                } else {
                    Valence::Univalent(v)
                }
            }
            _ => Valence::Bivalent(decisions),
        }
    }

    /// Searches for an extension of `state` after which `pid` is a *decider*
    /// (Lemma 4): a bivalent state `x` such that for every explored extension
    /// `y` of `x`, the run `y;p` is univalent.
    ///
    /// This is the paper's bivalence-preserving scheduling discipline made
    /// executable: starting from `state`, repeatedly find *any* extension `y`
    /// such that `y;p` is still bivalent and move there; when no such
    /// extension exists (within the exploration bounds), `pid` is a decider
    /// at the current state. Returns the decider state with the path that
    /// reaches it, or `None` if `state` is not bivalent or bounds were hit.
    pub fn decider_point<P: Program>(
        &self,
        state: &System<P>,
        pid: ProcessId,
    ) -> Option<(System<P>, Vec<ScheduleEvent>)> {
        let mut current = state.clone();
        let mut path: Vec<ScheduleEvent> = Vec::new();
        if !self.valence(&current).is_bivalent() {
            return None;
        }
        loop {
            match self.find_bivalent_p_extension(&current, pid) {
                Some((next, ext)) => {
                    path.extend(ext);
                    current = next;
                    if path.len() > self.config.max_depth {
                        return None;
                    }
                }
                // No extension `y` of `current` keeps `y;p` bivalent:
                // `pid` is a decider at `current` (within the bound).
                None => return Some((current, path)),
            }
        }
    }

    /// Finds an extension `y` of `state` such that the run `y;p` is bivalent,
    /// returning the state of `y;p` and the events from `state` to `y;p`.
    /// Performs a BFS over all extensions within the exploration bounds.
    fn find_bivalent_p_extension<P: Program>(
        &self,
        state: &System<P>,
        pid: ProcessId,
    ) -> Option<(System<P>, Vec<ScheduleEvent>)> {
        let mut visited: HashSet<System<P>> = HashSet::new();
        let mut queue: std::collections::VecDeque<(System<P>, Vec<ScheduleEvent>)> =
            std::collections::VecDeque::new();
        visited.insert(state.clone());
        queue.push_back((state.clone(), Vec::new()));
        while let Some((y, path)) = queue.pop_front() {
            // Consider the extension y;p.
            if y.status(pid).is_live() {
                let mut yp = y.clone();
                yp.step(pid);
                if self.valence(&yp).is_bivalent() {
                    let mut full = path.clone();
                    full.push(ScheduleEvent::Step(pid));
                    return Some((yp, full));
                }
            }
            if path.len() >= self.config.max_depth || visited.len() >= self.config.max_states {
                continue;
            }
            for q in y.live_set().iter() {
                let mut next = y.clone();
                next.step(q);
                if visited.insert(next.clone()) {
                    let mut next_path = path.clone();
                    next_path.push(ScheduleEvent::Step(q));
                    queue.push_back((next, next_path));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{ProposeProgram, TasRaceProgram};
    use crate::system::SystemBuilder;

    fn binary_consensus_system(wait_free: ProcessSet, window: u8) -> System<ProposeProgram> {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_live_consensus(ProcessSet::first_n(2), wait_free, window);
        b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)))
    }

    #[test]
    fn wait_free_consensus_explored_completely() {
        let sys = binary_consensus_system(ProcessSet::first_n(2), 1);
        let explorer = Explorer::new(ExploreConfig::default());
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new([Value::Num(0), Value::Num(1)]), &NoFaults],
        );
        assert!(result.ok(), "{:?}", result.violations);
        assert!(!result.truncated);
        assert!(result.terminal_states > 0);
        assert_eq!(result.decisions, BTreeSet::from([Value::Num(0), Value::Num(1)]));
    }

    #[test]
    fn empty_run_of_of_consensus_is_bivalent() {
        // Lemma 3 in miniature: with mixed inputs, both decisions reachable.
        let sys = binary_consensus_system(ProcessSet::EMPTY, 1);
        let explorer = Explorer::new(ExploreConfig::default().with_max_depth(30));
        let valence = explorer.valence(&sys);
        assert!(valence.is_bivalent(), "got {valence:?}");
    }

    #[test]
    fn same_inputs_make_run_univalent() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(2), 1);
        let sys = b.build(|_| ProposeProgram::new(cons, Value::Num(7)));
        let explorer = Explorer::new(ExploreConfig::default().with_max_depth(30));
        match explorer.valence(&sys) {
            Valence::Univalent(v) | Valence::UnivalentBounded(v) => assert_eq!(v, Value::Num(7)),
            other => panic!("expected univalent, got {other:?}"),
        }
    }

    #[test]
    fn agreement_violation_is_caught() {
        // A deliberately broken "consensus": two processes race on TAS and
        // decide different values; agreement must flag it.
        let mut b = SystemBuilder::new(2);
        let tas = b.add_test_and_set();
        let sys = b.build(|_| TasRaceProgram::new(tas));
        let explorer = Explorer::new(ExploreConfig::default());
        let result = explorer.explore(&sys, &[&Agreement]);
        assert!(!result.ok(), "TAS race decides different values; agreement must fail");
        assert!(!result.violations[0].path.is_empty());
    }

    #[test]
    fn crash_budget_explores_crashes() {
        let sys = binary_consensus_system(ProcessSet::first_n(2), 1);
        let no_crash = Explorer::new(ExploreConfig::default()).explore(&sys, &[]);
        let with_crash =
            Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(2)))
                .explore(&sys, &[]);
        assert!(with_crash.states > no_crash.states, "crash branches add states");
    }

    #[test]
    fn truncation_is_reported() {
        let sys = binary_consensus_system(ProcessSet::EMPTY, 1);
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(5));
        let result = explorer.explore(&sys, &[]);
        assert!(result.truncated);
    }

    #[test]
    fn decider_point_exists_for_wait_free_process() {
        // For an (2,1)-live object, the wait-free process is a decider at
        // some bivalent run (Lemma 4).
        let sys = binary_consensus_system(ProcessSet::from_indices([0]), 1);
        let explorer = Explorer::new(ExploreConfig::default().with_max_depth(40));
        let (state, _path) =
            explorer.decider_point(&sys, ProcessId::new(0)).expect("a decider point exists");
        assert!(explorer.valence(&state).is_bivalent());
        // Stepping the decider makes the run univalent.
        let mut next = state.clone();
        next.step(ProcessId::new(0));
        assert!(!explorer.valence(&next).is_bivalent());
    }
}
