//! The global state of the simulated system and its step semantics.

use std::fmt;

use crate::error::{Fault, ModelError};
use crate::object::{LiveConsensusState, ObjectId, ObjectState};
use crate::op::{Op, OpOutcome};
use crate::pid::{ProcessId, ProcessSet};
use crate::program::{Program, ProgramAction};
use crate::schedule::{Schedule, ScheduleEvent};
use crate::value::Value;

/// Execution status of one simulated process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ProcStatus {
    /// Ready to take its next program step.
    Ready,
    /// Blocked on an incomplete operation (a guest proposal waiting for
    /// isolation); each scheduled step retries the operation.
    PendingOp(Op),
    /// Terminated with a decision value.
    Decided(Value),
    /// Terminated without a decision.
    Halted,
    /// Crashed: takes no more steps (the paper's crash failure).
    Crashed,
    /// The substrate rejected an operation (protocol bug); takes no more steps.
    Faulted(Fault),
}

impl ProcStatus {
    /// Whether the process can still take steps.
    pub fn is_live(&self) -> bool {
        matches!(self, ProcStatus::Ready | ProcStatus::PendingOp(_))
    }

    /// Whether the process terminated with a decision.
    pub fn decision(&self) -> Option<Value> {
        match self {
            ProcStatus::Decided(v) => Some(*v),
            _ => None,
        }
    }
}

/// What happened during one scheduled step.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum StepKind {
    /// The process performed an operation that completed.
    OpCompleted(Op, Value),
    /// The process attempted an operation that remains pending.
    OpPending(Op),
    /// The process terminated with a decision (no shared event).
    Decided(Value),
    /// The process halted without deciding (no shared event).
    Halted,
    /// The process was not live; the step was a no-op.
    NoOp,
    /// The process crashed (a crash event of the schedule).
    Crashed,
}

/// One entry of an execution trace.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TraceEntry {
    /// The process that took the step.
    pub pid: ProcessId,
    /// What the step did.
    pub kind: StepKind,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            StepKind::OpCompleted(op, v) => write!(f, "{}: {op} -> {v}", self.pid),
            StepKind::OpPending(op) => write!(f, "{}: {op} (pending)", self.pid),
            StepKind::Decided(v) => write!(f, "{}: decide({v})", self.pid),
            StepKind::Halted => write!(f, "{}: halt", self.pid),
            StepKind::NoOp => write!(f, "{}: (no-op)", self.pid),
            StepKind::Crashed => write!(f, "{}: CRASH", self.pid),
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ProcEntry<P> {
    program: P,
    status: ProcStatus,
    last: Option<Value>,
}

/// Builder for a [`System`]: declare shared objects, then attach programs.
///
/// # Examples
///
/// ```
/// use apc_model::{SystemBuilder, Value, ProcessSet};
/// use apc_model::programs::ProposeProgram;
///
/// let mut b = SystemBuilder::new(3);
/// let cons = b.add_live_consensus(ProcessSet::first_n(3), ProcessSet::from_indices([0]), 1);
/// let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
/// assert_eq!(sys.n(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    n: usize,
    objects: Vec<ObjectState>,
}

impl SystemBuilder {
    /// Starts building a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn new(n: usize) -> Self {
        assert!((1..=64).contains(&n), "n must be in 1..=64, got {n}");
        SystemBuilder { n, objects: Vec::new() }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds an atomic register with the given initial value.
    pub fn add_register(&mut self, init: Value) -> ObjectId {
        self.push(ObjectState::Register { value: init })
    }

    /// Adds an array of `len` atomic registers, all initialized to `init`.
    pub fn add_register_array(&mut self, len: usize, init: Value) -> Vec<ObjectId> {
        (0..len).map(|_| self.add_register(init)).collect()
    }

    /// Adds a `(y,x)`-live consensus base object.
    ///
    /// # Panics
    ///
    /// Panics if `wait_free ⊄ ports`.
    pub fn add_live_consensus(
        &mut self,
        ports: ProcessSet,
        wait_free: ProcessSet,
        isolation_window: u8,
    ) -> ObjectId {
        self.push(ObjectState::LiveConsensus(LiveConsensusState::new(
            ports,
            wait_free,
            isolation_window,
        )))
    }

    /// Adds an `(x,x)`-live (wait-free, `x`-ported) consensus object.
    pub fn add_wait_free_consensus(&mut self, ports: ProcessSet) -> ObjectId {
        self.add_live_consensus(ports, ports, 1)
    }

    /// Adds an obstruction-free (`(y,0)`-live) consensus object.
    pub fn add_obstruction_free_consensus(
        &mut self,
        ports: ProcessSet,
        isolation_window: u8,
    ) -> ObjectId {
        self.add_live_consensus(ports, ProcessSet::EMPTY, isolation_window)
    }

    /// Adds a test-and-set bit.
    pub fn add_test_and_set(&mut self) -> ObjectId {
        self.push(ObjectState::TestAndSet { set: false })
    }

    /// Adds a fetch-and-add counter.
    pub fn add_fetch_and_add(&mut self, init: u32) -> ObjectId {
        self.push(ObjectState::FetchAndAdd { count: init })
    }

    /// Adds a swap register.
    pub fn add_swap(&mut self, init: Value) -> ObjectId {
        self.push(ObjectState::Swap { value: init })
    }

    fn push(&mut self, state: ObjectState) -> ObjectId {
        let id = ObjectId::new(self.objects.len());
        self.objects.push(state);
        id
    }

    /// Finishes the build, creating each process's program from its id.
    pub fn build<P: Program>(self, mut program: impl FnMut(ProcessId) -> P) -> System<P> {
        let procs = (0..self.n)
            .map(|i| ProcEntry {
                program: program(ProcessId::new(i)),
                status: ProcStatus::Ready,
                last: None,
            })
            .collect();
        System { objects: self.objects, procs }
    }
}

/// The complete global state of a simulated system: all shared objects plus
/// every process's program state and status.
///
/// `System` is `Clone + Eq + Hash`, so the explorer can branch and memoize.
/// Traces are kept outside the state (in [`Runner`]) so that two runs
/// reaching the same configuration compare equal — this is what makes cycle
/// detection sound.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct System<P> {
    objects: Vec<ObjectState>,
    procs: Vec<ProcEntry<P>>,
}

impl<P: Program> System<P> {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Status of one process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn status(&self, pid: ProcessId) -> &ProcStatus {
        &self.procs[pid.index()].status
    }

    /// The decision of `pid`, if it has decided.
    pub fn decision(&self, pid: ProcessId) -> Option<Value> {
        self.procs[pid.index()].status.decision()
    }

    /// All decisions made so far, as `(pid, value)` pairs.
    pub fn decisions(&self) -> Vec<(ProcessId, Value)> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.status.decision().map(|v| (ProcessId::new(i), v)))
            .collect()
    }

    /// The set of live (schedulable) processes.
    pub fn live_set(&self) -> ProcessSet {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status.is_live())
            .map(|(i, _)| ProcessId::new(i))
            .collect()
    }

    /// Whether every process has terminated (decided, halted, crashed or
    /// faulted).
    pub fn all_terminated(&self) -> bool {
        self.procs.iter().all(|p| !p.status.is_live())
    }

    /// Whether any process faulted (a protocol bug).
    pub fn any_faulted(&self) -> bool {
        self.procs.iter().any(|p| matches!(p.status, ProcStatus::Faulted(_)))
    }

    /// Direct read access to an object's state (for invariant checks).
    ///
    /// # Panics
    ///
    /// Panics if the object id is out of range.
    pub fn object(&self, id: ObjectId) -> &ObjectState {
        &self.objects[id.index()]
    }

    /// Crashes a process: it takes no further steps.
    ///
    /// Crashing a terminated process leaves it terminated (the paper only
    /// distinguishes faulty/correct by whether crash happens before the end
    /// of the run; crashing after termination is indistinguishable).
    pub fn crash(&mut self, pid: ProcessId) {
        let entry = &mut self.procs[pid.index()];
        if entry.status.is_live() {
            entry.status = ProcStatus::Crashed;
        }
    }

    /// Executes one step of `pid`, returning what happened.
    ///
    /// The step performs at most one shared-memory event, per the paper's
    /// model. Stepping a non-live process is a no-op.
    pub fn step(&mut self, pid: ProcessId) -> StepKind {
        let idx = pid.index();
        match self.procs[idx].status.clone() {
            ProcStatus::Decided(_)
            | ProcStatus::Halted
            | ProcStatus::Crashed
            | ProcStatus::Faulted(_) => StepKind::NoOp,
            ProcStatus::PendingOp(op) => self.attempt(pid, op),
            ProcStatus::Ready => {
                let last = self.procs[idx].last.take();
                let action = self.procs[idx].program.resume(last);
                match action {
                    ProgramAction::Invoke(op) => self.attempt(pid, op),
                    ProgramAction::Decide(v) => {
                        self.procs[idx].status = ProcStatus::Decided(v);
                        StepKind::Decided(v)
                    }
                    ProgramAction::Halt => {
                        self.procs[idx].status = ProcStatus::Halted;
                        StepKind::Halted
                    }
                }
            }
        }
    }

    fn attempt(&mut self, pid: ProcessId, op: Op) -> StepKind {
        let idx = pid.index();
        let obj = op.object();
        let Some(state) = self.objects.get_mut(obj.index()) else {
            self.procs[idx].status = ProcStatus::Faulted(Fault::NoSuchObject);
            return StepKind::NoOp;
        };
        match state.apply(pid, op) {
            Ok(OpOutcome::Done(v)) => {
                self.procs[idx].last = Some(v);
                self.procs[idx].status = ProcStatus::Ready;
                StepKind::OpCompleted(op, v)
            }
            Ok(OpOutcome::Pending) => {
                self.procs[idx].status = ProcStatus::PendingOp(op);
                StepKind::OpPending(op)
            }
            Err(fault) => {
                self.procs[idx].status = ProcStatus::Faulted(fault);
                StepKind::NoOp
            }
        }
    }

    /// The first fault among processes, as a [`ModelError`], if any.
    pub fn first_fault(&self) -> Option<ModelError> {
        self.procs.iter().enumerate().find_map(|(i, p)| match p.status {
            ProcStatus::Faulted(fault) => {
                Some(ModelError { pid: ProcessId::new(i), object: None, fault })
            }
            _ => None,
        })
    }
}

/// Drives a [`System`] along schedules, recording a trace.
#[derive(Clone, Debug)]
pub struct Runner<P> {
    system: System<P>,
    trace: Vec<TraceEntry>,
}

impl<P: Program> Runner<P> {
    /// Wraps a system for execution.
    pub fn new(system: System<P>) -> Self {
        Runner { system, trace: Vec::new() }
    }

    /// The current system state.
    pub fn system(&self) -> &System<P> {
        &self.system
    }

    /// Mutable access to the system (for crash injection mid-run).
    pub fn system_mut(&mut self) -> &mut System<P> {
        &mut self.system
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Executes one schedule event.
    pub fn execute(&mut self, event: ScheduleEvent) -> StepKind {
        match event {
            ScheduleEvent::Step(pid) => {
                let kind = self.system.step(pid);
                self.trace.push(TraceEntry { pid, kind });
                kind
            }
            ScheduleEvent::Crash(pid) => {
                self.system.crash(pid);
                let kind = StepKind::Crashed;
                self.trace.push(TraceEntry { pid, kind });
                kind
            }
        }
    }

    /// Runs the whole schedule (stopping early if every process terminates).
    /// Returns the number of schedule events consumed.
    pub fn run(&mut self, schedule: &Schedule) -> usize {
        let mut used = 0;
        for &event in schedule.events() {
            if self.system.all_terminated() {
                break;
            }
            self.execute(event);
            used += 1;
        }
        used
    }

    /// Repeats a cyclic schedule until all processes terminate or
    /// `max_events` events have executed. Returns `true` if the system
    /// terminated.
    pub fn run_until_terminated(&mut self, cycle: &Schedule, max_events: usize) -> bool {
        let mut executed = 0;
        while !self.system.all_terminated() && executed < max_events {
            for &event in cycle.events() {
                if self.system.all_terminated() || executed >= max_events {
                    break;
                }
                self.execute(event);
                executed += 1;
            }
        }
        self.system.all_terminated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{ProposeProgram, WriteThenReadProgram};

    #[test]
    fn builder_rejects_zero_processes() {
        let result = std::panic::catch_unwind(|| SystemBuilder::new(0));
        assert!(result.is_err());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut b = SystemBuilder::new(1);
        let reg = b.add_register(Value::Bot);
        let sys = b.build(|_| WriteThenReadProgram::new(reg, Value::Num(3)));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(0), 10));
        assert_eq!(runner.system().decision(ProcessId::new(0)), Some(Value::Num(3)));
    }

    #[test]
    fn wait_free_propose_decides_under_any_interleaving() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_wait_free_consensus(ProcessSet::first_n(2));
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::round_robin(2, 10));
        let d0 = runner.system().decision(ProcessId::new(0)).unwrap();
        let d1 = runner.system().decision(ProcessId::new(1)).unwrap();
        assert_eq!(d0, d1, "agreement");
        assert!(d0 == Value::Num(0) || d0 == Value::Num(1), "validity");
    }

    #[test]
    fn guests_in_lockstep_stay_pending() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(2), 1);
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let mut runner = Runner::new(sys);
        let terminated = runner.run_until_terminated(&Schedule::round_robin(2, 2), 1000);
        assert!(!terminated, "lockstep guests must not decide");
        assert!(runner.system().live_set().len() == 2);
    }

    #[test]
    fn solo_guest_decides() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(2), 1);
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(1), 10));
        assert_eq!(runner.system().decision(ProcessId::new(1)), Some(Value::Num(1)));
    }

    #[test]
    fn crash_stops_steps() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_obstruction_free_consensus(ProcessSet::first_n(2), 1);
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let mut runner = Runner::new(sys);
        runner.execute(ScheduleEvent::Step(ProcessId::new(0)));
        runner.execute(ScheduleEvent::Crash(ProcessId::new(0)));
        assert_eq!(*runner.system().status(ProcessId::new(0)), ProcStatus::Crashed);
        let kind = runner.execute(ScheduleEvent::Step(ProcessId::new(0)));
        assert_eq!(kind, StepKind::NoOp);
        // After the crash, the other guest can decide alone.
        runner.run(&Schedule::solo(ProcessId::new(1), 10));
        assert_eq!(runner.system().decision(ProcessId::new(1)), Some(Value::Num(1)));
    }

    #[test]
    fn fault_on_wrong_kind() {
        let mut b = SystemBuilder::new(1);
        let reg = b.add_register(Value::Bot);
        // ProposeProgram targets a register: kind mismatch -> fault.
        let sys = b.build(|_| ProposeProgram::new(reg, Value::Num(1)));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(0), 3));
        assert!(runner.system().any_faulted());
        assert_eq!(runner.system().first_fault().unwrap().fault, Fault::WrongObjectKind);
    }

    #[test]
    fn trace_records_events() {
        let mut b = SystemBuilder::new(1);
        let reg = b.add_register(Value::Bot);
        let sys = b.build(|_| WriteThenReadProgram::new(reg, Value::Num(3)));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::solo(ProcessId::new(0), 10));
        assert!(runner.trace().len() >= 3, "write, read, decide");
        let rendered: Vec<String> = runner.trace().iter().map(|t| t.to_string()).collect();
        assert!(rendered[0].contains("write"), "{rendered:?}");
    }

    #[test]
    fn decisions_lists_all() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_wait_free_consensus(ProcessSet::first_n(2));
        let sys = b.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
        let mut runner = Runner::new(sys);
        runner.run(&Schedule::round_robin(2, 10));
        assert_eq!(runner.system().decisions().len(), 2);
        assert!(runner.system().all_terminated());
    }
}
