//! A small library of reusable model programs.
//!
//! These are the building blocks used by tests, experiments and the paper's
//! protocol implementations: propose-and-decide, write-then-read, spin-waits.

use crate::object::ObjectId;
use crate::op::Op;
use crate::program::{Program, ProgramAction};
use crate::value::Value;

/// Proposes a value to a consensus object, then decides what it returns.
///
/// This is the whole life of a process in a consensus experiment: invoke
/// `propose(v)`, return the result.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProposeProgram {
    object: ObjectId,
    value: Value,
    state: ProposeState,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ProposeState {
    Start,
    Proposed,
}

impl ProposeProgram {
    /// A process that proposes `value` to `object` and decides the result.
    pub fn new(object: ObjectId, value: Value) -> Self {
        ProposeProgram { object, value, state: ProposeState::Start }
    }
}

impl Program for ProposeProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self.state {
            ProposeState::Start => {
                self.state = ProposeState::Proposed;
                ProgramAction::Invoke(Op::Propose(self.object, self.value))
            }
            ProposeState::Proposed => {
                let decided = last.expect("propose completed with a value");
                ProgramAction::Decide(decided)
            }
        }
    }

    fn name(&self) -> &'static str {
        "propose"
    }
}

/// Writes a value to a register, reads it back, and decides the read value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct WriteThenReadProgram {
    object: ObjectId,
    value: Value,
    state: WtrState,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum WtrState {
    Start,
    Wrote,
    Read,
}

impl WriteThenReadProgram {
    /// A process that writes `value` to `object`, reads it back and decides.
    pub fn new(object: ObjectId, value: Value) -> Self {
        WriteThenReadProgram { object, value, state: WtrState::Start }
    }
}

impl Program for WriteThenReadProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self.state {
            WtrState::Start => {
                self.state = WtrState::Wrote;
                ProgramAction::Invoke(Op::Write(self.object, self.value))
            }
            WtrState::Wrote => {
                self.state = WtrState::Read;
                ProgramAction::Invoke(Op::Read(self.object))
            }
            WtrState::Read => ProgramAction::Decide(last.expect("read returns a value")),
        }
    }

    fn name(&self) -> &'static str {
        "write-then-read"
    }
}

/// Spins reading a register until it is non-`⊥`, then decides its value.
///
/// This is the model form of the paper's `wait(R ≠ ⊥); return(R)` statements
/// (task `T2` of Figure 5, line 04 of Figure 4).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AwaitNonBotProgram {
    object: ObjectId,
    state: AwaitState,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum AwaitState {
    Start,
    Waiting,
}

impl AwaitNonBotProgram {
    /// A process that waits until `object` is non-`⊥` and decides its value.
    pub fn new(object: ObjectId) -> Self {
        AwaitNonBotProgram { object, state: AwaitState::Start }
    }
}

impl Program for AwaitNonBotProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self.state {
            AwaitState::Start => {
                self.state = AwaitState::Waiting;
                ProgramAction::Invoke(Op::Read(self.object))
            }
            AwaitState::Waiting => {
                let v = last.expect("read returns a value");
                if v.is_bot() {
                    ProgramAction::Invoke(Op::Read(self.object))
                } else {
                    ProgramAction::Decide(v)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "await-non-bot"
    }
}

/// Test-and-set race: decides `Num(0)` (winner) if it got the bit first,
/// `Num(1)` (loser) otherwise.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TasRaceProgram {
    object: ObjectId,
    state: TasState,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum TasState {
    Start,
    Done,
}

impl TasRaceProgram {
    /// A process that performs one test-and-set on `object`.
    pub fn new(object: ObjectId) -> Self {
        TasRaceProgram { object, state: TasState::Start }
    }
}

impl Program for TasRaceProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self.state {
            TasState::Start => {
                self.state = TasState::Done;
                ProgramAction::Invoke(Op::TestAndSet(self.object))
            }
            TasState::Done => {
                let won = !last.expect("TAS returns the old bit").expect_bit("tas");
                ProgramAction::Decide(Value::Num(if won { 0 } else { 1 }))
            }
        }
    }

    fn name(&self) -> &'static str {
        "tas-race"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::{ProcessId, ProcessSet};
    use crate::schedule::Schedule;
    use crate::system::{Runner, SystemBuilder};

    #[test]
    fn await_non_bot_spins_then_decides() {
        let mut b = SystemBuilder::new(2);
        let reg = b.add_register(Value::Bot);
        let sys = b.build(|pid| {
            if pid.index() == 0 {
                crate::program::Either::Left(AwaitNonBotProgram::new(reg))
            } else {
                crate::program::Either::Right(WriteThenReadProgram::new(reg, Value::Num(5)))
            }
        });
        let mut runner = Runner::new(sys);
        // Let the waiter spin a few times first.
        runner.run(&Schedule::solo(ProcessId::new(0), 5));
        assert!(runner.system().status(ProcessId::new(0)).is_live(), "still spinning");
        runner.run(&Schedule::round_robin(2, 10));
        assert_eq!(runner.system().decision(ProcessId::new(0)), Some(Value::Num(5)));
    }

    #[test]
    fn tas_race_has_exactly_one_winner() {
        for schedule in
            [Schedule::round_robin(3, 3), Schedule::random(ProcessSet::first_n(3), 30, 9)]
        {
            let mut b = SystemBuilder::new(3);
            let tas = b.add_test_and_set();
            let sys = b.build(|_| TasRaceProgram::new(tas));
            let mut runner = Runner::new(sys);
            runner.run(&schedule);
            let winners =
                runner.system().decisions().iter().filter(|(_, v)| *v == Value::Num(0)).count();
            if runner.system().all_terminated() {
                assert_eq!(winners, 1, "exactly one TAS winner");
            } else {
                assert!(winners <= 1);
            }
        }
    }

    #[test]
    fn propose_program_name() {
        let p = ProposeProgram::new(ObjectId::new(0), Value::Num(1));
        assert_eq!(p.name(), "propose");
    }
}
