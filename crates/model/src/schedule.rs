//! Schedules: which process takes the next step, and when crashes occur.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::pid::{ProcessId, ProcessSet};

/// One event of a schedule.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ScheduleEvent {
    /// Process `pid` takes one step.
    Step(ProcessId),
    /// Process `pid` crashes (takes no further steps).
    Crash(ProcessId),
}

/// A finite sequence of schedule events.
///
/// Schedules are data: they can be built, concatenated, repeated and
/// inspected. The scheduler is the adversary of the paper's model — builders
/// here cover the adversaries used in the proofs (solo runs for
/// obstruction-freedom, lockstep runs for the impossibility scenarios,
/// round-robin for fault-freedom, seeded-random for stress).
///
/// # Examples
///
/// ```
/// use apc_model::{Schedule, ProcessId};
/// let s = Schedule::lockstep([ProcessId::new(0), ProcessId::new(1)], 3);
/// assert_eq!(s.len(), 6);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Schedule {
    events: Vec<ScheduleEvent>,
}

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// The underlying event sequence.
    pub fn events(&self) -> &[ScheduleEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a step by `pid`.
    pub fn push_step(&mut self, pid: ProcessId) -> &mut Self {
        self.events.push(ScheduleEvent::Step(pid));
        self
    }

    /// Appends a crash of `pid`.
    pub fn push_crash(&mut self, pid: ProcessId) -> &mut Self {
        self.events.push(ScheduleEvent::Crash(pid));
        self
    }

    /// Concatenates another schedule after this one.
    #[must_use]
    pub fn then(mut self, other: &Schedule) -> Schedule {
        self.events.extend_from_slice(&other.events);
        self
    }

    /// Repeats this schedule `times` times.
    #[must_use]
    pub fn repeat(&self, times: usize) -> Schedule {
        let mut events = Vec::with_capacity(self.events.len() * times);
        for _ in 0..times {
            events.extend_from_slice(&self.events);
        }
        Schedule { events }
    }

    /// Round-robin over processes `p0..p_{n-1}`, `rounds` full rounds.
    pub fn round_robin(n: usize, rounds: usize) -> Schedule {
        Schedule::lockstep((0..n).map(ProcessId::new), rounds)
    }

    /// `pid` runs alone for `steps` steps (the obstruction-freedom scenario).
    pub fn solo(pid: ProcessId, steps: usize) -> Schedule {
        Schedule { events: vec![ScheduleEvent::Step(pid); steps] }
    }

    /// The given processes step in a fixed cyclic order, `rounds` times.
    ///
    /// This is the adversary of Theorem 2's proof: processes that "access o
    /// simultaneously" and never run in isolation.
    pub fn lockstep<I: IntoIterator<Item = ProcessId>>(pids: I, rounds: usize) -> Schedule {
        let order: Vec<ProcessId> = pids.into_iter().collect();
        let mut events = Vec::with_capacity(order.len() * rounds);
        for _ in 0..rounds {
            for &p in &order {
                events.push(ScheduleEvent::Step(p));
            }
        }
        Schedule { events }
    }

    /// A uniformly random interleaving of `steps` steps among `set`,
    /// deterministic in `seed`.
    pub fn random(set: ProcessSet, steps: usize, seed: u64) -> Schedule {
        let pids: Vec<ProcessId> = set.iter().collect();
        assert!(!pids.is_empty(), "random schedule needs at least one process");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let events = (0..steps)
            .map(|_| ScheduleEvent::Step(*pids.choose(&mut rng).expect("non-empty")))
            .collect();
        Schedule { events }
    }

    /// A random interleaving in which each process in `crashers` crashes at a
    /// random point, deterministic in `seed`.
    pub fn random_with_crashes(
        set: ProcessSet,
        steps: usize,
        crashers: ProcessSet,
        seed: u64,
    ) -> Schedule {
        let mut schedule = Schedule::random(set, steps, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for pid in crashers.iter() {
            let at = rand::Rng::gen_range(&mut rng, 0..=schedule.events.len());
            schedule.events.insert(at, ScheduleEvent::Crash(pid));
        }
        schedule
    }

    /// The set of processes that crash somewhere in this schedule.
    pub fn crash_set(&self) -> ProcessSet {
        self.events
            .iter()
            .filter_map(|e| match e {
                ScheduleEvent::Crash(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// The set of processes that take at least one step.
    pub fn stepper_set(&self) -> ProcessSet {
        self.events
            .iter()
            .filter_map(|e| match e {
                ScheduleEvent::Step(p) => Some(*p),
                _ => None,
            })
            .collect()
    }
}

impl FromIterator<ScheduleEvent> for Schedule {
    fn from_iter<I: IntoIterator<Item = ScheduleEvent>>(iter: I) -> Self {
        Schedule { events: iter.into_iter().collect() }
    }
}

impl Extend<ScheduleEvent> for Schedule {
    fn extend<I: IntoIterator<Item = ScheduleEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn round_robin_order() {
        let s = Schedule::round_robin(2, 2);
        assert_eq!(
            s.events(),
            &[
                ScheduleEvent::Step(pid(0)),
                ScheduleEvent::Step(pid(1)),
                ScheduleEvent::Step(pid(0)),
                ScheduleEvent::Step(pid(1)),
            ]
        );
    }

    #[test]
    fn solo_repeats_one_pid() {
        let s = Schedule::solo(pid(2), 3);
        assert_eq!(s.len(), 3);
        assert!(s.events().iter().all(|e| *e == ScheduleEvent::Step(pid(2))));
    }

    #[test]
    fn lockstep_preserves_given_order() {
        let s = Schedule::lockstep([pid(1), pid(0)], 1);
        assert_eq!(s.events(), &[ScheduleEvent::Step(pid(1)), ScheduleEvent::Step(pid(0))]);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let set = ProcessSet::first_n(3);
        let a = Schedule::random(set, 50, 42);
        let b = Schedule::random(set, 50, 42);
        let c = Schedule::random(set, 50, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn random_only_uses_given_set() {
        let set = ProcessSet::from_indices([1, 3]);
        let s = Schedule::random(set, 100, 7);
        assert!(s.stepper_set().is_subset(set));
    }

    #[test]
    fn crashes_recorded_in_crash_set() {
        let set = ProcessSet::first_n(3);
        let s = Schedule::random_with_crashes(set, 30, ProcessSet::from_indices([2]), 5);
        assert!(s.crash_set().contains(pid(2)));
        assert_eq!(s.crash_set().len(), 1);
        assert_eq!(s.len(), 31);
    }

    #[test]
    fn then_and_repeat_compose() {
        let a = Schedule::solo(pid(0), 2);
        let b = Schedule::solo(pid(1), 1);
        let c = a.clone().then(&b).repeat(2);
        assert_eq!(c.len(), 6);
        assert_eq!(c.events()[2], ScheduleEvent::Step(pid(1)));
    }

    #[test]
    fn builder_pushes() {
        let mut s = Schedule::new();
        s.push_step(pid(0)).push_crash(pid(1)).push_step(pid(1));
        assert_eq!(s.len(), 3);
        assert_eq!(s.crash_set(), ProcessSet::from_indices([1]));
        // A crashed process stepping later is allowed in the schedule;
        // the system treats it as a no-op.
        assert_eq!(s.stepper_set(), ProcessSet::from_indices([0, 1]));
    }
}
