//! Model values stored in shared objects and exchanged with programs.

use std::fmt;

/// A small, copyable value as stored in model registers and consensus objects.
///
/// The paper's algorithms need four kinds of values:
///
/// * `⊥` (the initial value of registers and of decision slots) — [`Value::Bot`];
/// * booleans (the `PART` array of the arbiter, the proposals of `XCONS`) —
///   [`Value::Bit`];
/// * proposal values — [`Value::Num`];
/// * small tagged pairs (adopt-commit `(flag, value)` pairs, stamped values) —
///   [`Value::Tagged`].
///
/// Keeping values `Copy + Eq + Hash + Ord` lets the explorer memoize global
/// states cheaply.
///
/// # Examples
///
/// ```
/// use apc_model::Value;
/// assert!(Value::Bot.is_bot());
/// assert_eq!(Value::Num(7).as_num(), Some(7));
/// assert_eq!(Value::Tagged(true, 3).to_string(), "(true,3)");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Value {
    /// The undefined / initial value `⊥`.
    #[default]
    Bot,
    /// A boolean value.
    Bit(bool),
    /// A numeric value (consensus proposals, group indices, …).
    Num(u32),
    /// A tagged pair `(flag, payload)` — used by adopt-commit and stamped cells.
    Tagged(bool, u32),
}

impl Value {
    /// Whether this value is `⊥`.
    pub fn is_bot(self) -> bool {
        matches!(self, Value::Bot)
    }

    /// Returns the numeric payload if this is a [`Value::Num`].
    pub fn as_num(self) -> Option<u32> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bit`].
    pub fn as_bit(self) -> Option<bool> {
        match self {
            Value::Bit(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the `(flag, payload)` pair if this is a [`Value::Tagged`].
    pub fn as_tagged(self) -> Option<(bool, u32)> {
        match self {
            Value::Tagged(f, v) => Some((f, v)),
            _ => None,
        }
    }

    /// The numeric payload, panicking on other variants.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Num`]. Intended for protocol code
    /// where the register discipline guarantees the variant.
    pub fn expect_num(self, context: &str) -> u32 {
        match self {
            Value::Num(n) => n,
            other => panic!("expected Num in {context}, got {other}"),
        }
    }

    /// The boolean payload, panicking on other variants.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Bit`].
    pub fn expect_bit(self, context: &str) -> bool {
        match self {
            Value::Bit(b) => b,
            other => panic!("expected Bit in {context}, got {other}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bot => write!(f, "⊥"),
            Value::Bit(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Tagged(b, v) => write!(f, "({b},{v})"),
        }
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_bot() {
        assert_eq!(Value::default(), Value::Bot);
        assert!(Value::default().is_bot());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Num(3).as_num(), Some(3));
        assert_eq!(Value::Bit(true).as_num(), None);
        assert_eq!(Value::Bit(true).as_bit(), Some(true));
        assert_eq!(Value::Num(3).as_bit(), None);
        assert_eq!(Value::Tagged(false, 9).as_tagged(), Some((false, 9)));
        assert_eq!(Value::Bot.as_tagged(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Bot.to_string(), "⊥");
        assert_eq!(Value::Bit(false).to_string(), "false");
        assert_eq!(Value::Num(42).to_string(), "42");
        assert_eq!(Value::Tagged(true, 1).to_string(), "(true,1)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5u32), Value::Num(5));
        assert_eq!(Value::from(true), Value::Bit(true));
    }

    #[test]
    #[should_panic(expected = "expected Num in test")]
    fn expect_num_panics_on_bit() {
        let _ = Value::Bit(true).expect_num("test");
    }

    #[test]
    fn expect_accessors_happy_path() {
        assert_eq!(Value::Num(1).expect_num("ok"), 1);
        assert!(Value::Bit(true).expect_bit("ok"));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [Value::Num(2), Value::Bot, Value::Bit(true), Value::Num(1)];
        vals.sort();
        assert_eq!(vals[0], Value::Bot);
    }
}
