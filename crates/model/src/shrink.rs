//! Schedule minimization: shrink a violating schedule to a minimal repro.
//!
//! The explorer reports invariant violations together with the schedule
//! prefix that reaches them. Those prefixes come from a depth-first search
//! and are rarely minimal; [`shrink_schedule`] applies delta-debugging
//! (greedy event removal, then chunk removal) to produce a locally-minimal
//! schedule that still triggers the violation — the artifact a human wants
//! to read.

use crate::explore::Invariant;
use crate::program::Program;
use crate::schedule::{Schedule, ScheduleEvent};
use crate::system::{Runner, System};

/// Whether running `schedule` from `initial` violates `invariant` at any
/// point along the run.
pub fn schedule_violates<P: Program>(
    initial: &System<P>,
    schedule: &[ScheduleEvent],
    invariant: &dyn Invariant<P>,
) -> bool {
    let mut runner = Runner::new(initial.clone());
    if invariant.check(runner.system()).is_err() {
        return true;
    }
    for &event in schedule {
        runner.execute(event);
        if invariant.check(runner.system()).is_err() {
            return true;
        }
    }
    false
}

/// Shrinks `schedule` to a locally-minimal event sequence that still
/// violates `invariant` when run from `initial`.
///
/// Strategy: repeated passes of chunk removal with halving chunk sizes
/// (classic delta debugging), until a fixpoint. The result is
/// 1-minimal: removing any single remaining event breaks the repro.
///
/// Returns the original schedule unchanged if it does not violate the
/// invariant (nothing to shrink).
pub fn shrink_schedule<P: Program>(
    initial: &System<P>,
    schedule: &Schedule,
    invariant: &dyn Invariant<P>,
) -> Schedule {
    let mut events: Vec<ScheduleEvent> = schedule.events().to_vec();
    if !schedule_violates(initial, &events, invariant) {
        return schedule.clone();
    }
    let mut chunk = events.len().max(1);
    while chunk >= 1 {
        let mut i = 0;
        let mut removed_any = false;
        while i < events.len() {
            let end = (i + chunk).min(events.len());
            let mut candidate = events.clone();
            candidate.drain(i..end);
            if schedule_violates(initial, &candidate, invariant) {
                events = candidate;
                removed_any = true;
                // Do not advance: the next chunk now occupies position i.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }
    events.into_iter().collect()
}

/// Renders a trace of the schedule against the system, as a human-readable
/// multi-line string — used by examples and failure messages.
pub fn render_run<P: Program>(initial: &System<P>, schedule: &Schedule) -> String {
    let mut runner = Runner::new(initial.clone());
    runner.run(schedule);
    let mut out = String::new();
    for (i, entry) in runner.trace().iter().enumerate() {
        out.push_str(&format!("{i:4}  {entry}\n"));
    }
    let decisions = runner.system().decisions();
    if decisions.is_empty() {
        out.push_str("      (no decisions)\n");
    } else {
        for (pid, v) in decisions {
            out.push_str(&format!("      {pid} decided {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Agreement, ExploreConfig, Explorer};
    use crate::pid::ProcessSet;
    use crate::programs::TasRaceProgram;
    use crate::system::SystemBuilder;
    use crate::value::Value;

    /// The TAS race "decides" winner/loser values — a deliberate agreement
    /// violation the explorer finds; shrinking must keep it reproducible
    /// and 1-minimal.
    #[test]
    fn shrinks_tas_race_violation() {
        let mut b = SystemBuilder::new(3);
        let tas = b.add_test_and_set();
        let sys = b.build(|_| TasRaceProgram::new(tas));
        let explorer = Explorer::new(ExploreConfig::default());
        let result = explorer.explore(&sys, &[&Agreement]);
        assert!(!result.ok());
        let path: Schedule = result.violations[0].path.iter().copied().collect();
        let shrunk = shrink_schedule(&sys, &path, &Agreement);
        assert!(schedule_violates(&sys, shrunk.events(), &Agreement));
        assert!(shrunk.len() <= path.len());
        // 1-minimality: removing any one event breaks the repro.
        for skip in 0..shrunk.len() {
            let mut candidate: Vec<_> = shrunk.events().to_vec();
            candidate.remove(skip);
            assert!(
                !schedule_violates(&sys, &candidate, &Agreement),
                "not 1-minimal at index {skip}"
            );
        }
        // The minimal repro needs two deciders: a winner and a loser — at
        // least 4 events (two TAS + two decide steps).
        assert!(shrunk.len() >= 4, "unexpectedly small: {}", shrunk.len());
    }

    #[test]
    fn non_violating_schedule_returned_unchanged() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_wait_free_consensus(ProcessSet::first_n(2));
        let sys = b.build(|pid| {
            crate::programs::ProposeProgram::new(cons, Value::Num(pid.index() as u32))
        });
        let schedule = Schedule::round_robin(2, 5);
        let shrunk = shrink_schedule(&sys, &schedule, &Agreement);
        assert_eq!(shrunk, schedule);
    }

    #[test]
    fn render_run_shows_steps_and_decisions() {
        let mut b = SystemBuilder::new(2);
        let cons = b.add_wait_free_consensus(ProcessSet::first_n(2));
        let sys = b.build(|pid| {
            crate::programs::ProposeProgram::new(cons, Value::Num(pid.index() as u32))
        });
        let rendered = render_run(&sys, &Schedule::round_robin(2, 5));
        assert!(rendered.contains("propose"), "{rendered}");
        assert!(rendered.contains("decided"), "{rendered}");
    }
}
