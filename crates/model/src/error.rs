//! Model errors: protocol faults detected by the simulated substrate.

use std::error::Error;
use std::fmt;

use crate::object::ObjectId;
use crate::pid::ProcessId;

/// A protocol fault: the simulated substrate rejected an operation.
///
/// Faults indicate bugs in the *protocol under test* (or deliberately
/// malformed test setups), not in the model itself. A faulting process enters
/// the [`crate::ProcStatus::Faulted`] status and takes no more steps; the
/// explorer reports every reachable fault as a safety violation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Fault {
    /// A process invoked an operation on an object it has no port for.
    NotAPort,
    /// A process proposed more than once to the same consensus object.
    AlreadyProposed,
    /// An operation was applied to an object of the wrong type
    /// (e.g. `write` on a consensus object).
    WrongObjectKind,
    /// An operation referenced an object id that does not exist.
    NoSuchObject,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NotAPort => write!(f, "process is not a port of the object"),
            Fault::AlreadyProposed => {
                write!(f, "process already proposed to this consensus object")
            }
            Fault::WrongObjectKind => write!(f, "operation does not match the object kind"),
            Fault::NoSuchObject => write!(f, "no such object"),
        }
    }
}

impl Error for Fault {}

/// An error raised while driving the model (fault + location).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ModelError {
    /// The process whose operation faulted.
    pub pid: ProcessId,
    /// The object involved, if any.
    pub object: Option<ObjectId>,
    /// The kind of fault.
    pub fault: Fault,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model fault at {}", self.pid)?;
        if let Some(obj) = self.object {
            write!(f, " on {obj}")?;
        }
        write!(f, ": {}", self.fault)
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_pid_and_fault() {
        let err = ModelError {
            pid: ProcessId::new(2),
            object: Some(ObjectId::new(1)),
            fault: Fault::NotAPort,
        };
        let s = err.to_string();
        assert!(s.contains("p2"), "{s}");
        assert!(s.contains("not a port"), "{s}");
    }

    #[test]
    fn display_without_object() {
        let err = ModelError { pid: ProcessId::new(0), object: None, fault: Fault::NoSuchObject };
        assert!(err.to_string().contains("no such object"));
    }

    #[test]
    fn error_source_is_fault() {
        let err =
            ModelError { pid: ProcessId::new(0), object: None, fault: Fault::AlreadyProposed };
        assert!(std::error::Error::source(&err).is_some());
    }
}
