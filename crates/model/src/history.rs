//! Operation histories of real (threaded) executions, and consensus checks.
//!
//! The real implementations in `apc-core` are exercised by multi-threaded
//! stress tests. Those tests record what each thread proposed and what it
//! got back; this module checks the consensus safety properties of §2 on
//! such records:
//!
//! * **Agreement** — no two distinct values returned;
//! * **Validity** — every returned value was proposed by someone;
//! * **Integrity** — each process received exactly one response per invoke.

use std::collections::BTreeSet;
use std::fmt;

/// One completed `propose` operation: who, what was proposed, what came back.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProposeRecord<V> {
    /// The proposing process (thread) index.
    pub pid: usize,
    /// The proposed value.
    pub proposed: V,
    /// The returned (decided) value.
    pub returned: V,
}

/// A violation of the consensus safety properties in a recorded history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConsensusViolation<V> {
    /// Two processes returned different values.
    Disagreement {
        /// First process and its returned value.
        a: (usize, V),
        /// Second process and its conflicting returned value.
        b: (usize, V),
    },
    /// A returned value was never proposed.
    InvalidValue {
        /// The process that returned the rogue value.
        pid: usize,
        /// The value returned.
        returned: V,
    },
    /// A process appears more than once (proposed twice).
    DuplicateProcess {
        /// The duplicated process id.
        pid: usize,
    },
}

impl<V: fmt::Debug> fmt::Display for ConsensusViolation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusViolation::Disagreement { a, b } => write!(
                f,
                "agreement violated: p{} returned {:?} but p{} returned {:?}",
                a.0, a.1, b.0, b.1
            ),
            ConsensusViolation::InvalidValue { pid, returned } => {
                write!(f, "validity violated: p{pid} returned {returned:?}, never proposed")
            }
            ConsensusViolation::DuplicateProcess { pid } => {
                write!(f, "integrity violated: p{pid} proposed more than once")
            }
        }
    }
}

/// Checks the consensus safety properties on a set of completed proposals.
///
/// Returns all violations found (empty means the history is a correct
/// consensus history).
///
/// # Examples
///
/// ```
/// use apc_model::history::{check_consensus, ProposeRecord};
/// let records = vec![
///     ProposeRecord { pid: 0, proposed: 10, returned: 10 },
///     ProposeRecord { pid: 1, proposed: 20, returned: 10 },
/// ];
/// assert!(check_consensus(&records).is_empty());
/// ```
pub fn check_consensus<V: Clone + Ord>(records: &[ProposeRecord<V>]) -> Vec<ConsensusViolation<V>> {
    let mut violations = Vec::new();
    let proposed: BTreeSet<&V> = records.iter().map(|r| &r.proposed).collect();
    let mut seen_pids = BTreeSet::new();
    for r in records {
        if !seen_pids.insert(r.pid) {
            violations.push(ConsensusViolation::DuplicateProcess { pid: r.pid });
        }
        if !proposed.contains(&r.returned) {
            violations.push(ConsensusViolation::InvalidValue {
                pid: r.pid,
                returned: r.returned.clone(),
            });
        }
    }
    for pair in records.windows(2) {
        if pair[0].returned != pair[1].returned {
            violations.push(ConsensusViolation::Disagreement {
                a: (pair[0].pid, pair[0].returned.clone()),
                b: (pair[1].pid, pair[1].returned.clone()),
            });
        }
    }
    violations
}

/// Convenience wrapper asserting a correct consensus history.
///
/// # Panics
///
/// Panics with a descriptive message if any violation is present.
pub fn assert_consensus<V: Clone + Ord + fmt::Debug>(records: &[ProposeRecord<V>]) {
    let violations = check_consensus(records);
    assert!(
        violations.is_empty(),
        "consensus history has {} violation(s): {}",
        violations.len(),
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_history_passes() {
        let records = vec![
            ProposeRecord { pid: 0, proposed: 1, returned: 2 },
            ProposeRecord { pid: 1, proposed: 2, returned: 2 },
            ProposeRecord { pid: 2, proposed: 3, returned: 2 },
        ];
        assert!(check_consensus(&records).is_empty());
    }

    #[test]
    fn disagreement_detected() {
        let records = vec![
            ProposeRecord { pid: 0, proposed: 1, returned: 1 },
            ProposeRecord { pid: 1, proposed: 2, returned: 2 },
        ];
        let violations = check_consensus(&records);
        assert!(violations.iter().any(|v| matches!(v, ConsensusViolation::Disagreement { .. })));
    }

    #[test]
    fn invalid_value_detected() {
        let records = vec![ProposeRecord { pid: 0, proposed: 1, returned: 9 }];
        let violations = check_consensus(&records);
        assert!(violations.iter().any(|v| matches!(v, ConsensusViolation::InvalidValue { .. })));
    }

    #[test]
    fn duplicate_process_detected() {
        let records = vec![
            ProposeRecord { pid: 0, proposed: 1, returned: 1 },
            ProposeRecord { pid: 0, proposed: 1, returned: 1 },
        ];
        let violations = check_consensus(&records);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ConsensusViolation::DuplicateProcess { pid: 0 })));
    }

    #[test]
    fn empty_history_is_fine() {
        assert!(check_consensus::<u32>(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "agreement violated")]
    fn assert_consensus_panics_with_message() {
        let records = vec![
            ProposeRecord { pid: 0, proposed: 1, returned: 1 },
            ProposeRecord { pid: 1, proposed: 2, returned: 2 },
        ];
        assert_consensus(&records);
    }

    #[test]
    fn violation_messages_render() {
        let v = ConsensusViolation::InvalidValue { pid: 3, returned: 9 };
        assert!(v.to_string().contains("p3"));
    }
}
