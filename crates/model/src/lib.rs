//! # `apc-model` — a simulated asynchronous crash-prone shared-memory system
//!
//! This crate is the computational model of
//! *On Asymmetric Progress Conditions* (Imbs, Raynal, Taubenfeld, PODC 2010)
//! made executable:
//!
//! * **Processes** are deterministic state machines ([`Program`]) that perform
//!   exactly one shared-memory *event* per scheduled step (§2 and §3.3 of the
//!   paper).
//! * **Shared objects** ([`ObjectState`]) are atomic base objects: read/write
//!   registers, `(y,x)`-live consensus objects, and Common2-style
//!   read-modify-write objects. A `(y,x)`-live base object is **exactly** as
//!   live as the paper requires: wait-free for its `X` set, and terminating
//!   for a guest only once the guest has executed an isolation window of
//!   consecutive events on the object (the literal reading of
//!   "runs long enough in isolation").
//! * **Schedules** ([`Schedule`]) interleave steps and crashes; builders cover
//!   round-robin, solo, lockstep and seeded-random adversaries.
//! * **Exploration** ([`explore::Explorer`]) performs bounded exhaustive
//!   search over all schedules (with an optional crash budget), memoized on
//!   global states, checking safety invariants everywhere and computing the
//!   paper's *valence* of runs (§3.3).
//! * **Fairness analysis** ([`fairness`]) finds *fair livelocks* — reachable
//!   strongly-connected components in which every live process keeps taking
//!   steps yet never decides. This is the finite-state analogue of a
//!   liveness violation, used to certify the impossibility scenarios.
//! * **Cycle certificates** ([`cycle`]) turn "this deterministic adversary
//!   schedule runs forever" into a finite, machine-checked certificate: a
//!   deterministic schedule that revisits a global state loops forever.
//!
//! The crate has no unsafe code; every state is `Clone + Eq + Hash` so that
//! the explorer can memoize.
//!
//! ## Quick example
//!
//! ```
//! use apc_model::{SystemBuilder, Value, Schedule, Runner};
//! use apc_model::programs::WriteThenReadProgram;
//!
//! // Two processes write their id to a shared register and read it back.
//! let mut builder = SystemBuilder::new(2);
//! let reg = builder.add_register(Value::Bot);
//! let sys = builder.build(|pid| WriteThenReadProgram::new(reg, Value::Num(pid.index() as u32)));
//! let mut runner = Runner::new(sys);
//! runner.run(&Schedule::round_robin(2, 8));
//! assert!(runner.system().all_terminated());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod object;
mod op;
mod pid;
mod program;
mod schedule;
mod system;
mod value;

pub mod cycle;
pub mod explore;
pub mod fairness;
pub mod history;
pub mod linearize;
pub mod programs;
pub mod shrink;

pub use error::{Fault, ModelError};
pub use object::{LiveConsensusState, ObjectId, ObjectState};
pub use op::{Op, OpOutcome};
pub use pid::{ProcessId, ProcessSet};
pub use program::{Either, MaybeParticipant, Program, ProgramAction};
pub use schedule::{Schedule, ScheduleEvent};
pub use system::{ProcStatus, Runner, StepKind, System, SystemBuilder, TraceEntry};
pub use value::Value;
