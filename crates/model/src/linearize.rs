//! A small Wing–Gong linearizability checker.
//!
//! Linearizability (Herlihy & Wing 1990) is the paper's correctness
//! condition for concurrent objects (§1). This module provides a generic
//! exhaustive checker for *complete* concurrent histories against a
//! deterministic sequential specification — practical for the short
//! histories produced by stress tests.
//!
//! The checker enumerates linearizations respecting the real-time order
//! (an operation that responded before another was invoked must be
//! linearized first), memoizing on (set of linearized operations,
//! sequential state).

use std::collections::HashSet;
use std::hash::Hash;

/// A deterministic sequential specification of an object.
pub trait SeqSpec {
    /// Sequential state.
    type State: Clone + Eq + Hash;
    /// Operation descriptors.
    type Op: Clone;
    /// Responses.
    type Resp: Eq + Clone;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Applies `op` to `state`, returning the next state and the response.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Resp);
}

/// One completed operation of a concurrent history.
///
/// `invoked_at` / `responded_at` are logical timestamps from a shared
/// monotone counter: `a` precedes `b` in real time iff
/// `a.responded_at < b.invoked_at`.
#[derive(Clone, Debug)]
pub struct CompleteOp<O, R> {
    /// The operation performed.
    pub op: O,
    /// The response observed.
    pub resp: R,
    /// Logical invocation time.
    pub invoked_at: u64,
    /// Logical response time.
    pub responded_at: u64,
}

/// Checks whether `history` is linearizable with respect to `spec`.
///
/// Exhaustive with memoization; exponential in the worst case, intended for
/// histories of up to a few dozen operations (`history.len() <= 63`).
///
/// # Panics
///
/// Panics if the history has more than 63 operations (the memo uses a
/// 64-bit occupancy mask).
pub fn is_linearizable<S: SeqSpec>(spec: &S, history: &[CompleteOp<S::Op, S::Resp>]) -> bool {
    assert!(history.len() <= 63, "checker supports at most 63 operations");
    if history.is_empty() {
        return true;
    }
    let n = history.len();
    let full: u64 = (1u64 << n) - 1;
    let mut memo: HashSet<(u64, S::State)> = HashSet::new();
    search(spec, history, 0, &spec.init(), full, &mut memo)
}

fn search<S: SeqSpec>(
    spec: &S,
    history: &[CompleteOp<S::Op, S::Resp>],
    done: u64,
    state: &S::State,
    full: u64,
    memo: &mut HashSet<(u64, S::State)>,
) -> bool {
    if done == full {
        return true;
    }
    if !memo.insert((done, state.clone())) {
        return false;
    }
    // The earliest response among not-yet-linearized operations bounds which
    // operations may be linearized next: op i is eligible iff no other
    // pending op responded strictly before i was invoked.
    let min_resp = (0..history.len())
        .filter(|i| done & (1 << i) == 0)
        .map(|i| history[i].responded_at)
        .min()
        .expect("non-empty remainder");
    for i in 0..history.len() {
        if done & (1 << i) != 0 {
            continue;
        }
        if history[i].invoked_at > min_resp {
            continue; // some pending op finished before this one began
        }
        let (next_state, resp) = spec.apply(state, &history[i].op);
        if resp != history[i].resp {
            continue;
        }
        if search(spec, history, done | (1 << i), &next_state, full, memo) {
            return true;
        }
    }
    false
}

/// Sequential specification of a read/write register over `u64` values
/// (`0` is the initial value).
#[derive(Copy, Clone, Debug, Default)]
pub struct RegisterSpec;

/// Operations of [`RegisterSpec`].
#[derive(Copy, Clone, Debug)]
pub enum RegOp {
    /// Read the register.
    Read,
    /// Write a value.
    Write(u64),
}

impl SeqSpec for RegisterSpec {
    type State = u64;
    type Op = RegOp;
    type Resp = Option<u64>;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &RegOp) -> (u64, Option<u64>) {
        match op {
            RegOp::Read => (*state, Some(*state)),
            RegOp::Write(v) => (*v, None),
        }
    }
}

/// Sequential specification of single-shot consensus over `u64` proposals:
/// the first proposal wins; every later propose returns the winner.
#[derive(Copy, Clone, Debug, Default)]
pub struct ConsensusSpec;

impl SeqSpec for ConsensusSpec {
    type State = Option<u64>;
    type Op = u64; // the proposed value
    type Resp = u64; // the decided value

    fn init(&self) -> Option<u64> {
        None
    }

    fn apply(&self, state: &Option<u64>, op: &u64) -> (Option<u64>, u64) {
        match state {
            Some(winner) => (Some(*winner), *winner),
            None => (Some(*op), *op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op<O, R>(op: O, resp: R, inv: u64, res: u64) -> CompleteOp<O, R> {
        CompleteOp { op, resp, invoked_at: inv, responded_at: res }
    }

    #[test]
    fn empty_history_linearizable() {
        assert!(is_linearizable(&RegisterSpec, &[]));
    }

    #[test]
    fn sequential_register_history() {
        let h = vec![op(RegOp::Write(5), None, 0, 1), op(RegOp::Read, Some(5), 2, 3)];
        assert!(is_linearizable(&RegisterSpec, &h));
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        let h = vec![
            op(RegOp::Write(5), None, 0, 1),
            op(RegOp::Read, Some(0), 2, 3), // reads initial value after the write responded
        ];
        assert!(!is_linearizable(&RegisterSpec, &h));
    }

    #[test]
    fn concurrent_read_may_see_either() {
        // Write overlaps the read: both old and new values are legal.
        for seen in [Some(0), Some(5)] {
            let h = vec![op(RegOp::Write(5), None, 0, 3), op(RegOp::Read, seen, 1, 2)];
            assert!(is_linearizable(&RegisterSpec, &h), "read of {seen:?} must linearize");
        }
    }

    #[test]
    fn consensus_history_agreeing_on_first() {
        let h = vec![op(10, 10, 0, 1), op(20, 10, 2, 3)];
        assert!(is_linearizable(&ConsensusSpec, &h));
    }

    #[test]
    fn consensus_history_wrong_winner_rejected() {
        // Second proposal returned its own value even though the first had
        // already completed: not linearizable.
        let h = vec![op(10, 10, 0, 1), op(20, 20, 2, 3)];
        assert!(!is_linearizable(&ConsensusSpec, &h));
    }

    #[test]
    fn concurrent_consensus_either_winner() {
        for winner in [10, 20] {
            let h = vec![op(10, winner, 0, 3), op(20, winner, 1, 2)];
            assert!(is_linearizable(&ConsensusSpec, &h), "winner {winner}");
        }
    }

    #[test]
    fn disagreeing_consensus_rejected() {
        let h = vec![op(10, 10, 0, 3), op(20, 20, 1, 2)];
        assert!(!is_linearizable(&ConsensusSpec, &h));
    }

    #[test]
    fn real_time_order_respected() {
        // w(1) ; w(2) ; read -> 1 is NOT linearizable (read started after
        // both writes completed, must see 2).
        let h = vec![
            op(RegOp::Write(1), None, 0, 1),
            op(RegOp::Write(2), None, 2, 3),
            op(RegOp::Read, Some(1), 4, 5),
        ];
        assert!(!is_linearizable(&RegisterSpec, &h));
        // But if the second write overlaps the read, 1 is fine.
        let h2 = vec![
            op(RegOp::Write(1), None, 0, 1),
            op(RegOp::Write(2), None, 2, 6),
            op(RegOp::Read, Some(1), 4, 5),
        ];
        assert!(is_linearizable(&RegisterSpec, &h2));
    }

    #[test]
    #[should_panic(expected = "at most 63")]
    fn oversized_history_panics() {
        let h: Vec<CompleteOp<RegOp, Option<u64>>> =
            (0..64).map(|i| op(RegOp::Read, Some(0), i, i)).collect();
        let _ = is_linearizable(&RegisterSpec, &h);
    }
}
